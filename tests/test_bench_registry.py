"""The single benchmark-suite registry and its consumers.

``repro.benchsuites`` is the one place a suite's name and scoreboard
path live; ``scripts/bench.py`` and the ``repro bench`` CLI verb both
derive their ``--suite`` choices and default outputs from it. These
tests pin the registry's invariants and — the drift test — that both
consumers really do accept exactly the registry's choices, so adding a
suite in one place can never leave the other advertising a stale list.
"""

import importlib.util
import pathlib

import pytest

from repro.benchsuites import (
    DEFAULT_OUTPUTS,
    SUITE_CHOICES,
    SUITES,
    BenchSuite,
    default_output,
)
from repro.cli import build_parser

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load_bench_script():
    spec = importlib.util.spec_from_file_location(
        "_bench_script_under_test", REPO_ROOT / "scripts" / "bench.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestRegistry:
    def test_suites_are_frozen_and_unique(self):
        names = [s.name for s in SUITES]
        assert len(names) == len(set(names))
        assert all(isinstance(s, BenchSuite) for s in SUITES)
        with pytest.raises(Exception):
            SUITES[0].name = "mutated"

    def test_choices_are_registry_plus_all(self):
        assert SUITE_CHOICES == tuple(s.name for s in SUITES) + ("all",)

    def test_every_suite_has_a_scoreboard(self):
        for suite in SUITES:
            assert suite.scoreboard.startswith("BENCH_")
            assert suite.scoreboard.endswith(".json")
            assert suite.title

    def test_default_outputs_cover_every_choice(self):
        assert set(DEFAULT_OUTPUTS) == set(SUITE_CHOICES)
        for suite in SUITES:
            assert DEFAULT_OUTPUTS[suite.name] == suite.scoreboard
            assert default_output(suite.name) == suite.scoreboard
        # "all" lands on the newest suite's scoreboard.
        assert DEFAULT_OUTPUTS["all"] == SUITES[-1].scoreboard

    def test_default_output_rejects_unknown(self):
        with pytest.raises(KeyError):
            default_output("no-such-suite")

    def test_durability_suite_registered(self):
        by_name = {s.name: s for s in SUITES}
        assert by_name["durability"].scoreboard == "BENCH_PR9.json"

    def test_profile_store_suite_registered(self):
        by_name = {s.name: s for s in SUITES}
        assert by_name["profile-store"].scoreboard == "BENCH_PR10.json"


class TestConsumersDoNotDrift:
    def test_bench_script_accepts_every_registry_choice(self):
        parser = _load_bench_script().build_parser()
        for choice in SUITE_CHOICES:
            # Parse, don't run: drift shows up as argparse SystemExit.
            args = parser.parse_args(["--suite", choice, "--check"])
            assert args.suite == choice

    def test_bench_script_rejects_unknown_suite(self):
        parser = _load_bench_script().build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--suite", "no-such-suite"])

    def test_cli_bench_verb_accepts_every_registry_choice(self):
        parser = build_parser()
        for choice in SUITE_CHOICES:
            args = parser.parse_args(["bench", "--suite", choice, "--check"])
            assert args.suite == choice

    def test_cli_bench_verb_rejects_unknown_suite(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["bench", "--suite", "no-such-suite"])
