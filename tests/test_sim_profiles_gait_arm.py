"""Unit tests for repro.simulation.{profiles,gait,arm}."""

import numpy as np
import pytest

from repro.exceptions import GeometryError, SimulationError
from repro.simulation.arm import ArmSwingModel
from repro.simulation.gait import (
    GaitParameters,
    body_trajectory,
    bounce_from_stride,
    stride_from_bounce,
)
from repro.simulation.profiles import SimulatedUser, sample_users


class TestBounceStrideGeometry:
    def test_round_trip(self):
        leg = 0.9
        for stride in (0.4, 0.7, 1.0):
            b = bounce_from_stride(stride, leg)
            assert stride_from_bounce(b, leg, k=2.0) == pytest.approx(stride)

    def test_known_value(self):
        # l=0.9, s=0.7: b = 0.9 - sqrt(0.81 - 0.1225)
        assert bounce_from_stride(0.7, 0.9) == pytest.approx(
            0.9 - np.sqrt(0.81 - 0.1225)
        )

    def test_monotone_in_stride(self):
        bs = [bounce_from_stride(s, 0.9) for s in (0.3, 0.5, 0.7, 0.9)]
        assert bs == sorted(bs)

    def test_zero_bounce_zero_stride(self):
        assert stride_from_bounce(0.0, 0.9) == 0.0

    def test_k_scales_linearly(self):
        assert stride_from_bounce(0.05, 0.9, k=3.0) == pytest.approx(
            1.5 * stride_from_bounce(0.05, 0.9, k=2.0)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(GeometryError):
            bounce_from_stride(2.0, 0.9)
        with pytest.raises(GeometryError):
            bounce_from_stride(0.0, 0.9)
        with pytest.raises(GeometryError):
            stride_from_bounce(1.0, 0.9)
        with pytest.raises(GeometryError):
            stride_from_bounce(0.05, 0.9, k=0.0)


class TestGaitParameters:
    def test_derived_quantities(self):
        p = GaitParameters(cadence_hz=1.0, stride_m=0.7, leg_length_m=0.9)
        assert p.speed_m_s == pytest.approx(1.4)
        assert p.bounce_m == pytest.approx(bounce_from_stride(0.7, 0.9))

    def test_rejects_bad_stride(self):
        with pytest.raises(SimulationError):
            GaitParameters(cadence_hz=1.0, stride_m=2.0, leg_length_m=0.9)


class TestBodyTrajectory:
    def _run(self, n=400, cadence=1.0, bounce=0.07, speed=1.4, dt=0.01):
        phase = np.arange(n) * cadence * dt
        return body_trajectory(
            phase,
            np.full(n, bounce),
            np.full(n, speed),
            np.full(n, 0.15),
            np.full(n, 0.02),
            dt,
        )

    def test_vertical_peak_to_peak_is_bounce(self):
        _, _, vertical = self._run()
        assert vertical.max() - vertical.min() == pytest.approx(0.07, abs=1e-6)

    def test_vertical_lowest_at_heel_strikes(self):
        _, _, vertical = self._run()
        assert vertical[0] == pytest.approx(-0.035)
        assert vertical[25] == pytest.approx(0.035, abs=1e-4)  # phase 0.25

    def test_anterior_progresses_at_speed(self):
        anterior, _, _ = self._run(n=400)
        assert anterior[-1] == pytest.approx(1.4 * 3.99, rel=0.02)

    def test_lateral_period_is_full_cycle(self):
        _, lateral, _ = self._run()
        assert lateral[0] == pytest.approx(0.0, abs=1e-9)
        assert lateral[25] > 0  # quarter cycle: swing to one side
        assert lateral[75] < 0  # three quarters: other side

    def test_rejects_decreasing_phase(self):
        with pytest.raises(SimulationError):
            body_trajectory(
                np.array([0.0, -0.1]),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
                0.01,
            )


class TestArmSwingModel:
    def _arm(self, **kw):
        defaults = dict(
            arm_length_m=0.6,
            amplitude_rad=0.45,
            forward_bias_rad=0.12,
            elbow_lag_s=0.0,
        )
        defaults.update(kw)
        return ArmSwingModel(**defaults)

    def test_angle_extremes(self):
        arm = self._arm()
        phase = np.array([0.0, 0.5])
        theta = arm.angle(phase)
        assert theta[0] == pytest.approx(0.12 - 0.45)  # backmost
        assert theta[1] == pytest.approx(0.12 + 0.45)  # foremost

    def test_wrist_offset_geometry(self):
        arm = self._arm()
        offsets = arm.wrist_offset(np.array([0.0, 0.25, 0.5]), 0.01)
        # Norm equals the arm length at every phase (rigid pendulum).
        assert np.allclose(np.linalg.norm(offsets, axis=1), 0.6)
        # Lateral always zero (sagittal swing).
        assert np.allclose(offsets[:, 1], 0.0)

    def test_half_cycle_geometry_consistent(self):
        arm = self._arm()
        r1, d1, r2, d2 = arm.true_half_cycle_geometry()
        m = 0.6
        assert d1 == pytest.approx(np.sqrt(m**2 - (m - r1) ** 2))
        assert d2 == pytest.approx(np.sqrt(m**2 - (m - r2) ** 2))
        assert r2 > r1  # forward bias makes the front half larger

    def test_elbow_lag_shifts_vertical_only(self):
        phase = np.arange(300) / 100.0
        fast = self._arm().wrist_offset(phase, 0.01)
        lagged = self._arm(elbow_lag_s=0.05).wrist_offset(phase, 0.01)
        assert np.allclose(fast[:, 0], lagged[:, 0])
        assert not np.allclose(fast[10:, 2], lagged[10:, 2])

    def test_rejects_bias_above_amplitude(self):
        with pytest.raises(SimulationError):
            self._arm(forward_bias_rad=0.5)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(SimulationError):
            self._arm(amplitude_rad=2.0)


class TestSimulatedUser:
    def test_profile_carries_anthropometrics(self):
        u = SimulatedUser()
        p = u.profile
        assert p.arm_length_m == u.arm_length_m
        assert p.leg_length_m == u.leg_length_m
        assert p.calibration_k == 2.0

    def test_measured_profile_close_to_truth(self):
        u = SimulatedUser()
        p = u.measured_profile(np.random.default_rng(0), measurement_sigma_m=0.02)
        assert abs(p.arm_length_m - u.arm_length_m) < 0.1
        assert abs(p.leg_length_m - u.leg_length_m) < 0.1

    def test_with_gait(self):
        u = SimulatedUser().with_gait(cadence_hz=1.1, stride_m=0.8)
        assert u.cadence_hz == 1.1
        assert u.stride_m == 0.8

    def test_rejects_invalid_stride(self):
        with pytest.raises(SimulationError):
            SimulatedUser(stride_m=5.0)

    def test_rejects_bad_phase_lag(self):
        with pytest.raises(SimulationError):
            SimulatedUser(arm_phase_lag=0.5)


class TestSampleUsers:
    def test_count_and_uniqueness(self):
        users = sample_users(10, np.random.default_rng(0))
        assert len(users) == 10
        assert len({u.name for u in users}) == 10

    def test_plausible_ranges(self):
        for u in sample_users(30, np.random.default_rng(1)):
            assert 0.4 < u.arm_length_m < 0.8
            assert 0.7 < u.leg_length_m < 1.1
            assert 0.0 < u.stride_m < 2 * u.leg_length_m

    def test_deterministic_for_seed(self):
        a = sample_users(3, np.random.default_rng(5))
        b = sample_users(3, np.random.default_rng(5))
        assert a == b

    def test_rejects_zero(self):
        with pytest.raises(SimulationError):
            sample_users(0, np.random.default_rng(0))
