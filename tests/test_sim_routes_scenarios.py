"""Unit tests for repro.simulation.{routes,scenarios}."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation.profiles import SimulatedUser
from repro.simulation.routes import FloorMap, Route, paper_route, walk_route
from repro.simulation.scenarios import SessionBuilder
from repro.types import ActivityKind, Posture


class TestRouteGeometry:
    def test_paper_route_length(self):
        assert paper_route().total_length_m == pytest.approx(141.5)

    def test_paper_route_markers(self):
        assert paper_route().markers == ("A", "B", "C", "D", "E", "F", "G")

    def test_leg_lengths_sum(self):
        r = paper_route()
        assert r.leg_lengths_m.sum() == pytest.approx(r.total_length_m)

    def test_headings_in_range(self):
        r = paper_route()
        assert np.all(np.abs(r.leg_headings_rad) <= np.pi)

    def test_corridor_crossing_encoded(self):
        # Legs B->C and C->D each cover 4 m of lateral (y) travel.
        r = paper_route()
        vecs = r.leg_vectors
        assert abs(vecs[1][1]) == pytest.approx(4.0)
        assert abs(vecs[2][1]) == pytest.approx(4.0)

    def test_rejects_single_waypoint(self):
        floor = FloorMap(10.0, 10.0)
        with pytest.raises(SimulationError):
            Route(np.zeros((1, 2)), ("A",), floor)

    def test_rejects_marker_mismatch(self):
        floor = FloorMap(10.0, 10.0)
        with pytest.raises(SimulationError):
            Route(np.zeros((2, 2)), ("A",), floor)

    def test_rejects_bad_floor(self):
        with pytest.raises(SimulationError):
            FloorMap(0.0, 10.0)


class TestWalkRoute:
    @pytest.fixture(scope="class")
    def walked(self):
        user = SimulatedUser()
        route = paper_route()
        trace, truth = walk_route(user, route, rng=np.random.default_rng(0))
        return user, route, trace, truth

    def test_walked_distance_near_route_length(self, walked):
        _, route, _, truth = walked
        assert truth.total_distance_m == pytest.approx(
            route.total_length_m, rel=0.1
        )

    def test_path_visits_waypoints(self, walked):
        _, route, _, truth = walked
        for waypoint in route.waypoints:
            d = np.linalg.norm(truth.body_positions_m[:, :2] - waypoint, axis=1)
            assert d.min() < 2.5

    def test_trace_continuous(self, walked):
        _, _, trace, truth = walked
        assert trace.n_samples == truth.body_positions_m.shape[0]
        assert np.all(np.isfinite(trace.linear_acceleration))

    def test_step_times_monotonic(self, walked):
        _, _, _, truth = walked
        assert np.all(np.diff(truth.step_times) > 0)


class TestSessionBuilder:
    def test_mixed_session_truth(self, user):
        session = (
            SessionBuilder(user, rng=np.random.default_rng(1))
            .walk(15.0)
            .interfere(ActivityKind.EATING, 20.0, posture=Posture.SEATED)
            .step(15.0)
            .build()
        )
        assert len(session.segments) == 3
        kinds = [s.kind for s in session.segments]
        assert kinds == [
            ActivityKind.WALKING,
            ActivityKind.EATING,
            ActivityKind.STEPPING,
        ]
        assert session.true_step_count > 40
        assert session.segments[1].true_step_count == 0

    def test_segments_cover_trace(self, user):
        session = (
            SessionBuilder(user, rng=np.random.default_rng(2))
            .walk(10.0)
            .idle(5.0)
            .build()
        )
        assert session.segments[0].start_time == 0.0
        assert session.segments[-1].end_time == pytest.approx(
            session.trace.duration_s
        )
        for a, b in zip(session.segments, session.segments[1:]):
            assert a.end_time == pytest.approx(b.start_time)

    def test_segment_lookup(self, user):
        session = (
            SessionBuilder(user, rng=np.random.default_rng(3))
            .walk(10.0)
            .spoof(10.0)
            .build()
        )
        assert session.segment_at(5.0).kind is ActivityKind.WALKING
        assert session.segment_at(15.0).kind is ActivityKind.SPOOFING
        assert session.segment_at(99.0) is None

    def test_segments_of_kind(self, user):
        session = (
            SessionBuilder(user, rng=np.random.default_rng(4))
            .walk(8.0)
            .walk(8.0)
            .swing(8.0)
            .build()
        )
        assert len(session.segments_of_kind(ActivityKind.WALKING)) == 2
        assert len(session.segments_of_kind(ActivityKind.SWINGING)) == 1

    def test_true_step_times_sorted(self, user):
        session = (
            SessionBuilder(user, rng=np.random.default_rng(5))
            .walk(10.0)
            .step(10.0)
            .build()
        )
        times = session.true_step_times
        assert np.all(np.diff(times) > 0)

    def test_empty_build_rejected(self, user):
        with pytest.raises(SimulationError):
            SessionBuilder(user).build()

    def test_distance_accumulates(self, user):
        session = (
            SessionBuilder(user, rng=np.random.default_rng(6))
            .walk(10.0)
            .walk(10.0)
            .build()
        )
        assert session.true_distance_m == pytest.approx(
            sum(s.true_distance_m for s in session.segments)
        )
