"""The bit-identical-resume oracle for ``ptrack-session-v1`` snapshots.

The durability contract, in the chunk-invariance style: a snapshot
taken at *any* upload boundary and restored — in the same process or
through a pickle round-trip, into a fresh session/pool — continues
bit-identically to the uninterrupted run. Asserted here across every
driver in the repo (serial session, lockstep pool, fleet-batched pool,
sharded fleet, ingest gateway), on clean and degraded streams, plus
the validation surface: a snapshot that cannot resume bit-identically
(wrong rate, config, backend, schema) must raise
:class:`ConfigurationError` naming the mismatch, never resume with
wrong credits.
"""

import pickle

import numpy as np
import pytest

from repro.core.config import PTrackConfig
from repro.core.streaming import (
    SESSION_SNAPSHOT_SCHEMA,
    StreamingPTrack,
    ensure_snapshot_kind,
)
from repro.exceptions import ConfigurationError
from repro.faults import FaultPolicy, NaNBurst, SampleDropout, inject_faults
from repro.serving import (
    BatchedSessionPool,
    IngestGateway,
    SessionPool,
    serve_fleet,
    serve_schedule,
    synthesize_arrival_schedule,
    synthesize_workload,
)
from repro.telemetry import MetricsRegistry

RATE = 100.0
BATCH = 50

_FLEET = synthesize_workload(3, 20.0, seed=77)
_TRACES = [w.samples for w in _FLEET]
_PROFILES = [w.profile for w in _FLEET]
_N_TICKS = _TRACES[0].shape[0] // BATCH
#: Boundaries to cut at: first tick, early, middle, and the final tick.
_CUTS = sorted({1, 3, _N_TICKS // 2, _N_TICKS - 1})


def _signature(steps, strides):
    return (
        [(e.index, e.time) for e in steps],
        [(e.time, e.length_m) for e in strides],
    )


def _roundtrip(blob):
    """Every snapshot must survive serialization — always pickle."""
    return pickle.loads(pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL))


def _drive_serial(trace, profile=None, cut=None, fault_policy=None):
    """One session, optionally snapshot+restored at tick ``cut``."""
    sess = StreamingPTrack(RATE, profile=profile, fault_policy=fault_policy)
    steps, strides = [], []
    for tick, off in enumerate(range(0, trace.shape[0], BATCH)):
        if cut is not None and tick == cut:
            sess = StreamingPTrack.from_snapshot(_roundtrip(sess.snapshot()))
        s, r = sess.append(trace[off : off + BATCH])
        steps.extend(s)
        strides.extend(r)
    s, r = sess.flush()
    steps.extend(s)
    strides.extend(r)
    return _signature(steps, strides), sess


class TestSerialResume:
    @pytest.mark.parametrize("cut", _CUTS)
    def test_resume_any_boundary_is_bit_identical(self, cut):
        for trace, profile in zip(_TRACES, _PROFILES):
            base, _ = _drive_serial(trace, profile)
            resumed, _ = _drive_serial(trace, profile, cut=cut)
            assert resumed == base

    @pytest.mark.parametrize("cut", _CUTS)
    def test_resume_on_degraded_stream(self, cut):
        # Degraded-mode state (quarantine ledger, gap flag, last-good
        # sample, parked credits) must travel in the snapshot too.
        policy = FaultPolicy()
        trace = inject_faults(
            _TRACES[0],
            [SampleDropout(prob=0.02), NaNBurst(rate_per_min=3.0)],
            seed=5,
        )
        base, base_sess = _drive_serial(
            trace, _PROFILES[0], fault_policy=policy
        )
        resumed, res_sess = _drive_serial(
            trace, _PROFILES[0], cut=cut, fault_policy=policy
        )
        assert resumed == base
        assert res_sess.op_stats == base_sess.op_stats

    def test_restored_session_keeps_op_stats_and_totals(self):
        _, sess = _drive_serial(_TRACES[0], _PROFILES[0])
        revived = StreamingPTrack.from_snapshot(_roundtrip(sess.snapshot()))
        assert revived.op_stats == sess.op_stats
        assert revived.step_count == sess.step_count
        assert revived.distance_m == sess.distance_m

    def test_two_restores_from_one_snapshot_do_not_alias(self):
        sess = StreamingPTrack(RATE, profile=_PROFILES[0])
        sess.append(_TRACES[0][: 10 * BATCH])
        blob = sess.snapshot()
        a = StreamingPTrack.from_snapshot(blob)
        b = StreamingPTrack.from_snapshot(blob)
        rest = _TRACES[0][10 * BATCH :]
        sig_a = _signature(*a.append(rest))
        sig_b = _signature(*b.append(rest))
        assert sig_a == sig_b
        assert _signature(*a.flush()) == _signature(*b.flush())


def _drive_pool(pool_cls, cut=None, **kwargs):
    """A pool fleet, optionally snapshot+restored at tick ``cut``."""
    pool = pool_cls(RATE, **kwargs)
    sids = pool.add_sessions(_PROFILES)
    acc = {sid: ([], []) for sid in sids}
    n = max(t.shape[0] for t in _TRACES)
    for tick, off in enumerate(range(0, n, BATCH)):
        if cut is not None and tick == cut:
            pool = pool_cls.from_snapshot(_roundtrip(pool.snapshot()), **kwargs)
            sids = pool.session_ids
        out = pool.append(
            sids, [t[off : off + BATCH] for t in _TRACES]
        )
        for sid, (s, r) in zip(sids, out):
            acc[sid][0].extend(s)
            acc[sid][1].extend(r)
    for sid, (s, r) in zip(sids, pool.flush(sids)):
        acc[sid][0].extend(s)
        acc[sid][1].extend(r)
    return {sid: _signature(*c) for sid, c in acc.items()}


class TestPoolResume:
    @pytest.mark.parametrize("pool_cls", [SessionPool, BatchedSessionPool])
    @pytest.mark.parametrize("cut", _CUTS)
    def test_pool_resume_is_bit_identical(self, pool_cls, cut):
        base = _drive_pool(pool_cls)
        resumed = _drive_pool(pool_cls, cut=cut)
        assert resumed == base

    def test_restored_pool_allocates_fresh_ids(self):
        pool = SessionPool(RATE)
        pool.add_sessions(_PROFILES)
        revived = SessionPool.from_snapshot(_roundtrip(pool.snapshot()))
        assert revived.session_ids == pool.session_ids
        assert revived.add_session() == len(_PROFILES)

    def test_restore_under_telemetry_publishes_only_new_work(self):
        # Across a snapshot/restore epoch boundary, merged counters
        # must equal the uninterrupted run's: nothing lost, nothing
        # double-published.
        def run(cut):
            regs = [MetricsRegistry()]
            pool = SessionPool(RATE, telemetry=regs[0])
            sids = pool.add_sessions(_PROFILES)
            n = max(t.shape[0] for t in _TRACES)
            for tick, off in enumerate(range(0, n, BATCH)):
                if cut is not None and tick == cut:
                    blob = _roundtrip(pool.snapshot())
                    regs.append(MetricsRegistry())
                    pool = SessionPool.from_snapshot(
                        blob, telemetry=regs[-1]
                    )
                    sids = pool.session_ids
                pool.append(sids, [t[off : off + BATCH] for t in _TRACES])
            pool.flush(sids)
            merged = MetricsRegistry()
            for reg in regs:
                merged.merge(reg.snapshot())
            return merged.snapshot()["counters"]

        base = run(None)
        resumed = run(_N_TICKS // 2)
        for name in base:
            if not name.startswith("ptrack_"):
                continue
            assert resumed.get(name) == pytest.approx(base[name]), name


class TestShardedResume:
    @pytest.mark.parametrize("epoch_s", [0.5, 3.0, 7.0])
    def test_durable_fleet_matches_classic(self, epoch_s):
        classic = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1,
            batch_samples=BATCH,
        )
        durable = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1,
            batch_samples=BATCH, checkpoint_every_s=epoch_s,
        )
        assert [
            _signature(list(s.steps), list(s.strides))
            for s in durable.sessions
        ] == [
            _signature(list(s.steps), list(s.strides))
            for s in classic.sessions
        ]

    def test_durable_fleet_with_disk_store(self, tmp_path):
        classic = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1,
            batch_samples=BATCH,
        )
        durable = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1,
            batch_samples=BATCH, checkpoint_every_s=3.0,
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert [s.steps for s in durable.sessions] == [
            s.steps for s in classic.sessions
        ]
        # Finished shards clean up their checkpoints.
        assert list((tmp_path / "ckpt").glob("*.ckpt")) == []


def _drive_gateway(schedule, cut=None):
    """Replay a schedule tick by tick; at tick ``cut``, swap in a pool
    restored from a snapshot (the pool-crash recovery path)."""
    gw = IngestGateway(RATE, reorder_window=max(8, schedule.max_seq_skew))
    sid_of = {}
    acc = {}
    for tick, events in enumerate(schedule.events):
        if cut is not None and tick == cut:
            gw.adopt_pool(
                SessionPool.from_snapshot(_roundtrip(gw.pool.snapshot()))
            )
        for ev in events:
            if ev.session not in sid_of:
                sid_of[ev.session] = gw.add_session(_PROFILES[ev.session])
                acc[ev.session] = ([], [])
            res = gw.offer(
                sid_of[ev.session],
                _TRACES[ev.session][ev.start : ev.stop],
                seq=ev.seq,
            )
            assert res.ok, res
        reverse = {sid: i for i, sid in sid_of.items()}
        for sid, (s, r) in gw.tick().items():
            acc[reverse[sid]][0].extend(s)
            acc[reverse[sid]][1].extend(r)
    reverse = {sid: i for i, sid in sid_of.items()}
    for sid, (s, r) in gw.flush().items():
        acc[reverse[sid]][0].extend(s)
        acc[reverse[sid]][1].extend(r)
    return {i: _signature(*c) for i, c in acc.items()}


class TestGatewayResume:
    def test_mid_stream_pool_swap_is_bit_identical(self):
        schedule = synthesize_arrival_schedule(
            [t.shape[0] for t in _TRACES],
            seed=9,
            batch_samples=128,
            reorder_prob=0.2,
        )
        base = _drive_gateway(schedule)
        for cut in (1, schedule.n_ticks // 2, schedule.n_ticks - 1):
            assert _drive_gateway(schedule, cut=cut) == base

    def test_adopt_pool_rejects_membership_mismatch(self):
        gw = IngestGateway(RATE)
        gw.add_session(_PROFILES[0])
        wrong = SessionPool(RATE)
        wrong.add_sessions(_PROFILES)
        with pytest.raises(ConfigurationError, match="unexpected ids"):
            gw.adopt_pool(wrong)


class TestValidation:
    def _snapshot(self):
        sess = StreamingPTrack(RATE, profile=_PROFILES[0])
        sess.append(_TRACES[0][: 5 * BATCH])
        return sess.snapshot()

    def test_rejects_wrong_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ensure_snapshot_kind(self._snapshot(), "pool")

    def test_rejects_non_snapshot(self):
        with pytest.raises(ConfigurationError, match="snapshot dict"):
            ensure_snapshot_kind([1, 2, 3], "session")

    def test_rejects_wrong_schema_version(self):
        blob = dict(self._snapshot())
        blob["schema"] = "ptrack-session-v999"
        with pytest.raises(ConfigurationError, match="v999"):
            StreamingPTrack.from_snapshot(blob)

    def test_rejects_rate_mismatch(self):
        sess = StreamingPTrack(50.0, profile=_PROFILES[0])
        with pytest.raises(ConfigurationError, match="sample_rate_hz"):
            sess.restore(self._snapshot())

    def test_rejects_config_mismatch(self):
        blob = self._snapshot()
        sess = StreamingPTrack(
            RATE,
            profile=_PROFILES[0],
            config=PTrackConfig(lowpass_cutoff_hz=4.0),
        )
        with pytest.raises(ConfigurationError, match="config"):
            sess.restore(blob)

    def test_rejects_fault_policy_mismatch(self):
        blob = self._snapshot()
        sess = StreamingPTrack(
            RATE, profile=_PROFILES[0], fault_policy=FaultPolicy()
        )
        with pytest.raises(ConfigurationError, match="FaultPolicy"):
            sess.restore(blob)

    def test_pool_rejects_backend_mismatch(self):
        pool = BatchedSessionPool(RATE, backend="numpy")
        pool.add_sessions(_PROFILES)
        blob = pool.snapshot()
        assert blob["backend"] == "numpy"
        tampered = dict(blob)
        tampered["backend"] = "float32"
        with pytest.raises(ConfigurationError, match="backend"):
            BatchedSessionPool(RATE, backend="numpy").restore(tampered)

    def test_pool_error_lists_every_mismatch(self):
        pool = SessionPool(RATE)
        pool.add_sessions(_PROFILES)
        blob = pool.snapshot()
        other = SessionPool(
            50.0, config=PTrackConfig(lowpass_cutoff_hz=4.0)
        )
        with pytest.raises(ConfigurationError) as err:
            other.restore(blob)
        assert "sample_rate_hz" in str(err.value)
        assert "PTrackConfig" in str(err.value)


class TestMigration:
    def test_export_import_matches_uninterrupted(self):
        trace, profile = _TRACES[0], _PROFILES[0]
        base, _ = _drive_serial(trace, profile)

        src = SessionPool(RATE)
        sid = src.add_session(profile)
        mid = (_N_TICKS // 2) * BATCH
        steps, strides = [], []
        for off in range(0, mid, BATCH):
            ((s, r),) = src.append([sid], [trace[off : off + BATCH]])
            steps.extend(s)
            strides.extend(r)
        blob = _roundtrip(src.export_session(sid))
        src.remove_session(sid)
        assert src.session_ids == []

        dst = SessionPool(RATE)
        new_sid = dst.import_session(blob)
        for off in range(mid, trace.shape[0], BATCH):
            ((s, r),) = dst.append([new_sid], [trace[off : off + BATCH]])
            steps.extend(s)
            strides.extend(r)
        ((s, r),) = dst.flush([new_sid])
        steps.extend(s)
        strides.extend(r)
        assert _signature(steps, strides) == base

    def test_migration_across_pool_types(self):
        # Lockstep -> batched migration goes through the session blob,
        # which carries no backend identity; credits must not move.
        base = _drive_pool(SessionPool)
        src = SessionPool(RATE)
        sids = src.add_sessions(_PROFILES)
        acc = {sid: ([], []) for sid in sids}
        n = max(t.shape[0] for t in _TRACES)
        mid_tick = _N_TICKS // 2
        for off in range(0, mid_tick * BATCH, BATCH):
            out = src.append(sids, [t[off : off + BATCH] for t in _TRACES])
            for sid, (s, r) in zip(sids, out):
                acc[sid][0].extend(s)
                acc[sid][1].extend(r)
        dst = BatchedSessionPool(RATE)
        moved = [
            dst.import_session(_roundtrip(src.export_session(sid)), sid)
            for sid in sids
        ]
        assert moved == sids
        for off in range(mid_tick * BATCH, n, BATCH):
            out = dst.append(sids, [t[off : off + BATCH] for t in _TRACES])
            for sid, (s, r) in zip(sids, out):
                acc[sid][0].extend(s)
                acc[sid][1].extend(r)
        for sid, (s, r) in zip(sids, dst.flush(sids)):
            acc[sid][0].extend(s)
            acc[sid][1].extend(r)
        assert {sid: _signature(*c) for sid, c in acc.items()} == base

    def test_import_rejects_id_collision(self):
        pool = SessionPool(RATE)
        sid = pool.add_session(_PROFILES[0])
        blob = pool.export_session(sid)
        with pytest.raises(ConfigurationError, match="already"):
            pool.import_session(blob, sid)

    def test_import_rejects_identity_mismatch(self):
        pool = SessionPool(RATE)
        blob = pool.export_session(pool.add_session(_PROFILES[0]))
        with pytest.raises(ConfigurationError, match="pipeline identity"):
            SessionPool(50.0).import_session(blob)


def test_snapshot_schema_constant():
    assert SESSION_SNAPSHOT_SCHEMA == "ptrack-session-v1"
    blob = StreamingPTrack(RATE).snapshot()
    assert blob["schema"] == SESSION_SNAPSHOT_SCHEMA
    assert blob["kind"] == "session"
    pool_blob = SessionPool(RATE).snapshot()
    assert pool_blob["schema"] == SESSION_SNAPSHOT_SCHEMA
    assert pool_blob["kind"] == "pool"
