"""Unit tests for repro.baselines.{knn,scar}."""

import numpy as np
import pytest

from repro.baselines.knn import KNeighborsClassifier
from repro.baselines.scar import ScarClassifier, ScarStepCounter
from repro.exceptions import TrainingError
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind


class TestKNN:
    def _clusters(self, n=50, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal([0, 0], 0.3, size=(n, 2))
        b = rng.normal([5, 5], 0.3, size=(n, 2))
        x = np.vstack([a, b])
        y = ["a"] * n + ["b"] * n
        return x, y

    def test_separable_clusters(self):
        x, y = self._clusters()
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert knn.predict_one(np.array([0.1, -0.1])) == "a"
        assert knn.predict_one(np.array([5.2, 4.8])) == "b"

    def test_training_points_self_classify(self):
        x, y = self._clusters(n=20)
        knn = KNeighborsClassifier(k=1).fit(x, y)
        assert knn.predict(x) == y

    def test_standardisation_makes_scales_comparable(self):
        # Without standardisation, the huge second feature would drown
        # the informative first one.
        rng = np.random.default_rng(1)
        n = 60
        x = np.column_stack(
            [
                np.concatenate([rng.normal(0, 0.1, n), rng.normal(1, 0.1, n)]),
                rng.normal(0, 1000.0, 2 * n),
            ]
        )
        y = ["lo"] * n + ["hi"] * n
        knn = KNeighborsClassifier(k=5).fit(x, y)
        assert knn.predict_one(np.array([0.0, 500.0])) == "lo"
        assert knn.predict_one(np.array([1.0, -500.0])) == "hi"

    def test_classes_sorted(self):
        x, y = self._clusters()
        knn = KNeighborsClassifier().fit(x, y)
        assert knn.classes == ["a", "b"]

    def test_k_clamped_to_training_size(self):
        knn = KNeighborsClassifier(k=50).fit(np.zeros((2, 1)), ["a", "b"])
        assert knn.predict_one(np.array([0.0])) in ("a", "b")

    def test_unfitted_raises(self):
        with pytest.raises(TrainingError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_rejects_mismatched_widths(self):
        knn = KNeighborsClassifier().fit(np.zeros((3, 2)), list("abc"))
        with pytest.raises(TrainingError):
            knn.predict(np.zeros((1, 3)))

    def test_rejects_bad_training_data(self):
        with pytest.raises(TrainingError):
            KNeighborsClassifier().fit(np.zeros((0, 2)), [])
        with pytest.raises(TrainingError):
            KNeighborsClassifier().fit(np.zeros((3, 2)), ["a"])
        with pytest.raises(TrainingError):
            KNeighborsClassifier(k=0)


class TestScarClassifier:
    def test_fit_predict_roundtrip(self, user, fitted_scar, walk_trace):
        labels = [
            label
            for _, _, label in fitted_scar.classifier.predict_windows(walk_trace[0])
        ]
        pedestrian = sum(1 for l in labels if l in ("walking", "stepping"))
        assert pedestrian >= 0.8 * len(labels)

    def test_interference_not_pedestrian(self, fitted_scar, eating_trace):
        labels = [
            label
            for _, _, label in fitted_scar.classifier.predict_windows(eating_trace)
        ]
        pedestrian = sum(1 for l in labels if l in ("walking", "stepping"))
        assert pedestrian <= 0.2 * len(labels)

    def test_classes_exclude_photo(self, fitted_scar):
        assert "photo" not in fitted_scar.classifier.classes
        assert "walking" in fitted_scar.classifier.classes

    def test_unfitted_predict_raises(self, walk_trace):
        with pytest.raises(TrainingError):
            ScarClassifier().predict_windows(walk_trace[0])

    def test_empty_training_raises(self):
        with pytest.raises(TrainingError):
            ScarClassifier().fit([])

    def test_rejects_bad_windows(self):
        with pytest.raises(TrainingError):
            ScarClassifier(window_s=0.0)


class TestScarStepCounter:
    def test_counts_walking(self, fitted_scar, walk_trace):
        trace, truth = walk_trace
        counted = fitted_scar.count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=0.15 * truth.step_count)

    def test_suppresses_trained_interference(self, fitted_scar, eating_trace):
        assert fitted_scar.count_steps(eating_trace) <= 5

    def test_counts_spoofer_heavily(self, fitted_scar, spoof_trace):
        # The vulnerability the paper highlights: the spoofer is not in
        # the training set and lands near pedestrian activity.
        assert fitted_scar.count_steps(spoof_trace) > 30

    def test_counts_stepping(self, fitted_scar, stepping_trace):
        trace, truth = stepping_trace
        counted = fitted_scar.count_steps(trace)
        # SCAR's window voting loses some boundary windows; the paper's
        # larger training sets recover them (Fig. 6a shows ~1.0).
        assert counted >= 0.6 * truth.step_count
        assert counted <= 1.1 * truth.step_count
