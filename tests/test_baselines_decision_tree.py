"""Tests for the from-scratch CART classifier and the SCAR tree backend."""

import numpy as np
import pytest

from repro.baselines.decision_tree import DecisionTreeClassifier
from repro.baselines.scar import ScarClassifier
from repro.exceptions import TrainingError


def _blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal([0, 0], 0.4, size=(n, 2))
    b = rng.normal([4, 4], 0.4, size=(n, 2))
    c = rng.normal([0, 4], 0.4, size=(n, 2))
    x = np.vstack([a, b, c])
    y = ["a"] * n + ["b"] * n + ["c"] * n
    return x, y


class TestDecisionTree:
    def test_separable_blobs(self):
        x, y = _blobs()
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.predict_one(np.array([0.0, 0.0])) == "a"
        assert tree.predict_one(np.array([4.0, 4.0])) == "b"
        assert tree.predict_one(np.array([0.0, 4.0])) == "c"

    def test_training_accuracy_high(self):
        x, y = _blobs()
        tree = DecisionTreeClassifier().fit(x, y)
        predictions = tree.predict(x)
        accuracy = np.mean([p == t for p, t in zip(predictions, y)])
        assert accuracy > 0.95

    def test_axis_aligned_xor_needs_depth(self):
        # XOR: depth-1 stumps fail, depth>=2 trees solve it.
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = ["pos" if (row[0] > 0) == (row[1] > 0) else "neg" for row in x]
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        deep = DecisionTreeClassifier(max_depth=4).fit(x, y)
        stump_acc = np.mean([p == t for p, t in zip(stump.predict(x), y)])
        deep_acc = np.mean([p == t for p, t in zip(deep.predict(x), y)])
        assert deep_acc > 0.9
        assert deep_acc > stump_acc

    def test_depth_limited(self):
        x, y = _blobs()
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth <= 2

    def test_min_leaf_respected(self):
        x = np.arange(10.0).reshape(-1, 1)
        y = ["a"] * 5 + ["b"] * 5
        tree = DecisionTreeClassifier(min_leaf=5).fit(x, y)
        assert tree.depth <= 1

    def test_single_class_is_leaf(self):
        tree = DecisionTreeClassifier().fit(np.zeros((10, 2)), ["x"] * 10)
        assert tree.depth == 0
        assert tree.predict_one(np.array([9.0, 9.0])) == "x"

    def test_classes_property(self):
        x, y = _blobs(n=10)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.classes == ["a", "b", "c"]

    def test_unfitted_raises(self):
        with pytest.raises(TrainingError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_rejects_bad_data(self):
        with pytest.raises(TrainingError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), [])
        with pytest.raises(TrainingError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), ["a"])
        with pytest.raises(TrainingError):
            DecisionTreeClassifier(max_depth=0)

    def test_rejects_width_mismatch(self):
        x, y = _blobs(n=10)
        tree = DecisionTreeClassifier().fit(x, y)
        with pytest.raises(TrainingError):
            tree.predict(np.zeros((1, 5)))


class TestScarTreeBackend:
    def test_tree_backend_counts_and_suppresses(self, user, rng):
        from repro.baselines.scar import ScarStepCounter
        from repro.experiments.common import scar_training_set
        from repro.simulation.activities import simulate_interference
        from repro.simulation.walker import simulate_walk
        from repro.types import ActivityKind

        data = scar_training_set(user, rng, duration_s=40.0)
        counter = ScarStepCounter(ScarClassifier(backend="tree").fit(data))
        walk, truth = simulate_walk(user, 30.0, rng=np.random.default_rng(1))
        eat = simulate_interference(
            ActivityKind.EATING, 45.0, rng=np.random.default_rng(2)
        )
        assert counter.count_steps(walk) == pytest.approx(
            truth.step_count, abs=0.15 * truth.step_count
        )
        assert counter.count_steps(eat) <= 5

    def test_unknown_backend_rejected(self):
        with pytest.raises(TrainingError):
            ScarClassifier(backend="forest")
