"""Unit tests for repro.signal.integration (mean-removal technique)."""

import numpy as np
import pytest

from repro.exceptions import IntegrationError, SignalError
from repro.signal.integration import (
    cumulative_trapezoid,
    double_integrate_mean_removal,
    integrate_mean_removal,
    peak_to_peak_displacement,
)


class TestCumulativeTrapezoid:
    def test_constant_integrand(self):
        x = np.full(11, 2.0)
        y = cumulative_trapezoid(x, 0.1)
        assert y[0] == 0.0
        assert y[-1] == pytest.approx(2.0)

    def test_linear_integrand(self):
        t = np.linspace(0, 1, 101)
        y = cumulative_trapezoid(t, t[1] - t[0])
        assert y[-1] == pytest.approx(0.5, abs=1e-4)

    def test_rejects_single_sample(self):
        with pytest.raises(IntegrationError):
            cumulative_trapezoid(np.array([1.0]), 0.01)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(IntegrationError):
            cumulative_trapezoid(np.zeros(5), 0.0)

    def test_rejects_nan(self):
        with pytest.raises(SignalError):
            cumulative_trapezoid(np.array([0.0, np.nan]), 0.01)


class TestIntegrateMeanRemoval:
    def test_biased_sine_velocity_returns_to_zero(self):
        # A zero-endpoint-velocity oscillation plus sensor bias: mean
        # removal must cancel the bias exactly.
        t = np.arange(200) / 100.0
        accel = np.sin(2 * np.pi * 1.0 * t) + 0.7  # bias 0.7
        vel = integrate_mean_removal(accel, 0.01)
        assert abs(vel[-1]) < 1e-3  # trapezoid discretisation only

    def test_recovers_unbiased_velocity_shape(self):
        # Use exactly two full periods plus the closing sample so the
        # true velocity is genuinely zero at both ends.
        t = np.arange(201) / 100.0
        accel = np.cos(2 * np.pi * 1.0 * t) * 2 * np.pi  # velocity sin
        vel = integrate_mean_removal(accel, 0.01)
        expected = np.sin(2 * np.pi * 1.0 * t)
        assert np.allclose(vel, expected, atol=0.05)


class TestDoubleIntegrateMeanRemoval:
    def test_periodic_displacement_recovered(self):
        # z(t) = A sin(wt): its acceleration double-integrates back to
        # the (detrended) displacement.
        amplitude, freq = 0.05, 1.0
        t = np.arange(300) / 100.0
        omega = 2 * np.pi * freq
        accel = -amplitude * omega**2 * np.sin(omega * t)
        disp = double_integrate_mean_removal(accel, 0.01)
        expected = amplitude * np.sin(omega * t)
        assert np.allclose(
            disp - disp.mean(), expected - expected.mean(), atol=0.004
        )

    def test_bias_does_not_blow_up(self):
        t = np.arange(300) / 100.0
        omega = 2 * np.pi
        accel = -0.05 * omega**2 * np.sin(omega * t) + 0.5
        disp = double_integrate_mean_removal(accel, 0.01)
        assert np.max(np.abs(disp)) < 0.1  # naive integral would reach ~2 m

    def test_millimetre_accuracy_on_clean_cycle(self):
        amplitude, freq = 0.035, 1.9
        n = int(100 / freq)
        t = np.arange(n) / 100.0
        omega = 2 * np.pi * freq
        accel = -amplitude * omega**2 * np.sin(omega * t)
        disp = double_integrate_mean_removal(accel, 0.01)
        p2p = disp.max() - disp.min()
        assert p2p == pytest.approx(2 * amplitude, abs=0.004)


class TestPeakToPeakDisplacement:
    def test_matches_known_amplitude(self):
        amplitude, freq = 0.05, 2.0
        t = np.arange(100) / 100.0  # two full periods
        omega = 2 * np.pi * freq
        accel = -amplitude * omega**2 * np.sin(omega * t)
        p2p = peak_to_peak_displacement(accel, 0.01)
        assert p2p == pytest.approx(2 * amplitude, abs=0.005)

    def test_zero_signal(self):
        assert peak_to_peak_displacement(np.zeros(50), 0.01) == 0.0

    def test_scales_linearly_with_amplitude(self):
        t = np.arange(200) / 100.0
        omega = 2 * np.pi
        one = peak_to_peak_displacement(-omega**2 * np.sin(omega * t), 0.01)
        three = peak_to_peak_displacement(-3 * omega**2 * np.sin(omega * t), 0.01)
        assert three == pytest.approx(3 * one, rel=1e-6)
