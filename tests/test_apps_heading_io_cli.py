"""Tests for repro.apps.heading, repro.sensing.io, the autocorrelation
baseline and the CLI."""

import pathlib

import numpy as np
import pytest

from repro.apps.heading import HeadingEstimator, estimate_headings
from repro.baselines.autocorr_counter import AutocorrelationStepCounter
from repro.cli import main as cli_main
from repro.core.step_counter import PTrackStepCounter
from repro.exceptions import ConfigurationError, SignalError
from repro.sensing.io import load_session, load_trace, save_session, save_trace
from repro.simulation.scenarios import SessionBuilder
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind


def _heading_error(estimated, truth):
    return np.abs(np.arctan2(np.sin(estimated - truth), np.cos(estimated - truth)))


class TestHeadingEstimator:
    @pytest.mark.parametrize("heading", [0.0, 1.2, -2.4])
    def test_recovers_heading_with_prior(self, user, heading):
        trace, _ = simulate_walk(
            user, 25.0, rng=np.random.default_rng(1), heading_rad=heading
        )
        est = estimate_headings(trace, initial_heading_rad=heading + 0.4)
        assert np.median(_heading_error(est, heading)) < 0.1

    @pytest.mark.parametrize("heading", [0.3, 2.0])
    def test_cold_start_resolves_sign(self, user, heading):
        trace, _ = simulate_walk(
            user, 25.0, rng=np.random.default_rng(2), heading_rad=heading
        )
        est = estimate_headings(trace)
        assert np.median(_heading_error(est, heading)) < 0.3

    def test_turn_tracked(self, user):
        n = 3000
        headings = np.concatenate([np.zeros(n // 2), np.full(n // 2, np.pi / 2)])
        trace, _ = simulate_walk(
            user, 30.0, rng=np.random.default_rng(3), heading_rad=headings
        )
        est = estimate_headings(trace, initial_heading_rad=0.0)
        assert np.median(_heading_error(est[: n // 4], 0.0)) < 0.15
        assert np.median(_heading_error(est[-n // 4 :], np.pi / 2)) < 0.15

    def test_uses_counter_classifications(self, user, ptrack_counter):
        trace, _ = simulate_walk(
            user, 20.0, rng=np.random.default_rng(4), heading_rad=0.7
        )
        _, classifications = ptrack_counter.process(trace)
        est = HeadingEstimator(initial_heading_rad=0.7).estimate(
            trace, classifications
        )
        assert est.shape == (trace.n_samples,)
        assert np.all(np.isfinite(est))

    def test_inertial_navigation(self, user):
        from repro.apps.deadreckoning import navigate_route
        from repro.core.pipeline import PTrack
        from repro.simulation.routes import paper_route, walk_route

        route = paper_route()
        rng = np.random.default_rng(5)
        trace, truth = walk_route(user, route, rng=rng)
        report = navigate_route(
            PTrack(profile=user.profile),
            trace,
            truth,
            route,
            heading_source="inertial",
        )
        assert abs(report.tracked_distance_m - route.total_length_m) < 15.0
        assert report.final_error_m < 25.0

    def test_unknown_heading_source_rejected(self, user, walk_trace):
        from repro.apps.deadreckoning import navigate_route
        from repro.core.pipeline import PTrack
        from repro.simulation.routes import paper_route

        with pytest.raises(ConfigurationError):
            navigate_route(
                PTrack(profile=user.profile),
                walk_trace[0],
                walk_trace[1],
                paper_route(),
                heading_source="astrology",
            )


class TestTraceIO:
    def test_trace_round_trip(self, tmp_path, walk_trace):
        path = tmp_path / "walk.npz"
        save_trace(path, walk_trace[0])
        loaded = load_trace(path)
        assert loaded.sample_rate_hz == walk_trace[0].sample_rate_hz
        assert loaded.start_time == walk_trace[0].start_time
        assert np.allclose(
            loaded.linear_acceleration, walk_trace[0].linear_acceleration
        )

    def test_session_round_trip(self, tmp_path, user):
        session = (
            SessionBuilder(user, rng=np.random.default_rng(6))
            .walk(15.0)
            .interfere(ActivityKind.POKER, 15.0)
            .build()
        )
        path = tmp_path / "session.npz"
        save_session(path, session)
        loaded = load_session(path)
        assert loaded.true_step_count == session.true_step_count
        assert [s.kind for s in loaded.segments] == [
            s.kind for s in session.segments
        ]
        assert loaded.user == session.user
        assert np.allclose(
            loaded.trace.linear_acceleration, session.trace.linear_acceleration
        )

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(SignalError):
            load_trace(path)
        with pytest.raises(SignalError):
            load_session(path)


class TestAutocorrelationCounter:
    def test_counts_walking(self, walk_trace):
        trace, truth = walk_trace
        counted = AutocorrelationStepCounter().count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=0.15 * truth.step_count)

    def test_counts_stepping(self, stepping_trace):
        trace, truth = stepping_trace
        counted = AutocorrelationStepCounter().count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=0.2 * truth.step_count)

    def test_rejects_sparse_gestures(self, eating_trace):
        assert AutocorrelationStepCounter().count_steps(eating_trace) <= 4

    def test_fooled_by_gait_rate_spoofer(self):
        # The design-space point: periodicity gating beats peak
        # counting on gestures but not on a rhythmic spoofer driven
        # inside the gait band (1.6 Hz sits squarely in it).
        from repro.simulation.spoofer import SpooferParams, simulate_spoofer

        trace = simulate_spoofer(
            60.0,
            rng=np.random.default_rng(7),
            params=SpooferParams(rate_hz=1.6),
        )
        assert AutocorrelationStepCounter().count_steps(trace) > 30

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            AutocorrelationStepCounter(window_s=0.0)
        with pytest.raises(ConfigurationError):
            AutocorrelationStepCounter(min_correlation=2.0)


class TestCLI:
    def test_demo(self, capsys):
        assert cli_main(["demo", "--duration", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "steps" in out

    def test_dataset_and_track(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        assert (
            cli_main(
                [
                    "dataset",
                    "--out",
                    str(out_dir),
                    "--users",
                    "1",
                    "--walk-s",
                    "15",
                    "--interfere-s",
                    "10",
                ]
            )
            == 0
        )
        files = list(out_dir.glob("*.npz"))
        assert len(files) == 1
        assert cli_main(["track", str(files[0])]) == 0
        out = capsys.readouterr().out
        assert "truth" in out

    def test_figures_subset(self, capsys):
        assert cli_main(["figures", "--only", "fig3"]) == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_figures_rejects_unknown(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            cli_main(["figures", "--only", "fig99"])
