"""Property-based tests for the sensing substrate and k-NN."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.baselines.knn import KNeighborsClassifier
from repro.sensing.frames import heading_rotation, rotate_xyz, rotation_from_euler
from repro.sensing.imu import IMUTrace

payloads = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=2, max_value=60), st.just(3)),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
)

angles = st.floats(min_value=-np.pi, max_value=np.pi)


@settings(max_examples=50, deadline=None)
@given(payloads, st.floats(min_value=1.0, max_value=500.0))
def test_trace_slicing_preserves_payload(data, rate):
    trace = IMUTrace(data, rate)
    mid = trace.n_samples // 2
    if mid >= 1:
        first = trace.slice_samples(0, mid)
        second = trace.slice_samples(mid, trace.n_samples)
        rejoined = IMUTrace.concatenate([first, second])
        assert np.allclose(rejoined.linear_acceleration, trace.linear_acceleration)


@settings(max_examples=50, deadline=None)
@given(payloads, angles, angles, angles)
def test_rotation_preserves_norms(data, roll, pitch, yaw):
    r = rotation_from_euler(roll, pitch, yaw)
    out = rotate_xyz(data, r)
    assert np.allclose(
        np.linalg.norm(out, axis=1), np.linalg.norm(data, axis=1), atol=1e-8
    )


@settings(max_examples=50, deadline=None)
@given(angles)
def test_heading_rotation_inverse(heading):
    r = heading_rotation(heading)
    r_inv = heading_rotation(-heading)
    assert np.allclose(r @ r_inv, np.eye(3), atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(min_value=4, max_value=40), st.integers(2, 6)),
        elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
)
def test_knn_predictions_come_from_training_labels(x):
    labels = [f"c{i % 3}" for i in range(x.shape[0])]
    knn = KNeighborsClassifier(k=3).fit(x, labels)
    predictions = knn.predict(x)
    assert set(predictions) <= set(labels)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=7))
def test_knn_k1_memorises_distinct_points(k_unused):
    rng = np.random.default_rng(k_unused)
    x = rng.normal(size=(10, 3)) * 10
    labels = [str(i) for i in range(10)]
    knn = KNeighborsClassifier(k=1).fit(x, labels)
    assert knn.predict(x) == labels
