"""Unit tests for repro.baselines.stride_models (Fig. 1(d) models)."""

import numpy as np
import pytest

from repro.baselines.stride_models import (
    biomechanical_strides,
    empirical_strides,
    integral_strides,
)
from repro.exceptions import SignalError


class TestBiomechanicalStrides:
    def test_returns_two_per_cycle(self, user, walk_trace):
        strides = biomechanical_strides(walk_trace[0], user.profile)
        assert len(strides) % 2 == 0
        assert len(strides) > 0

    def test_positive_strides(self, user, walk_trace):
        assert all(s >= 0 for s in biomechanical_strides(walk_trace[0], user.profile))

    def test_wrist_error_exceeds_ptrack(self, user, walk_trace):
        from repro.core.pipeline import PTrack

        trace, truth = walk_trace
        naive = np.asarray(biomechanical_strides(trace, user.profile))
        naive_err = np.mean(np.abs(naive - user.stride_m))
        ptrack = PTrack(profile=user.profile).track(trace)
        ptrack_err = np.mean(
            np.abs(np.array([s.length_m for s in ptrack.strides]) - user.stride_m)
        )
        assert naive_err > 1.5 * ptrack_err


class TestEmpiricalStrides:
    def test_one_per_step(self, walk_trace):
        strides = empirical_strides(walk_trace[0])
        assert len(strides) > 0

    def test_scale_constant(self, walk_trace):
        small = np.mean(empirical_strides(walk_trace[0], k_empirical=0.3))
        large = np.mean(empirical_strides(walk_trace[0], k_empirical=0.6))
        assert large == pytest.approx(2 * small, rel=1e-6)

    def test_rejects_bad_k(self, walk_trace):
        with pytest.raises(SignalError):
            empirical_strides(walk_trace[0], k_empirical=0.0)


class TestIntegralStrides:
    def test_underestimates_travel(self, user, walk_trace):
        # The integral only recovers the oscillatory velocity part, so
        # its per-step "stride" misses the baseline v0 badly (SII).
        strides = np.asarray(integral_strides(walk_trace[0]))
        assert strides.size > 0
        assert np.mean(np.abs(strides - user.stride_m)) > 0.15

    def test_non_negative(self, walk_trace):
        assert all(s >= 0 for s in integral_strides(walk_trace[0]))

    def test_empty_for_still_trace(self, rng):
        from repro.simulation.activities import simulate_interference
        from repro.types import ActivityKind

        trace = simulate_interference(ActivityKind.IDLE, 20.0, rng=rng)
        assert integral_strides(trace) == []
