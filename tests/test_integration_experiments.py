"""Smoke tests of the experiment drivers (tiny workloads).

The benchmarks run the full-size workloads; these tests only verify the
drivers execute, return well-formed structures and preserve the
paper-level orderings on reduced inputs.
"""

import numpy as np
import pytest

from repro.experiments import ablations, fig1, fig3, fig6, fig7, fig8, fig9


class TestFig1:
    def test_miscount(self):
        results, table = fig1.run_miscount(duration_s=45.0)
        assert len(results) == 16
        assert all(r.false_steps >= 0 for r in results)
        assert "counter" in table.render()

    def test_spoof(self):
        ticks, table = fig1.run_spoof(duration_s=20.0)
        assert set(ticks) == {"watch", "band", "coprocessor", "software"}
        assert all(v > 5 for v in ticks.values())

    def test_stride_models(self):
        errors, table = fig1.run_stride_models(duration_s=40.0)
        assert set(errors) == {"empirical", "biomechanical", "integral"}
        # The naive integral must be the worst family (SII's argument).
        assert np.mean(errors["integral"]) > np.mean(errors["biomechanical"])


class TestFig3:
    def test_offsets_separate(self, config):
        offsets, table = fig3.run_offsets(duration_s=30.0)
        assert np.median(offsets["walking"]) > config.offset_threshold
        assert np.median(offsets["swinging"]) < config.offset_threshold
        assert np.median(offsets["stepping"]) < config.offset_threshold


class TestFig6:
    def test_overall_accuracy(self):
        means, table = fig6.run_overall_accuracy(n_users=1, duration_s=30.0)
        for system in ("gfit", "mtage", "scar", "ptrack"):
            assert means[(system, "walking")] > 0.85
            assert means[(system, "stepping")] > 0.85
        text = table.render()
        assert "ptrack" in text

    def test_breakdown(self):
        percents, _ = fig6.run_breakdown(n_users=1, duration_s=30.0)
        assert percents["walking"]["others"] < 15.0
        assert percents["stepping"]["others"] < 15.0


class TestFig7:
    def test_interference(self):
        means, _ = fig7.run_interference(duration_s=45.0, n_trials=1)
        # PTrack robust; peak counters mis-trigger.
        for activity in ("eating", "poker", "photo", "game"):
            assert means[("ptrack", activity)] <= 4
            assert means[("gfit", activity)] >= 5

    def test_spoofing(self):
        ticks, _ = fig7.run_spoofing(duration_s=45.0)
        assert ticks["ptrack"] <= 2
        assert ticks["gfit"] > 20
        assert ticks["mtage"] > 20


class TestFig8:
    def test_stride_comparison(self):
        errors, _ = fig8.run_stride_comparison(n_users=1, duration_s=30.0)
        assert np.mean(errors["ptrack"]) < np.mean(errors["mtage"])
        assert np.mean(errors["ptrack"]) < 8.0  # cm

    def test_self_training(self):
        errors, _ = fig8.run_self_training(n_users=1, duration_s=30.0)
        assert np.mean(errors["automatic"]) < 9.0
        assert np.mean(errors["manual"]) < 12.0


class TestFig9:
    def test_navigation(self):
        summary, report, route, table = fig9.run_navigation()
        assert summary.route_length_m == pytest.approx(141.5)
        assert abs(summary.tracked_distance_m - 141.5) < 18.0
        assert summary.mean_stride_error_cm < 10.0
        assert report.positions_m.shape[0] > 100


class TestAblations:
    def test_delta_sweep_shape(self):
        rows, _ = ablations.sweep_delta(deltas=(0.01, 0.0325, 0.08), duration_s=30.0)
        assert len(rows) == 3
        # Tiny delta admits interference; huge delta loses walking.
        assert rows[0][2] >= rows[1][2]  # false steps drop as delta grows
        assert rows[1][1] > 0.9  # paper default keeps walking accurate

    def test_noise_sweep_runs(self):
        rows, _ = ablations.sweep_noise(sigmas=(0.0, 0.1), duration_s=30.0)
        assert len(rows) == 2
        assert rows[0][1] >= 0.9

    def test_rate_sweep_runs(self):
        rows, _ = ablations.sweep_sample_rate(rates=(50.0, 100.0), duration_s=30.0)
        assert all(acc > 0.8 for _, acc in rows)

    def test_consecutive_sweep(self):
        rows, _ = ablations.sweep_consecutive(values=(1, 3), duration_s=30.0)
        # Requiring more consecutive confirmations cannot admit more
        # interference than requiring fewer.
        assert rows[1][2] <= rows[0][2] + 1e-9

    def test_metric_variant_sweep(self):
        rows, _ = ablations.sweep_metric_variants(duration_s=30.0)
        names = [r[0] for r in rows]
        assert "full" in names
