"""Coverage of remaining corners: CLI subcommands, experiment commons,
walker internals, public API surface."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments.common import count_with, make_users, scar_training_set
from repro.simulation.walker import WalkInternals, simulate_walk
from repro.types import ActivityKind


class TestCliMore:
    def test_navigate_command(self, capsys):
        assert cli_main(["navigate", "--seed", "30"]) == 0
        out = capsys.readouterr().out
        assert "141.5" in out

    def test_track_with_explicit_profile(self, tmp_path, capsys):
        from repro.sensing.io import save_trace
        from repro.simulation import SimulatedUser

        user = SimulatedUser()
        trace, _ = simulate_walk(user, 15.0, rng=np.random.default_rng(0))
        path = tmp_path / "walk.npz"
        save_trace(path, trace)
        assert (
            cli_main(["track", str(path), "--arm", "0.6", "--leg", "0.9"]) == 0
        )
        out = capsys.readouterr().out
        assert "distance" in out

    def test_track_trace_without_profile(self, tmp_path, capsys):
        from repro.sensing.io import save_trace
        from repro.simulation import SimulatedUser

        trace, _ = simulate_walk(
            SimulatedUser(), 15.0, rng=np.random.default_rng(0)
        )
        path = tmp_path / "walk.npz"
        save_trace(path, trace)
        assert cli_main(["track", str(path)]) == 0
        out = capsys.readouterr().out
        assert "distance" not in out  # counter-only mode


class TestExperimentCommons:
    def test_make_users_deterministic(self):
        assert make_users(2, 7) == make_users(2, 7)

    def test_scar_training_set_contents(self, user, rng):
        data = scar_training_set(user, rng, duration_s=20.0)
        kinds = [kind for _, kind in data]
        assert ActivityKind.WALKING in kinds
        assert ActivityKind.STEPPING in kinds
        assert ActivityKind.PHOTO not in kinds  # withheld by protocol

    def test_count_with_rejects_unknown(self, walk_trace):
        with pytest.raises(ValueError):
            count_with("magic", walk_trace[0])

    def test_count_with_scar_requires_counter(self, walk_trace):
        with pytest.raises(ValueError):
            count_with("scar", walk_trace[0])


class TestWalkerInternals:
    def test_internals_shapes(self, user):
        trace, _, internals = simulate_walk(
            user, 10.0, rng=None, return_internals=True
        )
        assert isinstance(internals, WalkInternals)
        n = trace.n_samples
        assert internals.true_acceleration.shape == (n, 3)
        assert internals.arm_pitch_rad.shape == (n,)
        assert internals.phase.shape == (n,)

    def test_pitch_constant_for_rigid(self, user):
        _, _, internals = simulate_walk(
            user, 10.0, rng=None, arm_mode="rigid", return_internals=True
        )
        assert np.ptp(internals.arm_pitch_rad) < 1e-9

    def test_pitch_oscillates_for_swing(self, user):
        _, _, internals = simulate_walk(
            user, 10.0, rng=None, arm_mode="swing", return_internals=True
        )
        assert np.ptp(internals.arm_pitch_rad) > 0.3

    def test_phase_monotone(self, user):
        _, _, internals = simulate_walk(
            user, 10.0, rng=np.random.default_rng(0), return_internals=True
        )
        assert np.all(np.diff(internals.phase) >= 0)


class TestPublicAPI:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.apps as apps
        import repro.baselines as baselines
        import repro.core as core
        import repro.eval as evaluation
        import repro.sensing as sensing
        import repro.signal as signal
        import repro.simulation as simulation

        for module in (apps, baselines, core, evaluation, sensing, signal, simulation):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
