"""Tests for repro.runtime.backends: registry, kernels, tolerances."""

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.exceptions import ConfigurationError
from repro.runtime.backends import (
    BACKEND_ENV_VAR,
    Float32Backend,
    NumpyBackend,
    _local_maxima_loop,
    _prominences_loop,
    available_backends,
    get_backend,
)

NUMBA_AVAILABLE = available_backends()["numba"][0]


def _gait_like(n=400, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 100.0
    return np.sin(2 * np.pi * 1.8 * t) + 0.2 * rng.standard_normal(n)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_registry_lists_every_backend():
    reg = available_backends()
    assert set(reg) == {"numpy", "float32", "numba"}
    assert reg["numpy"] == (True, "float64 baseline (always available)")
    assert reg["float32"][0] is True
    available, detail = reg["numba"]
    assert isinstance(detail, str) and detail


def test_get_backend_by_name_and_passthrough():
    be = get_backend("numpy")
    assert isinstance(be, NumpyBackend)
    assert be.bit_identical
    assert get_backend(be) is be
    assert get_backend("FLOAT32").name == "float32"
    assert not get_backend("float32").bit_identical


def test_get_backend_env_var(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "float32")
    assert get_backend().name == "float32"
    monkeypatch.delenv(BACKEND_ENV_VAR)
    assert get_backend().name == "numpy"


def test_get_backend_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown"):
        get_backend("cuda")


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
def test_numba_unavailable_fails_cleanly():
    with pytest.raises(ConfigurationError, match="numba"):
        get_backend("numba")


# ----------------------------------------------------------------------
# NumPy backend: exactly the scalar kernels
# ----------------------------------------------------------------------


def test_numpy_local_maxima_matches_scipy():
    x = _gait_like()
    be = NumpyBackend()
    np.testing.assert_array_equal(be.local_maxima(x), sp_signal.find_peaks(x)[0])
    assert be.local_maxima(np.asarray([1.0, 2.0])).size == 0


def test_numpy_prominences_match_scipy():
    x = _gait_like(seed=1)
    be = NumpyBackend()
    peaks = be.local_maxima(x)
    expected = sp_signal.peak_prominences(x, peaks)[0]
    np.testing.assert_array_equal(be.peak_prominences(x, peaks), expected)


# ----------------------------------------------------------------------
# Reference scans (the numba-compilable loops) vs scipy
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_reference_local_maxima_loop_matches_scipy(seed):
    x = _gait_like(seed=seed)
    np.testing.assert_array_equal(_local_maxima_loop(x), sp_signal.find_peaks(x)[0])


def test_reference_local_maxima_loop_plateaus():
    x = np.asarray([0.0, 1.0, 1.0, 1.0, 0.0, 2.0, 0.0])
    np.testing.assert_array_equal(_local_maxima_loop(x), sp_signal.find_peaks(x)[0])


@pytest.mark.parametrize("seed", range(5))
def test_reference_prominences_loop_matches_scipy(seed):
    x = _gait_like(seed=seed)
    peaks = sp_signal.find_peaks(x)[0]
    expected = sp_signal.peak_prominences(x, peaks)[0]
    np.testing.assert_array_equal(_prominences_loop(x, peaks), expected)


# ----------------------------------------------------------------------
# float32 backend: documented tolerance bounds
# ----------------------------------------------------------------------


def test_float32_lowpass_within_tolerance():
    block = np.column_stack([_gait_like(seed=s) for s in range(3)])
    ref = NumpyBackend().lowpass_block(block, 3.0, 100.0, 4)
    out = Float32Backend().lowpass_block(block, 3.0, 100.0, 4)
    assert out.dtype == np.float64
    np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)


def test_float32_prominences_within_tolerance():
    x = _gait_like(seed=2)
    be32 = Float32Backend()
    peaks = be32.local_maxima(x)
    ref = sp_signal.peak_prominences(np.asarray(x, dtype=np.float32), peaks)[0]
    np.testing.assert_allclose(
        be32.peak_prominences(x, peaks), ref, rtol=1e-3, atol=1e-3
    )


# ----------------------------------------------------------------------
# numba backend: bit-identical when present, clean skip otherwise
# ----------------------------------------------------------------------


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
def test_numba_backend_bit_identical():
    be = get_backend("numba")
    assert be.bit_identical
    ref = NumpyBackend()
    for seed in range(3):
        x = _gait_like(seed=seed)
        np.testing.assert_array_equal(be.local_maxima(x), ref.local_maxima(x))
        peaks = ref.local_maxima(x)
        np.testing.assert_array_equal(
            be.peak_prominences(x, peaks), ref.peak_prominences(x, peaks)
        )
        block = np.column_stack([x, x[::-1].copy(), x * 0.5])
        np.testing.assert_array_equal(
            be.lowpass_block(block, 3.0, 100.0, 4),
            ref.lowpass_block(block, 3.0, 100.0, 4),
        )
