"""Tests for dataset evaluation and the robustness sweeps."""

import numpy as np
import pytest

from repro.exceptions import SignalError
from repro.experiments import dataset_eval, robustness
from repro.simulation.scenarios import SessionBuilder
from repro.types import ActivityKind


@pytest.fixture(scope="module")
def two_sessions(user):
    rng = np.random.default_rng(5)
    walk_heavy = SessionBuilder(user, rng=rng).walk(20.0).step(15.0).build()
    mixed = (
        SessionBuilder(user, rng=rng)
        .walk(15.0)
        .interfere(ActivityKind.EATING, 20.0)
        .build()
    )
    return [("walk_heavy", walk_heavy), ("mixed", mixed)]


class TestEvaluateSessions:
    def test_scores_and_total(self, two_sessions):
        scores, table = dataset_eval.evaluate_sessions(two_sessions)
        assert len(scores) == 2
        for score in scores:
            assert score.error_rate < 0.1
        text = table.render()
        assert "TOTAL" in text

    def test_rejected_cycles_reported(self, two_sessions):
        scores, _ = dataset_eval.evaluate_sessions(two_sessions)
        mixed = next(s for s in scores if s.name == "mixed")
        assert mixed.rejected_cycles >= 1

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            dataset_eval.evaluate_sessions([])


class TestEvaluateDirectory:
    def test_round_trip_directory(self, tmp_path, two_sessions):
        from repro.sensing.io import save_session

        for name, session in two_sessions:
            save_session(tmp_path / f"{name}.npz", session)
        scores, _ = dataset_eval.evaluate_directory(tmp_path)
        assert {s.name for s in scores} == {"walk_heavy", "mixed"}

    def test_plain_traces_skipped(self, tmp_path, two_sessions, walk_trace):
        from repro.sensing.io import save_session, save_trace

        save_trace(tmp_path / "plain.npz", walk_trace[0])
        save_session(tmp_path / "labelled.npz", two_sessions[0][1])
        scores, _ = dataset_eval.evaluate_directory(tmp_path)
        assert [s.name for s in scores] == ["labelled"]

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SignalError):
            dataset_eval.evaluate_directory(tmp_path)


class TestRobustnessSweeps:
    def test_attitude_error_sweep_small(self):
        rows, _ = robustness.sweep_attitude_error(
            errors_rad=(0.0, 0.05), duration_s=25.0
        )
        assert len(rows) == 2
        assert rows[0][1] > 0.9

    def test_arm_lag_sweep_small(self):
        rows, _ = robustness.sweep_arm_lag(lags=(0.05, 0.08), duration_s=25.0)
        assert all(acc > 0.85 for _, acc, _ in rows)

    def test_mount_sweep_small(self):
        rows, _ = robustness.sweep_wrist_mount(
            mount_pitches_rad=(0.0, 0.3), duration_s=25.0
        )
        assert all(acc > 0.85 for _, acc, _ in rows)

    def test_gyro_sweep_small(self):
        rows, _ = robustness.sweep_gyro_quality(
            gyro_sigmas=(0.005,), duration_s=25.0
        )
        assert rows[0][1] > 0.85
