"""Tests for repro.faults: injector determinism, policy, degraded ingest."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import StreamingPTrack
from repro.exceptions import ConfigurationError
from repro.faults import (
    DuplicateBatches,
    FaultPolicy,
    NaNBurst,
    Outage,
    OutOfOrderBatches,
    RateJitter,
    SampleDropout,
    Saturation,
    faulted_stream,
    inject_batch_faults,
    inject_faults,
    split_batches,
)
from repro.simulation.walker import simulate_walk


def _trace(user, duration_s=20.0, seed=7):
    trace, _ = simulate_walk(
        user, duration_s, rng=np.random.default_rng(seed)
    )
    return trace.linear_acceleration


_ALL_TRACE_INJECTORS = [
    SampleDropout(prob=0.05),
    Outage(rate_per_min=3.0, min_gap_s=0.3, max_gap_s=1.0),
    NaNBurst(rate_per_min=4.0),
    Saturation(limit=15.0),
    RateJitter(sigma=0.05),
]


class TestInjectorValidation:
    def test_dropout_rejects_bad_prob(self):
        with pytest.raises(ConfigurationError):
            SampleDropout(prob=1.5)

    def test_outage_rejects_inverted_span(self):
        with pytest.raises(ConfigurationError):
            Outage(min_gap_s=2.0, max_gap_s=0.5)

    def test_saturation_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            Saturation(limit=0.0)

    def test_policy_rejects_bad_repair_mode(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(repair="extrapolate")

    def test_policy_rejects_long_repair_horizon(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(max_repair_s=10.0)


class TestInjectorBehaviour:
    def test_dropout_marks_rows_nan(self, user):
        data = _trace(user)
        out = inject_faults(data, [SampleDropout(prob=0.1)], seed=1)
        bad = ~np.isfinite(out).all(axis=1)
        assert 0 < bad.sum() < data.shape[0]
        # Surviving rows are untouched.
        assert np.array_equal(out[~bad], data[~bad])

    def test_saturation_clips_at_rail(self, user):
        data = _trace(user)
        out = inject_faults(data, [Saturation(limit=5.0)], seed=1)
        assert np.abs(out).max() <= 5.0
        assert np.abs(data).max() > 5.0

    def test_outage_leaves_contiguous_gaps(self, user):
        data = _trace(user, duration_s=30.0)
        out = inject_faults(
            data,
            [Outage(rate_per_min=6.0, min_gap_s=0.5, max_gap_s=1.0)],
            seed=3,
        )
        bad = ~np.isfinite(out).all(axis=1)
        assert bad.sum() >= 50  # at least one 0.5 s gap at 100 Hz

    def test_zero_prob_injectors_are_identity(self, user):
        data = _trace(user)
        out = inject_faults(data, [SampleDropout(prob=0.0)], seed=5)
        assert np.array_equal(out, data)

    def test_batch_faults_preserve_sample_multiset(self, user):
        data = _trace(user)
        batches = split_batches(data, 50)
        out = inject_batch_faults(
            batches, [OutOfOrderBatches(prob=0.5)], seed=9
        )
        assert len(out) == len(batches)
        assert np.array_equal(
            np.sort(np.concatenate(out), axis=0),
            np.sort(data, axis=0),
        )

    def test_duplicate_batches_grow_the_stream(self, user):
        data = _trace(user)
        batches = split_batches(data, 50)
        out = inject_batch_faults(
            batches, [DuplicateBatches(prob=0.3)], seed=9
        )
        assert len(out) > len(batches)


class TestInjectorDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        index=st.integers(min_value=0, max_value=500),
    )
    def test_trace_injection_deterministic_under_seed_index(
        self, seed, index
    ):
        rng = np.random.default_rng(1234)
        data = rng.normal(size=(400, 3))
        a = inject_faults(data, _ALL_TRACE_INJECTORS, seed=seed, index=index)
        b = inject_faults(data, _ALL_TRACE_INJECTORS, seed=seed, index=index)
        assert np.array_equal(a, b, equal_nan=True)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_different_index_different_stream(self, seed):
        rng = np.random.default_rng(99)
        data = rng.normal(size=(600, 3))
        a = inject_faults(data, [SampleDropout(prob=0.2)], seed=seed, index=0)
        b = inject_faults(data, [SampleDropout(prob=0.2)], seed=seed, index=1)
        assert not np.array_equal(a, b, equal_nan=True)

    def test_batch_injection_deterministic(self, user):
        data = _trace(user)
        injectors = [DuplicateBatches(prob=0.2), OutOfOrderBatches(prob=0.2)]
        a = faulted_stream(data, injectors, seed=21, index=3)
        b = faulted_stream(data, injectors, seed=21, index=3)
        assert len(a) == len(b)
        assert all(np.array_equal(x, y, equal_nan=True) for x, y in zip(a, b))


class TestDegradedIngest:
    def test_clean_trace_identical_with_policy(self, user):
        data = _trace(user, duration_s=30.0)
        strict = StreamingPTrack(100.0, profile=user.profile)
        degraded = StreamingPTrack(
            100.0, profile=user.profile, fault_policy=FaultPolicy()
        )
        credited = {}
        for name, sess in (("strict", strict), ("degraded", degraded)):
            events = []
            for i in range(0, data.shape[0], 50):
                steps, _ = sess.append(data[i : i + 50])
                events.extend(steps)
            steps, _ = sess.flush()
            events.extend(steps)
            credited[name] = [(e.index, e.time) for e in events]
        assert credited["strict"] == credited["degraded"]
        ops = degraded.op_stats
        assert ops.samples_repaired == 0
        assert ops.samples_rejected == 0
        assert ops.gaps_reset == 0

    def test_strict_session_rejects_nan(self):
        sess = StreamingPTrack(100.0)
        bad = np.zeros((30, 3))
        bad[10] = np.nan
        with pytest.raises(Exception):
            sess.append(bad)

    def test_short_defects_are_repaired(self, user):
        data = _trace(user, duration_s=30.0)
        faulted = inject_faults(
            data, [SampleDropout(prob=0.05)], seed=31
        )
        sess = StreamingPTrack(
            100.0, profile=user.profile, fault_policy=FaultPolicy()
        )
        sess.append(faulted)
        sess.flush()
        ops = sess.op_stats
        assert ops.samples_repaired > 0
        assert ops.gaps_reset == 0
        # Repairs keep tracking close to the clean trace.
        clean = StreamingPTrack(100.0, profile=user.profile)
        clean.append(data)
        clean.flush()
        assert abs(sess.step_count - clean.step_count) <= 3

    def test_long_gap_resets_segmentation(self, user):
        data = _trace(user, duration_s=30.0)
        faulted = data.copy()
        faulted[1000:1300] = np.nan  # a 3 s outage >> max_repair_s
        sess = StreamingPTrack(
            100.0, profile=user.profile, fault_policy=FaultPolicy()
        )
        sess.append(faulted)
        sess.flush()
        ops = sess.op_stats
        assert ops.gaps_reset == 1
        assert ops.samples_rejected == 300
        assert sess.step_count > 0

    def test_trailing_gap_rejected_on_flush(self, user):
        data = _trace(user, duration_s=20.0)
        faulted = data.copy()
        faulted[-10:] = np.nan
        sess = StreamingPTrack(
            100.0, profile=user.profile, fault_policy=FaultPolicy()
        )
        sess.append(faulted)
        sess.flush()
        assert sess.op_stats.samples_rejected == 10

    def test_hold_repair_mode(self, user):
        data = _trace(user, duration_s=20.0)
        faulted = inject_faults(data, [SampleDropout(prob=0.05)], seed=41)
        sess = StreamingPTrack(
            100.0,
            profile=user.profile,
            fault_policy=FaultPolicy(repair="hold"),
        )
        sess.append(faulted)
        sess.flush()
        assert sess.op_stats.samples_repaired > 0
        assert sess.step_count > 0

    def test_saturated_samples_quarantined(self, user):
        data = _trace(user, duration_s=20.0)
        faulted = inject_faults(data, [Saturation(limit=8.0)], seed=43)
        sess = StreamingPTrack(
            100.0,
            profile=user.profile,
            fault_policy=FaultPolicy(saturation_limit=8.0),
        )
        sess.append(faulted)
        sess.flush()
        ops = sess.op_stats
        assert ops.samples_repaired + ops.samples_rejected > 0

    @settings(max_examples=8, deadline=None)
    @given(
        chunks=st.lists(
            st.integers(min_value=1, max_value=400),
            min_size=1,
            max_size=8,
        )
    )
    def test_repaired_stream_chunk_invariant(self, chunks):
        # A faulted stream must credit identical steps (and identical
        # health counters) no matter how its samples are chunked into
        # append calls — the PR-3 invariance, extended to repairs.
        rng = np.random.default_rng(77)
        t = np.arange(3000) / 100.0
        data = np.stack(
            [
                2.0 * np.sin(2 * np.pi * 1.8 * t),
                0.3 * rng.normal(size=t.size),
                9.0 * np.cos(2 * np.pi * 1.8 * t),
            ],
            axis=1,
        )
        faulted = inject_faults(
            data,
            [
                SampleDropout(prob=0.05),
                Outage(rate_per_min=8.0, min_gap_s=0.3, max_gap_s=0.8),
            ],
            seed=55,
        )

        def run(batches):
            sess = StreamingPTrack(100.0, fault_policy=FaultPolicy())
            events = []
            for b in batches:
                steps, _ = sess.append(b)
                events.extend(steps)
            steps, _ = sess.flush()
            events.extend(steps)
            ops = sess.op_stats
            return (
                [(e.index, e.time) for e in events],
                ops.samples_repaired,
                ops.samples_rejected,
                ops.gaps_reset,
            )

        reference = run([faulted])
        cuts, pos = [], 0
        for c in chunks:
            if pos >= faulted.shape[0]:
                break
            cuts.append(faulted[pos : pos + c])
            pos += c
        if pos < faulted.shape[0]:
            cuts.append(faulted[pos:])
        assert run(cuts) == reference
