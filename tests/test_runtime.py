"""Tests for the repro.runtime subsystem (parallel map + trace cache)."""

import pickle

import numpy as np
import pytest

from repro.eval.harness import repeat
from repro.exceptions import ConfigurationError, SignalError
from repro.experiments.common import count_sweep, count_with, make_users
from repro.runtime import (
    TraceCache,
    content_key,
    derive_rng,
    parallel_map,
    resolve_workers,
    simulate_interference_cached,
    simulate_walk_cached,
)
from repro.runtime.parallel import WORKERS_ENV
from repro.simulation.activities import simulate_interference
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind


def _square(x):
    """Module-level task so worker processes can pickle it."""
    return x * x


def _measure(seed):
    """Module-level replicate measurement for repeat() tests."""
    rng = derive_rng(seed)
    return {"a": float(rng.uniform()), "b": float(seed)}


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_env_variable_honoured(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_workers()


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=2) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], workers=4) == [49]

    def test_chunksize_does_not_change_results(self):
        items = list(range(16))
        assert parallel_map(_square, items, workers=2, chunksize=4) == [
            x * x for x in items
        ]


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(5, 1, 2).uniform(size=4)
        b = derive_rng(5, 1, 2).uniform(size=4)
        assert np.array_equal(a, b)

    def test_coordinates_decorrelate(self):
        a = derive_rng(5, 0).uniform(size=4)
        b = derive_rng(5, 1).uniform(size=4)
        assert not np.array_equal(a, b)

    def test_order_independent_of_drawing(self):
        # Deriving per task (not threading one generator) makes task
        # streams independent of execution order.
        first_then_second = [derive_rng(9, i).uniform() for i in (0, 1)]
        second_then_first = [derive_rng(9, i).uniform() for i in (1, 0)]
        assert first_then_second == list(reversed(second_then_first))


class TestContentKey:
    def test_stable(self):
        assert content_key("walk", 1.0, "swing") == content_key("walk", 1.0, "swing")

    def test_distinct_parts_distinct_keys(self):
        assert content_key("walk", 1) != content_key("walk", 2)
        assert content_key("walk") != content_key("interference")

    def test_user_profiles_keyed_by_content(self):
        u1 = SimulatedUser()
        u2 = SimulatedUser()
        assert content_key(u1) == content_key(u2)
        shorter = u1.with_gait(stride_m=u1.stride_m * 0.9)
        assert content_key(u1) != content_key(shorter)


class TestTraceCache:
    def test_put_get_roundtrip(self):
        cache = TraceCache()
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert "k" in cache and len(cache) == 1

    def test_miss_returns_default(self):
        cache = TraceCache()
        assert cache.get("absent", "fallback") == "fallback"

    def test_hit_miss_counters(self):
        cache = TraceCache()
        cache.get("k")
        cache.put("k", 1)
        cache.get("k")
        assert cache.misses == 1 and cache.hits == 1

    def test_uncounted_peek(self):
        cache = TraceCache()
        cache.get("k", count=False)
        assert cache.misses == 0

    def test_lru_eviction(self):
        cache = TraceCache(max_items=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_get_or_compute(self):
        cache = TraceCache()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_clear_resets_memory_and_counters(self):
        cache = TraceCache()
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            TraceCache(max_items=0)

    def test_disk_layer_survives_new_instance(self, tmp_path):
        first = TraceCache(directory=tmp_path)
        first.put("k", {"x": 1.5})
        second = TraceCache(directory=tmp_path)
        assert second.get("k") == {"x": 1.5}
        assert second.hits == 1

    def test_torn_disk_entry_reads_as_miss(self, tmp_path):
        cache = TraceCache(directory=tmp_path)
        (tmp_path / "bad.pkl").write_bytes(b"\x80\x04 torn")
        assert cache.get("bad", "default") == "default"

    def test_truncated_disk_entry_is_quarantined(self, tmp_path):
        # Write a real entry, truncate it on disk, and drop the memory
        # copy: the damaged file must read as a miss, move aside under
        # a .corrupt suffix, count, and let a recompute land cleanly.
        writer = TraceCache(directory=tmp_path)
        writer.put("walk", {"trace": list(range(200))})
        entry = tmp_path / "walk.pkl"
        payload = entry.read_bytes()
        entry.write_bytes(payload[: len(payload) // 2])

        cache = TraceCache(directory=tmp_path)
        assert cache.get("walk", "MISS") == "MISS"
        assert cache.misses == 1
        assert cache.corrupt_entries == 1
        assert not entry.exists()
        assert (tmp_path / "walk.pkl.corrupt").exists()
        # The quarantine frees the slot: get_or_compute recomputes and
        # repopulates disk, and a fresh instance reads the new value.
        assert cache.get_or_compute("walk", lambda: "fresh") == "fresh"
        assert TraceCache(directory=tmp_path).get("walk") == "fresh"

    def test_corrupt_entry_counts_telemetry(self, tmp_path):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        writer = TraceCache(directory=tmp_path)
        writer.put("k", [1, 2, 3])
        entry = tmp_path / "k.pkl"
        entry.write_bytes(entry.read_bytes()[:4])
        cache = TraceCache(directory=tmp_path, telemetry=registry)
        assert cache.get("k", "MISS") == "MISS"
        snap = registry.snapshot()
        assert snap["counters"]["runtime_cache_corrupt_total"] == 1
        assert snap["counters"]["runtime_cache_misses_total"] == 1

    def test_disk_eviction_recovers_from_disk(self, tmp_path):
        cache = TraceCache(max_items=1, directory=tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)  # evicts a from memory, not from disk
        assert cache.get("a") == 1


class TestCachedSimulators:
    def test_walk_matches_direct_simulation(self):
        user = SimulatedUser()
        cache = TraceCache()
        trace, truth = simulate_walk_cached(user, 10.0, seed=3, cache=cache)
        direct_trace, direct_truth = simulate_walk(
            user, 10.0, rng=np.random.default_rng(3)
        )
        assert np.array_equal(
            trace.linear_acceleration, direct_trace.linear_acceleration
        )
        assert truth.step_count == direct_truth.step_count

    def test_second_call_is_cached(self):
        user = SimulatedUser()
        cache = TraceCache()
        first = simulate_walk_cached(user, 8.0, seed=1, cache=cache)
        second = simulate_walk_cached(user, 8.0, seed=1, cache=cache)
        assert first[0] is second[0]
        assert cache.hits == 1 and cache.misses == 1

    def test_different_seeds_miss(self):
        user = SimulatedUser()
        cache = TraceCache()
        a, _ = simulate_walk_cached(user, 8.0, seed=1, cache=cache)
        b, _ = simulate_walk_cached(user, 8.0, seed=2, cache=cache)
        assert not np.array_equal(a.linear_acceleration, b.linear_acceleration)

    def test_interference_matches_direct(self):
        cache = TraceCache()
        cached = simulate_interference_cached(
            ActivityKind.EATING, 10.0, seed=5, cache=cache
        )
        direct = simulate_interference(
            ActivityKind.EATING, 10.0, rng=np.random.default_rng(5)
        )
        assert np.array_equal(
            cached.linear_acceleration, direct.linear_acceleration
        )

    def test_cached_traces_pickle(self):
        # Disk layer + cross-process transport both need this.
        user = SimulatedUser()
        trace, truth = simulate_walk_cached(user, 6.0, seed=9, cache=TraceCache())
        restored_trace, restored_truth = pickle.loads(
            pickle.dumps((trace, truth))
        )
        assert np.array_equal(
            trace.linear_acceleration, restored_trace.linear_acceleration
        )
        assert restored_truth.step_count == truth.step_count


class TestRepeatRuntime:
    def test_serial_and_parallel_identical(self):
        serial = repeat(_measure, [4, 5, 6])
        parallel = repeat(_measure, [4, 5, 6], workers=2)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert serial[name].values == parallel[name].values

    def test_cache_memoizes_replicates(self):
        cache = TraceCache()
        key = content_key("measure", 1)
        first = repeat(_measure, [1, 2], cache=cache, cache_key=key)
        second = repeat(_measure, [1, 2], cache=cache, cache_key=key)
        assert first["a"].values == second["a"].values
        assert cache.hits == 2 and cache.misses == 2

    def test_cache_extends_to_new_seeds_only(self):
        cache = TraceCache()
        key = content_key("measure", 2)
        repeat(_measure, [1, 2], cache=cache, cache_key=key)
        extended = repeat(_measure, [1, 2, 3], cache=cache, cache_key=key)
        assert len(extended["a"].values) == 3
        assert cache.hits == 2 and cache.misses == 3

    def test_different_cache_keys_do_not_collide(self):
        cache = TraceCache()
        repeat(_measure, [1], cache=cache, cache_key=content_key("m", 1))
        repeat(_measure, [1], cache=cache, cache_key=content_key("m", 2))
        assert cache.misses == 2

    def test_cache_requires_key(self):
        with pytest.raises(SignalError):
            repeat(_measure, [1], cache=TraceCache())

    def test_empty_seeds_rejected(self):
        with pytest.raises(SignalError):
            repeat(_measure, [])


class TestCountSweep:
    def test_matches_count_with(self):
        user = make_users(1, 3)[0]
        trace, _ = simulate_walk(user, 15.0, rng=np.random.default_rng(3))
        sweep = count_sweep(["gfit", "ptrack"], [trace])
        assert sweep["gfit"] == [count_with("gfit", trace)]
        assert sweep["ptrack"] == [count_with("ptrack", trace)]

    def test_serial_and_parallel_identical(self):
        user = make_users(1, 4)[0]
        traces = [
            simulate_walk(user, 12.0, rng=np.random.default_rng(s))[0]
            for s in (1, 2)
        ]
        serial = count_sweep(["gfit", "mtage", "ptrack"], traces)
        parallel = count_sweep(["gfit", "mtage", "ptrack"], traces, workers=2)
        assert serial == parallel


class TestDriversSerialParallelIdentity:
    """The figure drivers must be invariant to the worker count."""

    def test_fig1_miscount(self):
        from repro.experiments.fig1 import run_miscount

        serial, _ = run_miscount(duration_s=20.0)
        parallel, _ = run_miscount(duration_s=20.0, workers=2)
        assert serial == parallel

    def test_fig7_interference(self):
        from repro.experiments.fig7 import run_interference

        serial, _ = run_interference(duration_s=15.0, n_trials=1)
        parallel, _ = run_interference(duration_s=15.0, n_trials=1, workers=2)
        assert serial == parallel

    @pytest.mark.slow
    def test_fig6_overall_accuracy(self):
        from repro.experiments.fig6 import run_overall_accuracy

        serial, _ = run_overall_accuracy(n_users=2, duration_s=30.0)
        parallel, _ = run_overall_accuracy(n_users=2, duration_s=30.0, workers=2)
        assert serial == parallel

    @pytest.mark.slow
    def test_fig8_stride_comparison(self):
        from repro.experiments.fig8 import run_stride_comparison

        serial, _ = run_stride_comparison(n_users=2, duration_s=30.0)
        parallel, _ = run_stride_comparison(n_users=2, duration_s=30.0, workers=2)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert np.array_equal(serial[name], parallel[name])

    @pytest.mark.slow
    def test_study(self):
        from repro.experiments.study import run_study

        serial, _ = run_study(n_users=2, n_days=1, scale=0.3)
        parallel, _ = run_study(n_users=2, n_days=1, scale=0.3, workers=2)
        assert [(r.counter, r.counted, r.true) for r in serial] == [
            (r.counter, r.counted, r.true) for r in parallel
        ]
