"""Incremental self-training equals the paper's batch solve.

The load-bearing contract of :class:`repro.profiles.IncrementalSelfTrainer`
is that its running sufficient statistics are *exactly* the batch
procedure's inputs: train at any moment and you get bit-for-bit the
profile :class:`repro.core.selftrain.SelfTrainer` would produce from
the same observations — under any chunking and any arrival order
(hypothesis pins both). Quantised mode trades that exactness for
bounded memory inside a documented tolerance, and ``state_dict`` /
``from_state`` must round-trip the statistics losslessly so
re-calibration resumes across runs.

Observations come from the *offline* extraction helpers
(``calibration_observations`` / ``walk_observations``), matching what
the batch trainer sees internally; the streaming tap is covered by the
serving tests.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.selftrain import (
    CalibrationWalk,
    SelfTrainer,
    calibration_observations,
    walk_observations,
)
from repro.exceptions import CalibrationError, ConfigurationError
from repro.profiles import IncrementalSelfTrainer


@pytest.fixture(scope="module")
def corpus(walk_trace, stepping_trace, config):
    """The shared observation corpus: two referenced walks' evidence."""
    walk, walk_truth = walk_trace
    step, step_truth = stepping_trace
    walks = [
        CalibrationWalk(walk, walk_truth.total_distance_m),
        CalibrationWalk(step, step_truth.total_distance_m),
    ]
    anchor = calibration_observations([w.trace for w in walks], config)
    per_walk = [
        (walk_observations(w.trace, config), w.reference_distance_m)
        for w in walks
    ]
    batch = SelfTrainer(config).train(walks)
    return anchor, per_walk, batch


def _train_incremental(
    corpus, config, chunk=10_000, order=None, reverse_walks=False, **kwargs
):
    anchor, per_walk, _ = corpus
    obs = list(anchor)
    if order is not None:
        obs = [obs[i] for i in order]
    trainer = IncrementalSelfTrainer(config=config, **kwargs)
    for start in range(0, len(obs), chunk):
        trainer.observe(obs[start : start + chunk])
    walks = list(reversed(per_walk)) if reverse_walks else per_walk
    for cycle_obs, reference in walks:
        trainer.observe_walk(cycle_obs, reference)
    return trainer


class TestExactEquivalence:
    def test_all_at_once_matches_batch(self, corpus, config):
        trainer = _train_incremental(corpus, config)
        assert trainer.train() == corpus[2]

    def test_single_observation_chunks_match_batch(self, corpus, config):
        trainer = _train_incremental(corpus, config, chunk=1)
        assert trainer.train() == corpus[2]

    def test_walk_order_is_irrelevant(self, corpus, config):
        trainer = _train_incremental(corpus, config, reverse_walks=True)
        assert trainer.train() == corpus[2]

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(chunk=st.integers(1, 97), shuffle_seed=st.integers(0, 2**31))
    def test_any_chunking_and_order_matches_batch(
        self, corpus, config, chunk, shuffle_seed
    ):
        import random

        n = len(corpus[0])
        order = list(range(n))
        random.Random(shuffle_seed).shuffle(order)
        trainer = _train_incremental(corpus, config, chunk=chunk, order=order)
        assert trainer.train() == corpus[2]

    def test_interleaved_walks_and_observations(self, corpus, config):
        # Evidence arriving the way a fleet delivers it: some credited
        # cycles, a referenced walk, more cycles, another walk.
        anchor, per_walk, batch = corpus
        half = len(anchor) // 2
        trainer = IncrementalSelfTrainer(config=config)
        trainer.observe(anchor[:half])
        trainer.observe_walk(*per_walk[0])
        trainer.observe(anchor[half:])
        trainer.observe_walk(*per_walk[1])
        assert trainer.train() == batch


class TestQuantisedTolerance:
    @pytest.mark.parametrize("resolution", [0.0005, 0.001])
    def test_quantised_arm_within_documented_bound(
        self, corpus, config, resolution
    ):
        exact = _train_incremental(corpus, config).train()
        quantised = _train_incremental(
            corpus, config, resolution_m=resolution
        ).train()
        # Documented: the anchor moves <= resolution/2, the selected m̂
        # by at most one more default-grid step (5 mm).
        assert abs(quantised.arm_length_m - exact.arm_length_m) <= (
            resolution / 2 + 0.005 + 1e-9
        )
        # At millimetre lattices Step 2 lands on the same grid point.
        assert quantised.leg_length_m == exact.leg_length_m

    def test_quantised_estimate_flagged_inexact(self, corpus, config):
        trainer = _train_incremental(corpus, config, resolution_m=0.01)
        assert trainer.estimate().exact is False
        assert _train_incremental(corpus, config).estimate().exact is True

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ConfigurationError):
            IncrementalSelfTrainer(resolution_m=0.0)
        with pytest.raises(ConfigurationError):
            IncrementalSelfTrainer(resolution_m=-1.0)


class TestStateRoundTrip:
    def test_state_round_trip_mid_stream(self, corpus, config):
        anchor, per_walk, batch = corpus
        half = len(anchor) // 2
        first = IncrementalSelfTrainer(config=config)
        first.observe(anchor[:half])
        first.observe_walk(*per_walk[0])
        state = pickle.loads(pickle.dumps(first.state_dict()))
        resumed = IncrementalSelfTrainer.from_state(state, config=config)
        resumed.observe(anchor[half:])
        resumed.observe_walk(*per_walk[1])
        assert resumed.train() == batch
        assert resumed.observations == first.observations + (
            len(anchor) - half + len(per_walk[1][0])
        )

    def test_state_round_trip_preserves_training(self, corpus, config):
        trainer = _train_incremental(corpus, config)
        clone = IncrementalSelfTrainer.from_state(
            trainer.state_dict(), config=config
        )
        assert clone.train() == trainer.train()
        assert clone.referenced_walks == trainer.referenced_walks

    def test_unknown_state_version_fails_loud(self, corpus, config):
        trainer = _train_incremental(corpus, config)
        state = trainer.state_dict()
        state["state_version"] = 99
        with pytest.raises(ConfigurationError):
            IncrementalSelfTrainer.from_state(state, config=config)


class TestBoundedMemory:
    def test_oldest_walk_dropped_beyond_max_walks(self, corpus, config):
        anchor, per_walk, _ = corpus
        stale = (per_walk[0][0], per_walk[0][1] * 2.0)  # a "wrong" old walk
        full = IncrementalSelfTrainer(config=config, max_walks=2)
        full.observe(anchor)
        for walk in (stale, per_walk[0], per_walk[1]):
            full.observe_walk(*walk)
        recent_only = IncrementalSelfTrainer(config=config, max_walks=2)
        recent_only.observe(anchor)
        for walk in (per_walk[0], per_walk[1]):
            recent_only.observe_walk(*walk)
        assert full.train() == recent_only.train()
        assert full.referenced_walks == 2

    def test_train_without_walks_raises(self, corpus, config):
        anchor, _, _ = corpus
        trainer = IncrementalSelfTrainer(config=config)
        trainer.observe(anchor)
        with pytest.raises(CalibrationError):
            trainer.train()

    def test_estimate_without_walks_is_arm_only(self, corpus, config):
        anchor, _, batch = corpus
        trainer = IncrementalSelfTrainer(config=config)
        trainer.observe(anchor)
        est = trainer.estimate()
        assert est.arm_length_m == batch.arm_length_m
        assert est.leg_length_m is None
        assert est.profile is None

    def test_confidence_grows_with_evidence(self, corpus, config):
        anchor, per_walk, _ = corpus
        trainer = IncrementalSelfTrainer(config=config)
        empty = trainer.confidence()
        trainer.observe(anchor)
        anchored = trainer.confidence()
        trainer.observe_walk(*per_walk[0])
        walked = trainer.confidence()
        assert empty <= anchored <= walked <= 1.0
        assert walked > empty
