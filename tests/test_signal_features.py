"""Unit tests for repro.signal.features."""

import numpy as np
import pytest

from repro.exceptions import SignalError
from repro.signal.features import FEATURE_NAMES, activity_features


def _window(vert_freq=2.0, vert_amp=2.0, horiz_amp=1.0, n=200, rate=100.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / rate
    acc = np.column_stack(
        [
            horiz_amp * np.sin(2 * np.pi * 1.0 * t),
            0.1 * rng.normal(size=n),
            vert_amp * np.sin(2 * np.pi * vert_freq * t),
        ]
    )
    return acc


class TestActivityFeatures:
    def test_length_matches_names(self):
        f = activity_features(_window(), 100.0)
        assert f.shape == (len(FEATURE_NAMES),)

    def test_all_finite(self):
        f = activity_features(_window(), 100.0)
        assert np.all(np.isfinite(f))

    def test_dominant_frequency_detected(self):
        f = activity_features(_window(vert_freq=2.0), 100.0)
        dom = f[FEATURE_NAMES.index("vert_dominant_freq_hz")]
        assert dom == pytest.approx(2.0, abs=0.6)

    def test_vert_std_scales(self):
        weak = activity_features(_window(vert_amp=0.5), 100.0)
        strong = activity_features(_window(vert_amp=4.0), 100.0)
        i = FEATURE_NAMES.index("vert_std")
        assert strong[i] > 4 * weak[i]

    def test_constant_window_degenerates_gracefully(self):
        f = activity_features(np.zeros((64, 3)), 100.0)
        assert np.all(np.isfinite(f))
        assert f[FEATURE_NAMES.index("vert_std")] == 0.0

    def test_entropy_higher_for_noise(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=(256, 3))
        tone = _window(n=256)
        i = FEATURE_NAMES.index("vert_spectral_entropy")
        assert activity_features(noise, 100.0)[i] > activity_features(tone, 100.0)[i]

    def test_zero_crossing_rate_tracks_frequency(self):
        slow = activity_features(_window(vert_freq=1.0, n=400), 100.0)
        fast = activity_features(_window(vert_freq=3.0, n=400), 100.0)
        i = FEATURE_NAMES.index("vert_zero_cross_rate")
        assert fast[i] > 2 * slow[i]

    def test_rejects_short_window(self):
        with pytest.raises(SignalError):
            activity_features(np.zeros((4, 3)), 100.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(SignalError):
            activity_features(np.zeros((64, 2)), 100.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(SignalError):
            activity_features(_window(), 0.0)

    def test_rejects_nan(self):
        w = _window()
        w[3, 0] = np.nan
        with pytest.raises(SignalError):
            activity_features(w, 100.0)
