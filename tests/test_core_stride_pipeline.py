"""Unit tests for repro.core.{stride,pipeline}."""

import numpy as np
import pytest

from repro.core.pipeline import PTrack
from repro.core.stride import PTrackStrideEstimator, stride_from_bounce_model
from repro.exceptions import ConfigurationError
from repro.simulation.gait import bounce_from_stride
from repro.types import GaitType, TrackingResult, UserProfile


class TestStrideFromBounceModel:
    def test_eq2_geometry(self):
        profile = UserProfile(0.6, 0.9, calibration_k=2.0)
        b = bounce_from_stride(0.7, 0.9)
        assert stride_from_bounce_model(b, profile) == pytest.approx(0.7)

    def test_k_scaling(self):
        p2 = UserProfile(0.6, 0.9, calibration_k=2.0)
        p3 = UserProfile(0.6, 0.9, calibration_k=3.0)
        assert stride_from_bounce_model(0.05, p3) == pytest.approx(
            1.5 * stride_from_bounce_model(0.05, p2)
        )

    def test_clips_out_of_range_bounce(self):
        profile = UserProfile(0.6, 0.9)
        assert stride_from_bounce_model(-0.1, profile) == 0.0
        assert stride_from_bounce_model(5.0, profile) == pytest.approx(
            2.0 * 0.9
        )

    def test_zero_bounce_zero_stride(self):
        assert stride_from_bounce_model(0.0, UserProfile(0.6, 0.9)) == 0.0


class TestStrideEstimator:
    def test_two_estimates_per_cycle(self, user, config, walk_trace, ptrack_counter):
        trace, _ = walk_trace
        _, classifications = ptrack_counter.process(trace)
        estimator = PTrackStrideEstimator(user.profile, config)
        estimates = estimator.estimate(trace, classifications)
        confirmed = [c for c in classifications if c.steps_added > 0]
        assert 2 * len(confirmed) >= len(estimates) > 1.6 * len(confirmed)

    def test_walking_stride_accuracy(self, user, config, walk_trace, ptrack_counter):
        trace, truth = walk_trace
        _, classifications = ptrack_counter.process(trace)
        estimates = PTrackStrideEstimator(user.profile, config).estimate(
            trace, classifications
        )
        errors = np.abs(
            np.array([e.length_m for e in estimates])[: truth.step_count]
            - truth.stride_lengths_m[: len(estimates)]
        )
        assert np.mean(errors) < 0.06  # the paper reports ~5 cm

    def test_stepping_stride_accuracy(self, user, config, stepping_trace, ptrack_counter):
        trace, truth = stepping_trace
        _, classifications = ptrack_counter.process(trace)
        estimates = PTrackStrideEstimator(user.profile, config).estimate(
            trace, classifications
        )
        assert len(estimates) > 0
        errors = np.abs(np.array([e.length_m for e in estimates]) - user.stride_m)
        assert np.mean(errors) < 0.07

    def test_estimates_time_ordered(self, user, config, walk_trace, ptrack_counter):
        trace, _ = walk_trace
        _, classifications = ptrack_counter.process(trace)
        estimates = PTrackStrideEstimator(user.profile, config).estimate(
            trace, classifications
        )
        times = [e.time for e in estimates]
        assert times == sorted(times)

    def test_interference_yields_no_estimates(self, user, config, eating_trace, ptrack_counter):
        _, classifications = ptrack_counter.process(eating_trace)
        estimates = PTrackStrideEstimator(user.profile, config).estimate(
            eating_trace, classifications
        )
        confirmed = [c for c in classifications if c.steps_added > 0]
        assert len(estimates) <= 2 * len(confirmed)


class TestPTrackPipeline:
    def test_track_returns_result(self, user, walk_trace):
        tracker = PTrack(profile=user.profile)
        result = tracker.track(walk_trace[0])
        assert isinstance(result, TrackingResult)
        assert result.step_count > 0
        assert result.distance_m > 0
        assert len(result.classifications) > 0

    def test_distance_close_to_truth(self, user, walk_trace):
        trace, truth = walk_trace
        tracker = PTrack(profile=user.profile)
        assert tracker.distance_m(trace) == pytest.approx(
            truth.total_distance_m, rel=0.08
        )

    def test_counter_only_mode(self, walk_trace):
        tracker = PTrack()
        result = tracker.track(walk_trace[0])
        assert result.step_count > 0
        assert result.strides == ()

    def test_counter_only_distance_raises(self, walk_trace):
        with pytest.raises(ConfigurationError):
            PTrack().distance_m(walk_trace[0])

    def test_count_steps_matches_track(self, user, walk_trace):
        tracker = PTrack(profile=user.profile)
        assert tracker.count_steps(walk_trace[0]) == tracker.track(
            walk_trace[0]
        ).step_count

    def test_step_and_stride_gait_types_agree(self, user, stepping_trace):
        tracker = PTrack(profile=user.profile)
        result = tracker.track(stepping_trace[0])
        assert {s.gait_type for s in result.steps} <= {
            GaitType.STEPPING,
            GaitType.WALKING,
        }
        for stride in result.strides:
            assert stride.bounce_m is not None
