"""Tests for the PR-8 backend-wide kernels.

Three layers:

* **solver differential** — :func:`repro.core.bounce.solve_bounce_block`
  against the scalar :func:`~repro.core.bounce.solve_bounce` on
  hypothesis-randomized physical geometries: converged rows must be
  float64 bit-identical to scipy's ``brentq``, rejected geometries must
  come back ``valid=False``, and a starved iteration budget must
  surface as ``valid=False`` (the callers' scalar-fallback contract)
  rather than a wrong root.
* **backend parity** — ``extrema_block`` / ``integrate_block`` /
  ``measurement_block`` / ``bounce_solve_block`` across the registry:
  bit-identity on numpy (and numba when installed), documented
  tolerances on float32.
* **loop specifications** — the njit-compilable loop bodies
  (:func:`repro.runtime.backends._extrema_fused_loop`,
  :func:`repro.runtime.backends._bounce_rows_loop`) exercised
  un-jitted against their scipy/scalar references, so the numba
  backend's kernels are pinned even where the package is absent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounce import (
    _BLOCK_SCALAR_CUTOFF,
    GeometryError,
    solve_bounce,
    solve_bounce_block,
)
from repro.core.config import PTrackConfig
from repro.core.stride import stride_from_bounce_model, stride_rows_from_bounce
from repro.runtime.backends import (
    _bounce_rows_loop,
    _extrema_fused_loop,
    available_backends,
    get_backend,
)
from repro.signal.batched import pack_windows
from repro.types import UserProfile

NUMBA_AVAILABLE = available_backends()["numba"][0]

PARITY_BACKENDS = ["numpy", "float32"] + (["numba"] if NUMBA_AVAILABLE else [])


def _walky(n, seed, freq=1.8, noise=0.25):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 100.0
    return np.sin(2 * np.pi * freq * t) + noise * rng.standard_normal(n)


def _random_geometries(n, seed, degenerate=True):
    """Random bounce rows spanning (and exceeding) the physical range."""
    rng = np.random.default_rng(seed)
    h1 = rng.uniform(-0.15, 0.25, n)
    h2 = rng.uniform(-0.15, 0.25, n)
    d = rng.uniform(0.0, 0.9, n)
    m = rng.uniform(0.4, 0.95, n)
    if degenerate and n >= 10:
        k = n // 10
        bad = rng.choice(n, size=k, replace=False)
        d[bad] = rng.uniform(1.5, 3.0, k)
        zero = rng.choice(n, size=k, replace=False)
        m[zero] = 0.0
    return h1, h2, d, m


def _assert_block_matches_scalar(h1, h2, d, m, bounce, valid):
    for r in range(d.size):
        try:
            ref = solve_bounce(
                float(h1[r]), float(h2[r]), float(d[r]), float(m[r])
            )
        except GeometryError:
            assert not valid[r]
            continue
        assert valid[r]
        assert bounce[r] == ref  # bitwise


# ----------------------------------------------------------------------
# Solver differential
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_solve_bounce_block_bit_identical_vectorized_path(seed):
    # > _BLOCK_SCALAR_CUTOFFF rows, so the lockstep Brent runs, not the
    # small-batch scalar loop.
    n = 2 * _BLOCK_SCALAR_CUTOFF
    h1, h2, d, m = _random_geometries(n, seed)
    bounce, valid = solve_bounce_block(h1, h2, d, m)
    _assert_block_matches_scalar(h1, h2, d, m, bounce, valid)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 16))
def test_solve_bounce_block_bit_identical_scalar_path(seed, n):
    # <= cutoff rows take the scalar loop; same contract either way.
    h1, h2, d, m = _random_geometries(n, seed, degenerate=False)
    bounce, valid = solve_bounce_block(h1, h2, d, m)
    _assert_block_matches_scalar(h1, h2, d, m, bounce, valid)


@settings(max_examples=20, deadline=None)
@given(
    st.floats(-0.15, 0.25),
    st.floats(-0.15, 0.25),
    st.floats(0.0, 0.9),
    st.floats(0.4, 0.95),
)
def test_solve_bounce_block_single_row_matches_scalar(h1, h2, d, m):
    bounce, valid = solve_bounce_block(
        np.asarray([h1]), np.asarray([h2]), np.asarray([d]), np.asarray([m])
    )
    _assert_block_matches_scalar(
        np.asarray([h1]), np.asarray([h2]), np.asarray([d]), np.asarray([m]),
        bounce, valid,
    )


def test_solve_bounce_block_broadcasts_scalar_arm():
    h1, h2, d, _ = _random_geometries(200, 3, degenerate=False)
    b1, v1 = solve_bounce_block(h1, h2, d, 0.7)
    b2, v2 = solve_bounce_block(h1, h2, d, np.full(200, 0.7))
    np.testing.assert_array_equal(v1, v2)
    np.testing.assert_array_equal(b1[v1], b2[v2])


def test_solve_bounce_block_empty():
    empty = np.empty(0)
    bounce, valid = solve_bounce_block(empty, empty, empty, empty)
    assert bounce.size == 0 and valid.size == 0


def test_solve_bounce_block_starved_maxiter_flags_not_valid():
    # With one iteration the lockstep Brent cannot converge interior
    # roots; the contract is valid=False (caller re-runs scalar), never
    # a silently wrong root.
    n = 2 * _BLOCK_SCALAR_CUTOFF
    h1, h2, d, m = _random_geometries(n, 7, degenerate=False)
    bounce, valid = solve_bounce_block(h1, h2, d, m, maxiter=1)
    full_bounce, full_valid = solve_bounce_block(h1, h2, d, m)
    assert valid.sum() < full_valid.sum()  # starvation actually bites
    _assert_block_matches_scalar(
        h1[valid], h2[valid], d[valid], m[valid],
        bounce[valid], np.ones(int(valid.sum()), dtype=bool),
    )


def test_solve_bounce_block_geometry_rejects_match_scalar_raises():
    h1 = np.asarray([0.0, 0.05, 0.01])
    h2 = np.asarray([0.0, 0.05, 0.01])
    d = np.asarray([2.5, 0.3, -0.1])   # oversized, fine, negative
    m = np.asarray([0.7, 0.0, 0.7])    # fine, non-positive arm, fine
    bounce, valid = solve_bounce_block(h1, h2, d, m)
    assert not valid[0] and not valid[1] and not valid[2]
    assert np.all(np.isnan(bounce[~valid]))


# ----------------------------------------------------------------------
# Stride rows
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_stride_rows_bit_identical_to_scalar_model(seed):
    rng = np.random.default_rng(seed)
    n = 64
    bounce = rng.uniform(-0.05, 1.2, n)  # includes out-of-clip values
    legs = rng.uniform(0.6, 1.1, n)
    ks = rng.uniform(1.5, 2.5, n)
    rows = stride_rows_from_bounce(bounce, legs, ks)
    for r in range(n):
        profile = UserProfile(
            arm_length_m=0.7,
            leg_length_m=float(legs[r]),
            calibration_k=float(ks[r]),
        )
        assert rows[r] == stride_from_bounce_model(float(bounce[r]), profile)


# ----------------------------------------------------------------------
# Backend parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", PARITY_BACKENDS)
def test_extrema_block_parity(name):
    be = get_backend(name)
    ref = get_backend("numpy")
    windows = [_walky(n, seed) for n, seed in ((120, 0), (40, 1), (7, 2))]
    concat, _starts, _lens = pack_windows(windows)
    cand, proms = be.extrema_block(concat)
    ref_cand, ref_proms = ref.extrema_block(concat)
    assert np.all(np.isfinite(concat[cand]))  # separators dropped
    if be.bit_identical:
        np.testing.assert_array_equal(cand, ref_cand)
        np.testing.assert_array_equal(proms, ref_proms)
    else:
        # float32: tie-breaking may move candidates; prominences of the
        # shared candidates stay within the documented tolerance.
        shared = np.intersect1d(cand, ref_cand)
        assert shared.size >= min(cand.size, ref_cand.size) * 0.8
        sel = {c: p for c, p in zip(cand, proms)}
        ref_sel = {c: p for c, p in zip(ref_cand, ref_proms)}
        for c in shared:
            np.testing.assert_allclose(
                sel[c], ref_sel[c], rtol=1e-3, atol=1e-3
            )


@pytest.mark.parametrize("name", PARITY_BACKENDS)
def test_integrate_block_parity(name):
    from repro.signal.integration import (
        double_integrate_mean_removal,
        integrate_mean_removal,
    )

    be = get_backend(name)
    rows = np.stack([_walky(80, s) for s in range(6)])
    dt = 0.01
    vel, disp = be.integrate_block(rows, dt)
    for r in range(rows.shape[0]):
        ref_v = integrate_mean_removal(rows[r], dt)
        ref_d = double_integrate_mean_removal(rows[r], dt)
        if be.bit_identical:
            np.testing.assert_array_equal(vel[r], ref_v)
            np.testing.assert_array_equal(disp[r], ref_d)
        else:
            np.testing.assert_allclose(vel[r], ref_v, rtol=1e-3, atol=1e-4)
            np.testing.assert_allclose(disp[r], ref_d, rtol=1e-3, atol=1e-4)


@pytest.mark.parametrize("name", PARITY_BACKENDS)
def test_measurement_block_parity(name):
    be = get_backend(name)
    ref = get_backend("numpy")
    cfg = PTrackConfig()
    specs = ((60, 0), (60, 1), (33, 2), (90, 3))
    v_segs = [_walky(n, seed) for n, seed in specs]
    h_segs = [
        np.column_stack([_walky(n, seed + 10), _walky(n, seed + 20, freq=0.9)])
        for n, seed in specs
    ]
    got = be.measurement_block(v_segs, h_segs, cfg)
    want = ref.measurement_block(v_segs, h_segs, cfg)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        g_a, g_ant, g_mot, g_off = g
        w_a, w_ant, w_mot, w_off = w
        if be.bit_identical:
            np.testing.assert_array_equal(g_a, w_a)
            assert (g_ant, g_mot) == (w_ant, w_mot)
            assert g_off == w_off  # bitwise
        else:
            np.testing.assert_allclose(g_a, w_a, rtol=1e-2, atol=1e-4)
            if g_mot and w_mot:
                np.testing.assert_allclose(
                    g_off, w_off, rtol=1e-2, atol=1e-4
                )


@pytest.mark.parametrize("name", PARITY_BACKENDS)
def test_bounce_solve_block_parity(name):
    be = get_backend(name)
    h1, h2, d, m = _random_geometries(300, 11)
    bounce, valid = be.bounce_solve_block(h1, h2, d, m)
    ref_b, ref_v = get_backend("numpy").bounce_solve_block(h1, h2, d, m)
    if be.bit_identical:
        np.testing.assert_array_equal(valid, ref_v)
        np.testing.assert_array_equal(bounce[valid], ref_b[ref_v])
        _assert_block_matches_scalar(h1, h2, d, m, bounce, valid)
    else:
        both = valid & ref_v
        assert both.sum() >= 0.9 * ref_v.sum()
        np.testing.assert_allclose(
            bounce[both], ref_b[both], rtol=1e-3, atol=1e-4
        )


# ----------------------------------------------------------------------
# Loop specifications (un-jitted)
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(3, 300))
def test_extrema_fused_loop_matches_default_block(seed, n):
    x = _walky(n, seed)
    be = get_backend("numpy")
    cand, proms = _extrema_fused_loop(x)
    ref_cand, ref_proms = be.extrema_block(x)
    np.testing.assert_array_equal(cand, ref_cand)
    np.testing.assert_array_equal(proms, ref_proms)


def test_extrema_fused_loop_skips_separators():
    windows = [_walky(50, 0), _walky(30, 1)]
    concat, _starts, _lens = pack_windows(windows)
    cand, proms = _extrema_fused_loop(concat)
    ref_cand, ref_proms = get_backend("numpy").extrema_block(concat)
    np.testing.assert_array_equal(cand, ref_cand)
    np.testing.assert_array_equal(proms, ref_proms)
    assert np.all(np.isfinite(concat[cand]))


def test_extrema_fused_loop_plateaus_and_edges():
    x = np.asarray([0.0, 2.0, 2.0, 2.0, 0.0, 1.0, 0.5, 3.0])
    cand, proms = _extrema_fused_loop(x)
    ref_cand, ref_proms = get_backend("numpy").extrema_block(x)
    np.testing.assert_array_equal(cand, ref_cand)
    np.testing.assert_array_equal(proms, ref_proms)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_bounce_rows_loop_matches_scalar(seed):
    from repro.core.bounce import _BRENT_MAXITER, _BRENT_RTOL, _BRENT_XTOL

    n = 120
    h1, h2, d, m = _random_geometries(n, seed)
    bounce = np.empty(n)
    valid = np.empty(n, dtype=np.bool_)
    _bounce_rows_loop(
        h1, h2, d, m, 0.30,
        _BRENT_XTOL, _BRENT_RTOL, _BRENT_MAXITER,
        bounce, valid,
    )
    _assert_block_matches_scalar(h1, h2, d, m, bounce, valid)
