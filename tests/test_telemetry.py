"""Tests for repro.telemetry and the instrumented stack layers.

Covers the registry/tracing/exporter units, the enable/disable gate,
bit-identical disabled-path streaming, counter agreement with the
sessions' own op-stats ledgers, cross-process fleet merging, the
driver-independence of counter totals (serial == pooled == sharded),
and the CLI/reporting surfaces.
"""

import json

import numpy as np
import pytest

from repro.core.streaming import StreamingOpStats, StreamingPTrack
from repro.eval.reporting import fleet_health_table
from repro.exceptions import ConfigurationError
from repro.runtime.cache import TraceCache
from repro.runtime.parallel import parallel_map, parallel_map_outcomes
from repro.serving.fleet import serve_fleet
from repro.serving.pool import SessionPool
from repro.serving.workload import synthesize_workload
from repro.telemetry import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    SpanBuffer,
    disable,
    enable,
    from_json,
    get_registry,
    merge_snapshots,
    to_json,
    to_prometheus,
    trace_span,
)

RATE_HZ = 100.0
CADENCE = 50


@pytest.fixture(autouse=True)
def _closed_gate():
    """Every test starts and ends with the process gate closed."""
    disable()
    yield
    disable()


# ----------------------------------------------------------------------
# Registry units
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(2.0)
        g.inc(1.5)
        g.dec(0.5)
        assert g.value == pytest.approx(3.0)

    def test_histogram_buckets_and_quantile(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0, 10.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(16.6)
        # q=0.5 lands in the (1, 2] bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c_total") is reg.counter("c_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("name_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("name_total")
        with pytest.raises(ConfigurationError):
            reg.histogram("name_total")

    def test_histogram_layout_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_non_increasing_buckets_raise(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestSnapshotAndMerge:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(4)
        reg.gauge("g").set(2.5)
        h = reg.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        return reg

    def test_snapshot_schema_and_shape(self):
        snap = self._populated().snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert set(snap) == {"schema", "counters", "gauges", "histograms"}
        hist = snap["histograms"]["h"]
        assert len(hist["counts"]) == len(hist["buckets"]) + 1
        assert hist["count"] == 2

    def test_snapshot_json_round_trip_stable_keys(self):
        snap = self._populated().snapshot()
        rt = json.loads(json.dumps(snap))
        assert rt == snap
        assert set(rt) == set(snap)
        assert set(rt["histograms"]["h"]) == set(snap["histograms"]["h"])

    def test_merge_counters_and_histograms_add_gauges_max(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        b["gauges"]["g"] = 1.0
        merged = merge_snapshots([a, b])
        assert merged["counters"]["c_total"] == 8
        assert merged["gauges"]["g"] == 2.5
        assert merged["histograms"]["h"]["count"] == 4

    def test_merge_is_order_independent(self):
        a = self._populated().snapshot()
        b = MetricsRegistry()
        b.counter("other_total").inc(7)
        b = b.snapshot()
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    def test_merge_layout_mismatch_raises(self):
        a = self._populated().snapshot()
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(9.0,)).observe(1.0)
        with pytest.raises(ConfigurationError):
            merge_snapshots([a, reg.snapshot()])

    def test_registry_merge_accumulates_into_live_instruments(self):
        reg = self._populated()
        reg.merge(self._populated().snapshot())
        assert reg.counter("c_total").value == 8


class TestGate:
    def test_enable_disable(self):
        assert get_registry() is None
        reg = enable()
        assert get_registry() is reg
        disable()
        assert get_registry() is None

    def test_enable_with_explicit_registry(self):
        mine = MetricsRegistry()
        assert enable(mine) is mine
        assert get_registry() is mine


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_nesting_records_parent_and_depth(self):
        buf = SpanBuffer()
        with trace_span("outer", buffer=buf):
            with trace_span("inner", buffer=buf):
                pass
        spans = buf.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].parent == "outer"
        assert spans[0].depth == 1
        assert spans[1].parent is None
        assert spans[1].depth == 0
        assert all(s.duration_s >= 0 for s in spans)

    def test_ring_is_bounded(self):
        buf = SpanBuffer(capacity=3)
        for i in range(10):
            with trace_span(f"s{i}", buffer=buf):
                pass
        assert len(buf) == 3
        assert [s.name for s in buf.spans()] == ["s7", "s8", "s9"]

    def test_error_captured(self):
        buf = SpanBuffer()
        with pytest.raises(ValueError):
            with trace_span("boom", buffer=buf):
                raise ValueError("x")
        (span,) = buf.spans()
        assert span.error == "ValueError"

    def test_disabled_gate_records_nothing(self):
        from repro.telemetry import get_span_buffer

        before = len(get_span_buffer())
        with trace_span("silent"):
            pass
        assert len(get_span_buffer()) == before

    def test_explicit_buffer_survives_reuse(self):
        buf = SpanBuffer()
        span = trace_span("again", buffer=buf)
        with span:
            pass
        with span:
            pass
        assert len(buf) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SpanBuffer(capacity=0)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc(3)
        reg.gauge("depth").set(1.5)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return reg.snapshot()

    def test_json_round_trip(self):
        snap = self._snapshot()
        assert from_json(to_json(snap)) == snap

    def test_from_json_rejects_foreign_payload(self):
        with pytest.raises(ConfigurationError):
            from_json(json.dumps({"not": "a snapshot"}))

    def test_prometheus_counter_and_gauge_lines(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text

    def test_prometheus_histogram_is_cumulative(self):
        text = to_prometheus(self._snapshot())
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text or (
            'lat_seconds_bucket{le="1.0"} 2' in text
        )
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_prometheus_rejects_invalid_names(self):
        reg = MetricsRegistry()
        reg.counter("bad-name_total").inc()
        with pytest.raises(ConfigurationError):
            to_prometheus(reg.snapshot())


# ----------------------------------------------------------------------
# Instrumented streaming core
# ----------------------------------------------------------------------
def _drive(session, data):
    steps, strides = [], []
    for i in range(0, data.shape[0], CADENCE):
        st, sr = session.append(data[i : i + CADENCE])
        steps += st
        strides += sr
    st, sr = session.flush()
    steps += st
    strides += sr
    return steps, strides


class TestStreamingInstrumentation:
    @pytest.fixture(scope="class")
    def workload(self):
        (w,) = synthesize_workload(1, 20.0, seed=11)
        return w

    def test_disabled_path_bit_identical(self, workload):
        plain = _drive(
            StreamingPTrack(RATE_HZ, profile=workload.profile),
            workload.samples,
        )
        reg = MetricsRegistry()
        instr = _drive(
            StreamingPTrack(
                RATE_HZ, profile=workload.profile, telemetry=reg
            ),
            workload.samples,
        )
        assert [(e.index, e.time) for e in plain[0]] == [
            (e.index, e.time) for e in instr[0]
        ]
        assert [(s.time, s.length_m) for s in plain[1]] == [
            (s.time, s.length_m) for s in instr[1]
        ]

    def test_counters_match_op_stats_and_credits(self, workload):
        reg = MetricsRegistry()
        sess = StreamingPTrack(
            RATE_HZ, profile=workload.profile, telemetry=reg
        )
        steps, strides = _drive(sess, workload.samples)
        counters = reg.snapshot()["counters"]
        assert counters["ptrack_steps_credited_total"] == len(steps)
        assert counters["ptrack_strides_credited_total"] == len(strides)
        assert counters["ptrack_distance_m_total"] == pytest.approx(
            sum(s.length_m for s in strides)
        )
        for field, value in sess.op_stats.as_dict().items():
            assert counters[f"ptrack_{field}_total"] == value

    def test_append_latency_histogram_observes_each_append(self, workload):
        reg = MetricsRegistry()
        sess = StreamingPTrack(
            RATE_HZ, profile=workload.profile, telemetry=reg
        )
        n_appends = 0
        for i in range(0, workload.samples.shape[0], CADENCE):
            sess.append(workload.samples[i : i + CADENCE])
            n_appends += 1
        hist = reg.snapshot()["histograms"]["ptrack_append_seconds"]
        assert hist["count"] == n_appends

    def test_reset_keeps_registry_monotonic(self, workload):
        reg = MetricsRegistry()
        sess = StreamingPTrack(
            RATE_HZ, profile=workload.profile, telemetry=reg
        )
        _drive(sess, workload.samples)
        first = reg.snapshot()["counters"]["ptrack_samples_in_total"]
        sess.reset()
        _drive(sess, workload.samples)
        second = reg.snapshot()["counters"]["ptrack_samples_in_total"]
        assert second == 2 * first

    def test_op_stats_as_dict_json_round_trip(self, workload):
        sess = StreamingPTrack(RATE_HZ, profile=workload.profile)
        _drive(sess, workload.samples)
        d = sess.op_stats.as_dict()
        rt = json.loads(json.dumps(d))
        assert rt == d
        assert set(rt) == set(StreamingOpStats().as_dict())


# ----------------------------------------------------------------------
# Pool / fleet instrumentation
# ----------------------------------------------------------------------
class TestPoolInstrumentation:
    def test_failed_and_revived_counters(self):
        reg = MetricsRegistry()
        pool = SessionPool(RATE_HZ, telemetry=reg)
        sid = pool.add_session()
        bad = np.full((40, 3), np.nan)
        pool.append([sid], [bad])
        assert pool.session_status(sid) == "failed"
        pool.revive_session(sid)
        counters = reg.snapshot()["counters"]
        assert counters["serving_sessions_failed_total"] == 1
        assert counters["serving_sessions_revived_total"] == 1
        assert reg.snapshot()["gauges"]["serving_pool_sessions"] == 1

    def test_appends_counter_counts_session_batches(self):
        reg = MetricsRegistry()
        pool = SessionPool(RATE_HZ, telemetry=reg)
        sids = pool.add_sessions([None, None, None])
        batch = np.zeros((CADENCE, 3))
        batch[:, 2] = 9.81
        pool.append(sids, [batch] * 3)
        pool.append(sids[:2], [batch] * 2)
        counters = reg.snapshot()["counters"]
        assert counters["serving_pool_appends_total"] == 5
        hist = reg.snapshot()["histograms"]["serving_pool_round_seconds"]
        assert hist["count"] == 2


class TestFleetTelemetry:
    @pytest.fixture(scope="class")
    def fleet(self):
        workloads = synthesize_workload(4, 15.0, seed=3)
        return (
            [w.samples for w in workloads],
            [w.profile for w in workloads],
        )

    def test_disabled_returns_none(self, fleet):
        traces, profiles = fleet
        report = serve_fleet(traces, RATE_HZ, profiles=profiles, workers=1)
        assert report.telemetry is None

    def test_merged_snapshot_totals(self, fleet):
        traces, profiles = fleet
        report = serve_fleet(
            traces,
            RATE_HZ,
            profiles=profiles,
            sessions_per_shard=2,
            workers=1,
            telemetry=True,
        )
        snap = report.telemetry
        assert snap is not None and snap["schema"] == SNAPSHOT_SCHEMA
        counters = snap["counters"]
        assert (
            counters["ptrack_steps_credited_total"] == report.total_steps
        )
        assert snap["gauges"]["serving_fleet_sessions"] == len(traces)

    def test_counter_totals_shard_and_worker_invariant(self, fleet):
        traces, profiles = fleet
        kwargs = dict(profiles=profiles, telemetry=True)
        single = serve_fleet(traces, RATE_HZ, workers=1, **kwargs)
        sharded = serve_fleet(
            traces, RATE_HZ, sessions_per_shard=2, workers=1, **kwargs
        )
        parallel = serve_fleet(
            traces, RATE_HZ, sessions_per_shard=2, workers=2, **kwargs
        )
        base = dict(single.telemetry["counters"])
        dist = base.pop("ptrack_distance_m_total")
        for report in (sharded, parallel):
            counters = dict(report.telemetry["counters"])
            assert counters.pop("ptrack_distance_m_total") == pytest.approx(
                dist, rel=1e-12
            )
            assert counters == base

    def test_empty_fleet_yields_empty_snapshot(self):
        report = serve_fleet([], RATE_HZ, telemetry=True)
        assert report.telemetry is not None
        assert report.telemetry["counters"] == {}


class TestDriverIndependence:
    """Satellite: serial == pooled == sharded counter totals."""

    def test_ptrack_counter_totals_identical_across_drivers(self):
        workloads = synthesize_workload(3, 15.0, seed=5)

        serial_reg = MetricsRegistry()
        for w in workloads:
            _drive(
                StreamingPTrack(
                    RATE_HZ, profile=w.profile, telemetry=serial_reg
                ),
                w.samples,
            )

        pooled_reg = MetricsRegistry()
        pool = SessionPool(RATE_HZ, telemetry=pooled_reg)
        sids = pool.add_sessions([w.profile for w in workloads])
        n = max(w.samples.shape[0] for w in workloads)
        for i in range(0, n, CADENCE):
            pool.append(
                sids, [w.samples[i : i + CADENCE] for w in workloads]
            )
        pool.flush()

        report = serve_fleet(
            [w.samples for w in workloads],
            RATE_HZ,
            profiles=[w.profile for w in workloads],
            batch_samples=CADENCE,
            sessions_per_shard=2,
            workers=1,
            telemetry=True,
        )

        def ptrack_counters(snap):
            return {
                k: v
                for k, v in snap["counters"].items()
                if k.startswith("ptrack_")
            }

        serial = ptrack_counters(serial_reg.snapshot())
        pooled = ptrack_counters(pooled_reg.snapshot())
        sharded = ptrack_counters(report.telemetry)
        # Wall-clock histograms are excluded by construction: only the
        # deterministic work/credit counters must agree. The one float
        # counter (credited metres) accumulates in driver-dependent
        # order, so it agrees to float tolerance, not bitwise.
        dist = "ptrack_distance_m_total"
        assert serial.pop(dist) == pytest.approx(
            pooled.pop(dist), rel=1e-12
        )
        assert sharded[dist] == pytest.approx(
            serial_reg.snapshot()["counters"][dist], rel=1e-12
        )
        sharded.pop(dist)
        assert serial == pooled == sharded


# ----------------------------------------------------------------------
# Runtime instrumentation
# ----------------------------------------------------------------------
class TestRuntimeInstrumentation:
    def test_cache_hit_miss_eviction_counters(self, tmp_path):
        reg = MetricsRegistry()
        cache = TraceCache(max_items=2, directory=tmp_path, telemetry=reg)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        assert cache.get("zz") is None
        cache.put("c", 3)  # evicts b from memory
        assert cache.get("b") == 2  # disk promote, evicts again
        counters = reg.snapshot()["counters"]
        assert counters["runtime_cache_hits_total"] == 2
        assert counters["runtime_cache_misses_total"] == 1
        assert counters["runtime_cache_evictions_total"] == 2

    def test_cache_clear_keeps_registry_monotonic(self):
        reg = MetricsRegistry()
        cache = TraceCache(max_items=4, telemetry=reg)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert cache.hits == 0
        counters = reg.snapshot()["counters"]
        assert counters["runtime_cache_hits_total"] == 1

    def test_parallel_map_counters(self):
        enable(MetricsRegistry())
        parallel_map(abs, [-1, -2, -3], workers=1)
        outcomes = parallel_map_outcomes(abs, [-4, "x"], workers=1)
        assert [o.ok for o in outcomes] == [True, False]
        counters = get_registry().snapshot()["counters"]
        assert counters["runtime_parallel_maps_total"] == 2
        assert counters["runtime_parallel_tasks_total"] == 5
        assert counters["runtime_parallel_task_failures_total"] == 1
        hists = get_registry().snapshot()["histograms"]
        assert hists["runtime_parallel_task_seconds"]["count"] == 5
        assert hists["runtime_parallel_map_seconds"]["count"] == 2

    def test_parallel_map_uninstrumented_when_gate_closed(self):
        assert get_registry() is None
        assert parallel_map(abs, [-1], workers=1) == [1]


# ----------------------------------------------------------------------
# Reporting + CLI
# ----------------------------------------------------------------------
class TestReportingAndCli:
    def test_fleet_health_table_rows(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.gauge("g").set(1.0)
        h = reg.histogram("h_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        table = fleet_health_table(reg.snapshot())
        text = table.render()
        assert "c_total" in text and "counter" in text
        assert "h_seconds" in text and "p50=" in text

    def test_fleet_health_table_empty_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds")
        text = fleet_health_table(reg.snapshot()).render()
        assert "no observations" in text

    def test_fleet_health_table_absent_histogram_series(self):
        # Drivers emit different series mixes (the batched pool emits
        # serving_batch_* where the lockstep pool does not), so merged
        # or hand-assembled snapshots can list a histogram whose series
        # data is absent or partial; the table must render regardless.
        snapshot = {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {"serving_batch_rounds_total": 4},
            "gauges": {},
            "histograms": {
                "serving_batch_round_seconds": None,
                "serving_pool_round_seconds": {"count": 3, "sum": 0.6},
            },
        }
        text = fleet_health_table(snapshot).render()
        assert "serving_batch_round_seconds" in text and "absent" in text
        assert "mean=0.200000" in text

    def test_fleet_health_table_missing_sections(self):
        text = fleet_health_table({"schema": SNAPSHOT_SCHEMA}).render()
        assert "metric" in text  # headers render even with no series

    @pytest.mark.parametrize("fmt", ["table", "json", "prometheus"])
    def test_cli_telemetry_verb(self, fmt, capsys):
        from repro.cli import main

        rc = main(
            [
                "telemetry",
                "--sessions",
                "2",
                "--duration",
                "8",
                "--format",
                fmt,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        if fmt == "json":
            snap = json.loads(out)
            assert snap["schema"] == SNAPSHOT_SCHEMA
        elif fmt == "prometheus":
            assert "# TYPE ptrack_steps_credited_total counter" in out
        else:
            assert "fleet health" in out
            assert "ptrack_steps_credited_total" in out
