"""Direct tests for remaining public units: displacement_between, the
exception hierarchy, the CLI parser, and small extension smokes."""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.exceptions import (
    CalibrationError,
    ConfigurationError,
    GeometryError,
    IntegrationError,
    ReproError,
    SignalError,
    SimulationError,
    TrainingError,
)
from repro.signal.integration import displacement_between
from repro.types import CycleClassification, GaitType


class TestDisplacementBetween:
    def test_known_oscillation(self):
        amp, freq = 0.05, 1.0
        t = np.arange(101) / 100.0  # one full period inclusive
        omega = 2 * np.pi * freq
        accel = -amp * omega**2 * np.sin(omega * t)
        # Peak-to-trough: displacement from t=0.25 (peak) to 0.75 (trough).
        delta, curve = displacement_between(accel, 0.01, 25, 75)
        assert delta == pytest.approx(-2 * amp, abs=0.01)
        assert curve.shape == t.shape

    def test_zero_for_same_index(self):
        accel = np.sin(np.linspace(0, 2 * np.pi, 100))
        delta, _ = displacement_between(accel, 0.01, 10, 10)
        assert delta == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(IntegrationError):
            displacement_between(np.zeros(50), 0.01, 0, 50)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            SignalError,
            IntegrationError,
            CalibrationError,
            GeometryError,
            SimulationError,
            TrainingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_integration_error_is_signal_error(self):
        assert issubclass(IntegrationError, SignalError)


class TestCliParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands |= set(action.choices)
        assert {"demo", "figures", "navigate", "dataset", "track"} <= subcommands

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDataclassSurfaces:
    def test_cycle_classification_fields(self):
        c = CycleClassification(
            cycle_id=0,
            start_index=0,
            end_index=100,
            gait_type=GaitType.WALKING,
            offset=0.05,
            half_cycle_correlation=None,
            phase_difference_ok=None,
            steps_added=2,
        )
        assert c.gait_type is GaitType.WALKING
        assert c.steps_added == 2

    def test_navigation_report_surface(self, user):
        from repro.apps.deadreckoning import navigate_route
        from repro.core.pipeline import PTrack
        from repro.simulation.routes import paper_route, walk_route

        route = paper_route()
        rng = np.random.default_rng(3)
        trace, truth = walk_route(user, route, rng=rng)
        report = navigate_route(
            PTrack(profile=user.profile), trace, truth, route, rng=rng
        )
        assert report.true_distance_m > 100
        assert report.step_times.size == report.positions_m.shape[0]

    def test_fitness_report_surface(self, user, walk_trace):
        from repro.apps.fitness import FitnessTracker
        from repro.core.pipeline import PTrack

        tracker = FitnessTracker(PTrack(profile=user.profile))
        tracker.add_session(walk_trace[0])
        report = tracker.report()
        assert report.total_steps > 0
        assert report.active_time_s == pytest.approx(walk_trace[0].duration_s)


class TestExtensionSmokes:
    def test_attitude_pipeline_short(self):
        from repro.experiments.extensions import run_attitude_pipeline

        results, table = run_attitude_pipeline(duration_s=25.0)
        assert results["oracle_accuracy"] > 0.9
        assert "attitude" in table.render()

    def test_energy_tradeoff_short(self):
        from repro.experiments.extensions import run_energy_tradeoff

        results, table = run_energy_tradeoff(fix_intervals_s=(10.0, 40.0))
        assert results[("dead-reckon", 40.0)]["mean_error_m"] < results[
            ("hold", 40.0)
        ]["mean_error_m"]
        assert "strategy" in table.render()
