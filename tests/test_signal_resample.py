"""Tests for repro.signal.resample (rate conversion + dropout splits)."""

import numpy as np
import pytest

from repro.core.step_counter import PTrackStepCounter
from repro.exceptions import ConfigurationError, SignalError
from repro.signal.resample import resample_trace, split_on_gaps
from repro.simulation.walker import simulate_walk


class TestResampleTrace:
    def test_identity_at_same_rate(self, walk_trace):
        trace = walk_trace[0]
        assert resample_trace(trace, trace.sample_rate_hz) is trace

    def test_downsample_preserves_low_band(self, walk_trace):
        trace = walk_trace[0]
        down = resample_trace(trace, 50.0)
        assert down.sample_rate_hz == 50.0
        assert down.duration_s == pytest.approx(trace.duration_s, abs=0.1)
        # Gait-band energy (the 2 Hz bounce) survives the conversion.
        assert np.std(down.vertical) == pytest.approx(
            np.std(trace.vertical), rel=0.15
        )

    def test_upsample_interpolates(self):
        t = np.arange(100) / 100.0
        data = np.column_stack([np.sin(2 * np.pi * t)] * 3)
        from repro.sensing.imu import IMUTrace

        trace = IMUTrace(data, 100.0)
        up = resample_trace(trace, 200.0)
        assert up.sample_rate_hz == 200.0
        expected = np.sin(2 * np.pi * up.times)
        assert np.allclose(up.vertical, expected, atol=0.01)

    def test_counting_survives_resampling(self, user):
        trace, truth = simulate_walk(user, 30.0, rng=np.random.default_rng(6))
        counter = PTrackStepCounter()
        for rate in (50.0, 200.0):
            converted = resample_trace(trace, rate)
            counted = counter.count_steps(converted)
            assert counted == pytest.approx(truth.step_count, abs=4), rate

    def test_rejects_bad_rate(self, walk_trace):
        with pytest.raises(ConfigurationError):
            resample_trace(walk_trace[0], 0.0)


class TestSplitOnGaps:
    def _stream(self, n=1000, rate=100.0):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(n, 3))
        timestamps = np.arange(n) / rate
        return samples, timestamps

    def test_contiguous_stream_single_chunk(self):
        samples, ts = self._stream()
        chunks = split_on_gaps(samples, ts, 100.0)
        assert len(chunks) == 1
        assert chunks[0].n_samples == 1000

    def test_gap_splits(self):
        samples, ts = self._stream()
        ts = ts.copy()
        ts[500:] += 1.0  # a one-second dropout
        chunks = split_on_gaps(samples, ts, 100.0)
        assert len(chunks) == 2
        assert chunks[0].n_samples == 500
        assert chunks[1].start_time == pytest.approx(ts[500])

    def test_short_fragments_dropped(self):
        samples, ts = self._stream(n=400)
        ts = ts.copy()
        ts[350:] += 1.0  # leaves a 0.5 s fragment
        chunks = split_on_gaps(samples, ts, 100.0, min_chunk_s=2.0)
        assert len(chunks) == 1
        assert chunks[0].n_samples == 350

    def test_multiple_gaps(self):
        samples, ts = self._stream(n=900)
        ts = ts.copy()
        ts[300:] += 0.5
        ts[600:] += 0.5
        chunks = split_on_gaps(samples, ts, 100.0)
        assert len(chunks) == 3

    def test_tracking_each_chunk(self, user):
        # A dropout mid-walk: count each side and the total adds up.
        trace, truth = simulate_walk(user, 30.0, rng=np.random.default_rng(7))
        ts = trace.times.copy()
        ts[trace.n_samples // 2 :] += 2.0
        chunks = split_on_gaps(
            np.asarray(trace.linear_acceleration), ts, trace.sample_rate_hz
        )
        assert len(chunks) == 2
        counter = PTrackStepCounter()
        total = sum(counter.count_steps(c) for c in chunks)
        # Losing the boundary cycle on each side is expected.
        assert total == pytest.approx(truth.step_count, abs=6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SignalError):
            split_on_gaps(np.zeros((10, 2)), np.arange(10.0), 100.0)
        with pytest.raises(SignalError):
            split_on_gaps(np.zeros((10, 3)), np.arange(9.0), 100.0)
        with pytest.raises(SignalError):
            split_on_gaps(
                np.zeros((10, 3)), np.arange(10.0)[::-1].astype(float), 100.0
            )

    def test_empty_stream(self):
        assert split_on_gaps(np.zeros((0, 3)), np.zeros(0), 100.0) == []
