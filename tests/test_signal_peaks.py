"""Unit tests for repro.signal.peaks."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SignalError
from repro.signal.peaks import detect_peaks, detect_valleys, peak_prominences


class TestDetectPeaks:
    def test_single_peak(self):
        x = np.array([0, 1, 3, 1, 0], dtype=float)
        assert detect_peaks(x).tolist() == [2]

    def test_sine_peak_count(self):
        t = np.arange(1000) / 100.0
        x = np.sin(2 * np.pi * 2.0 * t)  # 2 Hz over 10 s -> 20 peaks
        peaks = detect_peaks(x, min_prominence=0.5)
        assert len(peaks) == 20

    def test_plateau_resolves_to_centre(self):
        x = np.array([0, 1, 2, 2, 2, 1, 0], dtype=float)
        assert detect_peaks(x).tolist() == [3]

    def test_min_height_filters(self):
        x = np.array([0, 1, 0, 5, 0], dtype=float)
        assert detect_peaks(x, min_height=2.0).tolist() == [3]

    def test_prominence_filters_riding_wiggles(self):
        t = np.arange(500) / 100.0
        base = np.sin(2 * np.pi * 1.0 * t)
        wiggle = 0.05 * np.sin(2 * np.pi * 13.0 * t)
        peaks = detect_peaks(base + wiggle, min_prominence=0.5)
        assert len(peaks) == 5

    def test_min_distance_keeps_more_prominent(self):
        x = np.zeros(20)
        x[5] = 1.0
        x[8] = 3.0
        peaks = detect_peaks(x, min_distance=5)
        assert peaks.tolist() == [8]

    def test_min_distance_allows_spaced(self):
        x = np.zeros(30)
        x[5] = 1.0
        x[20] = 1.0
        assert detect_peaks(x, min_distance=5).tolist() == [5, 20]

    def test_result_sorted(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=500)
        peaks = detect_peaks(x, min_distance=7)
        assert np.all(np.diff(peaks) > 0)

    def test_empty_signal(self):
        assert detect_peaks(np.empty(0)).size == 0

    def test_monotonic_has_no_peaks(self):
        assert detect_peaks(np.arange(10.0)).size == 0

    def test_endpoints_never_peaks(self):
        x = np.array([5.0, 1.0, 4.0])
        assert detect_peaks(x).size == 0

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            detect_peaks(np.zeros((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(SignalError):
            detect_peaks(np.array([0.0, np.nan, 0.0]))

    def test_rejects_negative_prominence(self):
        with pytest.raises(ConfigurationError):
            detect_peaks(np.zeros(5), min_prominence=-1)

    def test_rejects_zero_distance(self):
        with pytest.raises(ConfigurationError):
            detect_peaks(np.zeros(5), min_distance=0)


class TestPeakProminences:
    def test_isolated_peak_prominence_is_height_above_floor(self):
        x = np.array([0, 0, 4, 0, 0], dtype=float)
        peaks = detect_peaks(x)
        proms = peak_prominences(x, peaks)
        assert proms.tolist() == [4.0]

    def test_shoulder_peak_has_lower_prominence(self):
        x = np.array([0, 5, 3, 4, 0], dtype=float)
        peaks = np.array([1, 3])
        proms = peak_prominences(x, peaks)
        assert proms[0] == pytest.approx(5.0)
        assert proms[1] == pytest.approx(1.0)  # valley at 3 on its left

    def test_empty_peaks(self):
        assert peak_prominences(np.zeros(5), np.empty(0, dtype=int)).size == 0


class TestDetectValleys:
    def test_valley_is_negated_peak(self):
        x = np.array([0, -1, -3, -1, 0], dtype=float)
        assert detect_valleys(x).tolist() == [2]

    def test_sine_valley_count(self):
        t = np.arange(1000) / 100.0
        x = np.sin(2 * np.pi * 2.0 * t)
        assert len(detect_valleys(x, min_prominence=0.5)) == 20
