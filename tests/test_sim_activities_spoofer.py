"""Unit tests for repro.simulation.{activities,spoofer}."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sensing.device import WearableDevice
from repro.simulation.activities import InterferenceParams, simulate_interference
from repro.simulation.spoofer import SpooferParams, simulate_spoofer
from repro.types import ActivityKind, Posture


class TestInterferenceParams:
    def test_rejects_bad_hold_range(self):
        with pytest.raises(SimulationError):
            InterferenceParams(
                reach_length_m=0.3,
                elevation_rad=0.5,
                elevation_jitter_rad=0.1,
                azimuth_jitter_rad=0.1,
                curvature_frac=0.05,
                gesture_duration_s=0.5,
                hold_s_range=(2.0, 1.0),
            )

    def test_rejects_bad_curvature(self):
        with pytest.raises(SimulationError):
            InterferenceParams(
                reach_length_m=0.3,
                elevation_rad=0.5,
                elevation_jitter_rad=0.1,
                azimuth_jitter_rad=0.1,
                curvature_frac=0.9,
                gesture_duration_s=0.5,
                hold_s_range=(1.0, 2.0),
            )


class TestSimulateInterference:
    @pytest.mark.parametrize(
        "kind",
        [
            ActivityKind.EATING,
            ActivityKind.POKER,
            ActivityKind.PHOTO,
            ActivityKind.GAME,
            ActivityKind.MOUSE,
            ActivityKind.KEYSTROKE,
            ActivityKind.IDLE,
        ],
    )
    def test_all_kinds_produce_traces(self, kind, rng):
        trace = simulate_interference(kind, 20.0, rng=rng)
        assert trace.n_samples == 2000
        assert np.all(np.isfinite(trace.linear_acceleration))

    def test_vigorous_kinds_have_energy(self, rng):
        trace = simulate_interference(ActivityKind.EATING, 60.0, rng=rng)
        assert np.abs(trace.vertical).max() > 1.0

    def test_micro_kinds_are_quiet(self, rng):
        mouse = simulate_interference(ActivityKind.MOUSE, 30.0, rng=rng)
        eating = simulate_interference(ActivityKind.EATING, 30.0, rng=rng)
        assert np.std(mouse.vertical) < 0.3 * np.std(eating.vertical)

    def test_idle_is_nearly_still(self, rng):
        trace = simulate_interference(ActivityKind.IDLE, 20.0, rng=rng)
        assert np.std(trace.vertical) < 0.3

    def test_vigor_scales_amplitude(self):
        weak = simulate_interference(
            ActivityKind.EATING, 60.0, rng=np.random.default_rng(0), vigor=0.5
        )
        strong = simulate_interference(
            ActivityKind.EATING, 60.0, rng=np.random.default_rng(0), vigor=2.0
        )
        assert np.std(strong.vertical) > 1.5 * np.std(weak.vertical)

    def test_posture_changes_signal(self):
        standing = simulate_interference(
            ActivityKind.POKER, 20.0, rng=np.random.default_rng(1), posture=Posture.STANDING
        )
        seated = simulate_interference(
            ActivityKind.POKER, 20.0, rng=np.random.default_rng(1), posture=Posture.SEATED
        )
        assert not np.allclose(
            standing.linear_acceleration, seated.linear_acceleration
        )

    def test_deterministic_given_seed(self):
        a = simulate_interference(ActivityKind.GAME, 10.0, rng=np.random.default_rng(9))
        b = simulate_interference(ActivityKind.GAME, 10.0, rng=np.random.default_rng(9))
        assert np.array_equal(a.linear_acceleration, b.linear_acceleration)

    def test_rejects_pedestrian_kinds(self, rng):
        with pytest.raises(SimulationError):
            simulate_interference(ActivityKind.WALKING, 10.0, rng=rng)
        with pytest.raises(SimulationError):
            simulate_interference(ActivityKind.SWINGING, 10.0, rng=rng)
        with pytest.raises(SimulationError):
            simulate_interference(ActivityKind.SPOOFING, 10.0, rng=rng)

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(SimulationError):
            simulate_interference(ActivityKind.EATING, -1.0, rng=rng)

    def test_rejects_bad_vigor(self, rng):
        with pytest.raises(SimulationError):
            simulate_interference(ActivityKind.EATING, 10.0, rng=rng, vigor=0.0)


class TestSimulateSpoofer:
    def test_trace_properties(self, spoof_trace):
        assert spoof_trace.duration_s == pytest.approx(60.0)
        assert np.all(np.isfinite(spoof_trace.linear_acceleration))

    def test_periodic_drive_visible(self, spoof_trace):
        # The drive rate (~0.6 Hz) must dominate the spectrum.
        v = spoof_trace.vertical - spoof_trace.vertical.mean()
        spectrum = np.abs(np.fft.rfft(v))
        freqs = np.fft.rfftfreq(v.size, spoof_trace.dt)
        dominant = freqs[np.argmax(spectrum)]
        assert 0.4 < dominant < 1.6

    def test_custom_params(self, rng):
        params = SpooferParams(rate_hz=1.0, arm_length_m=0.2, swing_rad=0.3)
        trace = simulate_spoofer(20.0, rng=rng, params=params)
        assert trace.n_samples == 2000

    def test_rate_drift_changes_signal(self):
        still = simulate_spoofer(
            20.0,
            rng=np.random.default_rng(4),
            params=SpooferParams(rate_drift=0.0),
            device=WearableDevice.ideal(),
        )
        drifting = simulate_spoofer(
            20.0,
            rng=np.random.default_rng(4),
            params=SpooferParams(rate_drift=0.05),
            device=WearableDevice.ideal(),
        )
        assert not np.allclose(
            still.linear_acceleration, drifting.linear_acceleration
        )

    def test_rejects_bad_params(self):
        with pytest.raises(SimulationError):
            SpooferParams(rate_hz=0.0)
        with pytest.raises(SimulationError):
            SpooferParams(swing_rad=2.0)
        with pytest.raises(SimulationError):
            simulate_spoofer(0.0)
