"""The sharded profile store: atomicity, CAS, quarantine-as-miss.

Mirrors the durability contract the checkpoint store pins: a torn or
truncated shard file must degrade to a cache miss (quarantined aside,
counted, never an exception), while a *decodable* blob of the wrong
schema must fail loud. On top of that the profile store adds
compare-and-swap versioning and an LRU shard cache, both pinned here.
"""

import pickle

import pytest

from repro.exceptions import ConfigurationError, ProfileConflictError
from repro.profiles import (
    PROFILE_SNAPSHOT_SCHEMA,
    ProfileRecord,
    ProfileStore,
)
from repro.runtime import ManualClock
from repro.telemetry import MetricsRegistry
from repro.types import UserProfile

PROFILE = UserProfile(arm_length_m=0.7, leg_length_m=0.85, calibration_k=1.0)


def record(uid: str, **kwargs) -> ProfileRecord:
    return ProfileRecord(user_id=uid, profile=PROFILE, **kwargs)


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ProfileStore(tmp_path, clock=ManualClock(100.0))
        committed = store.put(
            record("alice", observations=12, confidence=0.5)
        )
        assert committed.version == 1
        assert committed.updated_at == 100.0
        got = store.get("alice")
        assert got == committed
        assert got.profile == PROFILE
        assert got.observations == 12

    def test_get_absent_is_none(self, tmp_path):
        store = ProfileStore(tmp_path)
        assert store.get("nobody") is None

    def test_updates_bump_versions_monotonically(self, tmp_path):
        store = ProfileStore(tmp_path)
        assert store.put(record("alice")).version == 1
        assert store.put(record("alice")).version == 2
        # The caller's claimed version is ignored; the store owns it.
        assert store.put(record("alice", version=77)).version == 3

    def test_survives_reopen(self, tmp_path):
        ProfileStore(tmp_path).put(record("alice", observations=9))
        reopened = ProfileStore(tmp_path)
        assert reopened.get("alice").observations == 9

    def test_get_many_omits_absent(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put_many([record("a"), record("b")])
        got = store.get_many(["a", "missing", "b"])
        assert set(got) == {"a", "b"}

    def test_user_ids_sorted(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put_many([record(u) for u in ("zoe", "alice", "mira")])
        assert store.user_ids() == ["alice", "mira", "zoe"]

    def test_trainer_state_travels(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice", trainer_state={"anything": [1, 2, 3]}))
        assert store.get("alice").trainer_state == {"anything": [1, 2, 3]}

    def test_invalid_user_ids_rejected(self, tmp_path):
        store = ProfileStore(tmp_path)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ConfigurationError):
                store.shard_of(bad)

    def test_shard_assignment_stable_across_instances(self, tmp_path):
        a = ProfileStore(tmp_path / "a")
        b = ProfileStore(tmp_path / "b")
        for uid in ("alice", "bob", "user-0012345"):
            assert a.shard_of(uid) == b.shard_of(uid)


class TestCompareAndSwap:
    def test_cas_commits_on_matching_version(self, tmp_path):
        store = ProfileStore(tmp_path)
        v1 = store.put(record("alice"))
        v2 = store.put(record("alice"), expected_version=v1.version)
        assert v2.version == 2

    def test_cas_rejects_stale_writer(self, tmp_path):
        store = ProfileStore(tmp_path)
        v1 = store.put(record("alice"))
        store.put(record("alice"), expected_version=v1.version)
        with pytest.raises(ProfileConflictError):
            store.put(record("alice"), expected_version=v1.version)

    def test_cas_zero_means_must_be_absent(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice"), expected_version=0)
        with pytest.raises(ProfileConflictError):
            store.put(record("alice"), expected_version=0)

    def test_put_many_conflict_commits_nothing(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice"))
        with pytest.raises(ProfileConflictError):
            store.put_many(
                [record("alice"), record("brand-new")],
                expected_versions={"alice": 99, "brand-new": 0},
            )
        # All-or-nothing: the valid record in the batch did not land.
        assert store.get("brand-new") is None

    def test_put_many_duplicate_ids_rejected(self, tmp_path):
        store = ProfileStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.put_many([record("alice"), record("alice")])


class TestDurability:
    def _shard_file(self, store, uid):
        return store.directory / f"shard-{store.shard_of(uid):05d}.pshard"

    def test_garbage_shard_quarantined_as_miss(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice"))
        path = self._shard_file(store, "alice")
        path.write_bytes(b"\x00not a pickle")
        reopened = ProfileStore(tmp_path)
        assert reopened.get("alice") is None
        assert reopened.stats()["torn_loads"] == 1
        assert list(tmp_path.glob("*.pshard.corrupt"))
        assert not path.exists()

    def test_truncated_shard_quarantined_as_miss(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice"))
        path = self._shard_file(store, "alice")
        path.write_bytes(path.read_bytes()[:-7])
        reopened = ProfileStore(tmp_path)
        assert reopened.get("alice") is None
        assert reopened.stats()["torn_loads"] == 1

    def test_quarantined_shard_is_writable_again(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice"))
        self._shard_file(store, "alice").write_bytes(b"torn")
        reopened = ProfileStore(tmp_path)
        assert reopened.get("alice") is None
        assert reopened.put(record("alice")).version == 1
        assert reopened.get("alice") is not None

    def test_wrong_schema_shard_fails_loud(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice"))
        path = self._shard_file(store, "alice")
        blob = pickle.loads(path.read_bytes())
        blob["schema"] = "ptrack-profile-v999"
        path.write_bytes(pickle.dumps(blob))
        with pytest.raises(ConfigurationError):
            ProfileStore(tmp_path).get("alice")

    def test_meta_pins_shard_count(self, tmp_path):
        ProfileStore(tmp_path, n_shards=8)
        assert ProfileStore(tmp_path).n_shards == 8
        with pytest.raises(ConfigurationError):
            ProfileStore(tmp_path, n_shards=16)

    def test_torn_meta_with_shards_refuses(self, tmp_path):
        store = ProfileStore(tmp_path, n_shards=8)
        store.put(record("alice"))
        (tmp_path / "store.meta").write_bytes(b"torn")
        with pytest.raises(ConfigurationError):
            ProfileStore(tmp_path)

    def test_torn_meta_without_shards_rebuilds(self, tmp_path):
        ProfileStore(tmp_path, n_shards=8)
        (tmp_path / "store.meta").write_bytes(b"torn")
        assert ProfileStore(tmp_path, n_shards=4).n_shards == 4

    def test_compact_drops_quarantine_files(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.put(record("alice"))
        self._shard_file(store, "alice").write_bytes(b"torn")
        reopened = ProfileStore(tmp_path)
        reopened.get("alice")  # quarantines
        reopened.put(record("alice"))
        outcome = reopened.compact()
        assert outcome["removed_corrupt"] == 1
        assert outcome["rewritten"] >= 1
        assert not list(tmp_path.glob("*.corrupt"))
        assert reopened.get("alice") is not None


class TestCacheAndTelemetry:
    def test_lru_bounded_and_write_through(self, tmp_path):
        store = ProfileStore(tmp_path, n_shards=64, cache_shards=1)
        users = [f"user-{i}" for i in range(8)]
        distinct = {store.shard_of(u) for u in users}
        assert len(distinct) > 1, "test needs users on different shards"
        store.put_many([record(u) for u in users])
        assert store.stats()["cached_shards"] == 1
        # Eviction is free because every save already hit disk.
        for u in users:
            assert store.get(u) is not None

    def test_counters_flow_to_registry(self, tmp_path):
        reg = MetricsRegistry()
        store = ProfileStore(tmp_path, telemetry=reg)
        store.put(record("alice"))
        store.get("alice")
        store.get("nobody")
        counters = reg.snapshot()["counters"]
        assert counters["profile_store_saves_total"] == 1
        assert counters["profile_store_hits_total"] == 1
        assert counters["profile_store_misses_total"] == 1

    def test_stats_shape(self, tmp_path):
        store = ProfileStore(tmp_path, n_shards=4)
        store.put_many([record(f"u{i}") for i in range(10)])
        stats = store.stats()
        assert stats["records"] == 10
        assert stats["n_shards"] == 4
        assert stats["populated_shards"] <= 4
        assert stats["quarantined_files"] == 0

    def test_invalid_construction_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ProfileStore(tmp_path, n_shards=0)
        with pytest.raises(ConfigurationError):
            ProfileStore(tmp_path, cache_shards=0)
