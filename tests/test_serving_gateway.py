"""Tests for repro.serving.gateway: mailboxes, backpressure, scheduling.

The arrival-order *fuzzing* suite (hypothesis strategies over ragged
schedules) lives in ``tests/test_gateway_fuzz.py``; this module covers
the deterministic unit and edge-case behaviour: sequence-ordered
bounded mailboxes, exactly-once shed accounting, failure isolation,
the clock seam, the ragged-schedule generator and the gateway-level
fault injectors.
"""

import numpy as np
import pytest

from repro.core.streaming import StreamingPTrack
from repro.exceptions import ConfigurationError
from repro.faults import (
    MailboxFlood,
    StalledProducer,
    inject_schedule_faults,
)
from repro.runtime import ManualClock
from repro.serving import (
    BatchedSessionPool,
    IngestGateway,
    SessionMailbox,
    SessionPool,
    serve_schedule,
    synthesize_arrival_schedule,
    synthesize_workload,
)
from repro.telemetry import MetricsRegistry

RATE = 100.0


def _batch(n, fill=0.0):
    return np.full((n, 3), fill, dtype=np.float64)


def _signature(steps, strides):
    return (
        [(e.index, e.time) for e in steps],
        [(e.time, e.length_m) for e in strides],
    )


def _serial_replay(samples, slices, profile):
    """The equivalence oracle: one StreamingPTrack fed the delivered
    slices in sequence order."""
    sess = StreamingPTrack(RATE, profile=profile)
    steps, strides = [], []
    for start, stop in slices:
        st, sr = sess.append(samples[start:stop])
        steps.extend(st)
        strides.extend(sr)
    st, sr = sess.flush()
    steps.extend(st)
    strides.extend(sr)
    return steps, strides


@pytest.fixture(scope="module")
def fleet():
    return synthesize_workload(4, 25.0, seed=11)


class TestSessionMailbox:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="capacity_samples"):
            SessionMailbox(0)
        with pytest.raises(ConfigurationError, match="reorder_window"):
            SessionMailbox(10, reorder_window=-1)
        with pytest.raises(ConfigurationError, match="seq"):
            SessionMailbox(10).offer(_batch(1), seq=-1)

    def test_in_order_fifo(self):
        mb = SessionMailbox(100)
        a, b = _batch(10, 1.0), _batch(10, 2.0)
        assert mb.offer(a).ok and mb.offer(b).ok
        assert mb.queued_samples == 20
        out = mb.take_ready()
        assert [o[0, 0] for o in out] == [1.0, 2.0]
        assert mb.queued_samples == 0 and mb.take_ready() == []

    def test_mixed_auto_and_explicit_seq_rejected(self):
        mb = SessionMailbox(100)
        mb.offer(_batch(1), seq=0)
        with pytest.raises(ConfigurationError, match="explicit"):
            mb.offer(_batch(1))

    def test_reorder_held_and_released_in_order(self):
        mb = SessionMailbox(100, reorder_window=2)
        assert mb.offer(_batch(5, 2.0), seq=2).ok
        assert mb.stalled  # held behind missing 0 and 1
        assert mb.take_ready() == []
        assert mb.offer(_batch(5, 0.0), seq=0).ok
        assert mb.offer(_batch(5, 1.0), seq=1).ok
        out = mb.take_ready()
        assert [o[0, 0] for o in out] == [0.0, 1.0, 2.0]
        assert not mb.stalled

    def test_reorder_window_shed(self):
        mb = SessionMailbox(1000, reorder_window=1)
        res = mb.offer(_batch(5), seq=2)  # next=0, window=1 -> too far
        assert res.reason == "reorder_window" and res.shed == 5
        assert mb.shed_batches == 1 and mb.shed_samples == 5

    def test_window_measured_from_frontier(self):
        # An in-order burst may keep running ahead: each arrival only
        # has to stay within window of the furthest accounted slot.
        mb = SessionMailbox(10_000, reorder_window=1)
        for seq in range(6):
            assert mb.offer(_batch(5), seq=seq).ok
        # seq 7 is 1 past the frontier (6): in window even though it is
        # far beyond next_seq + window.
        assert mb.offer(_batch(5), seq=7).ok

    def test_duplicate_detection(self):
        mb = SessionMailbox(100, reorder_window=2)
        mb.offer(_batch(5), seq=0)
        assert mb.offer(_batch(5), seq=0).reason == "duplicate"  # held
        mb.take_ready()
        assert mb.offer(_batch(5), seq=0).reason == "duplicate"  # delivered
        assert mb.duplicates == 2

    def test_capacity_sheds_newest_whole_batch(self):
        mb = SessionMailbox(25)
        assert mb.offer(_batch(20), seq=0).ok
        res = mb.offer(_batch(10), seq=1)
        assert res.reason == "capacity" and res.shed == 10
        # The shed batch is whole: nothing was partially queued.
        assert mb.queued_samples == 20
        # A smaller follow-up still fits.
        assert mb.offer(_batch(5), seq=2).ok

    def test_shed_seq_never_stalls_the_stream(self):
        mb = SessionMailbox(25, reorder_window=4)
        mb.offer(_batch(20), seq=0)
        assert mb.offer(_batch(10), seq=1).reason == "capacity"
        assert len(mb.take_ready()) == 1
        # seq 1 was shed; seq 2 must deliver without waiting for it.
        mb.offer(_batch(10, 2.0), seq=2)
        out = mb.take_ready()
        assert len(out) == 1 and out[0][0, 0] == 2.0
        assert mb.next_seq == 3

    def test_shed_seq_reoffer_is_duplicate(self):
        mb = SessionMailbox(25, reorder_window=4)
        mb.offer(_batch(20), seq=0)
        assert mb.offer(_batch(10), seq=1).reason == "capacity"
        # Retrying the shed seq does not double-count shed samples.
        assert mb.offer(_batch(10), seq=1).reason == "duplicate"
        assert mb.shed_samples == 10 and mb.shed_batches == 1

    def test_drain_skips_gaps_and_counts_them(self):
        mb = SessionMailbox(100, reorder_window=4)
        mb.offer(_batch(5, 0.0), seq=0)
        mb.offer(_batch(5, 3.0), seq=3)  # 1 and 2 never arrive
        out = mb.drain()
        assert [o[0, 0] for o in out] == [0.0, 3.0]
        assert mb.gap_skips == 2
        assert mb.next_seq == 4

    def test_drain_does_not_count_shed_seqs_as_gaps(self):
        mb = SessionMailbox(12, reorder_window=4)
        mb.offer(_batch(10), seq=0)
        assert mb.offer(_batch(10), seq=1).reason == "capacity"
        mb.offer(_batch(2, 2.0), seq=2)
        out = mb.drain()
        assert [o.shape[0] for o in out] == [10, 2]
        assert mb.gap_skips == 0  # seq 1 was shed, not missing

    def test_discard(self):
        mb = SessionMailbox(100, reorder_window=4)
        mb.offer(_batch(5), seq=0)
        mb.offer(_batch(5), seq=2)
        assert mb.discard() == 10
        assert mb.queued_samples == 0 and mb.take_ready() == []
        assert mb.next_seq == 3

    def test_saturation(self):
        mb = SessionMailbox(100)
        assert mb.saturation == 0.0
        mb.offer(_batch(25))
        assert mb.saturation == pytest.approx(0.25)


class TestGatewayConstruction:
    def test_rejects_non_empty_pool(self):
        pool = SessionPool(RATE)
        pool.add_session()
        with pytest.raises(ConfigurationError, match="empty"):
            IngestGateway(RATE, pool=pool)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity_s"):
            IngestGateway(RATE, capacity_s=0.0)

    def test_unknown_session_id(self):
        gw = IngestGateway(RATE, telemetry=MetricsRegistry())
        with pytest.raises(ConfigurationError, match="unknown session"):
            gw.offer(99, _batch(5))


class TestGatewayEquivalence:
    def test_bursty_arrivals_match_serial(self, fleet):
        """Arbitrary per-tick burst sizes: credits == serial replay."""
        gw = IngestGateway(RATE, telemetry=MetricsRegistry())
        sids = [gw.add_session(w.profile) for w in fleet]
        results = {sid: ([], []) for sid in sids}
        offsets = [0] * len(fleet)
        rng = np.random.default_rng(7)
        while any(
            off < w.samples.shape[0] for off, w in zip(offsets, fleet)
        ):
            for k, w in enumerate(fleet):
                n_batches = int(rng.integers(0, 4))
                for _ in range(n_batches):
                    if offsets[k] >= w.samples.shape[0]:
                        break
                    chunk = int(rng.integers(1, 400))
                    gw.offer(
                        sids[k],
                        w.samples[offsets[k] : offsets[k] + chunk],
                    )
                    offsets[k] = min(
                        offsets[k] + chunk, w.samples.shape[0]
                    )
            for sid, (st, sr) in gw.tick().items():
                results[sid][0].extend(st)
                results[sid][1].extend(sr)
        for sid, (st, sr) in gw.flush().items():
            results[sid][0].extend(st)
            results[sid][1].extend(sr)
        for sid, w in zip(sids, fleet):
            serial = _serial_replay(
                w.samples, [(0, w.samples.shape[0])], w.profile
            )
            assert _signature(*results[sid]) == _signature(*serial)
            assert len(serial[0]) > 0

    def test_close_session_returns_all_credits(self, fleet):
        w = fleet[0]
        gw = IngestGateway(RATE, telemetry=MetricsRegistry())
        sid = gw.add_session(w.profile)
        half = w.samples.shape[0] // 2
        gw.offer(sid, w.samples[:half])
        mid = gw.tick().get(sid, ([], []))
        gw.offer(sid, w.samples[half:])
        # No tick between offer and close: close drains the mailbox.
        steps, strides = gw.close_session(sid)
        all_steps = list(mid[0]) + steps
        all_strides = list(mid[1]) + strides
        serial = _serial_replay(
            w.samples, [(0, w.samples.shape[0])], w.profile
        )
        assert _signature(all_steps, all_strides) == _signature(*serial)

    def test_offers_after_close_shed_as_closed(self, fleet):
        gw = IngestGateway(RATE, telemetry=MetricsRegistry())
        sid = gw.add_session(fleet[0].profile)
        gw.close_session(sid)
        res = gw.offer(sid, _batch(50))
        assert res.reason == "closed" and res.shed == 50
        assert gw.stats.shed_closed == 50
        assert gw.close_session(sid) == ([], [])  # idempotent

    def test_join_mid_stream(self, fleet):
        """A session added after others are underway is unaffected."""
        early, late = fleet[0], fleet[1]
        gw = IngestGateway(RATE, telemetry=MetricsRegistry())
        sid_e = gw.add_session(early.profile)
        results = {0: ([], []), 1: ([], [])}
        sid_l = None
        batch = 300
        for i, off in enumerate(range(0, early.samples.shape[0], batch)):
            gw.offer(sid_e, early.samples[off : off + batch])
            if i == 3:
                sid_l = gw.add_session(late.profile)
            if sid_l is not None:
                lo = (i - 3) * batch
                gw.offer(sid_l, late.samples[lo : lo + batch])
            for sid, (st, sr) in gw.tick().items():
                key = 0 if sid == sid_e else 1
                results[key][0].extend(st)
                results[key][1].extend(sr)
        # Feed the late session's remainder.
        off = (i - 2) * batch
        while off < late.samples.shape[0]:
            gw.offer(sid_l, late.samples[off : off + batch])
            off += batch
            for sid, (st, sr) in gw.tick().items():
                key = 0 if sid == sid_e else 1
                results[key][0].extend(st)
                results[key][1].extend(sr)
        for sid, (st, sr) in gw.flush().items():
            key = 0 if sid == sid_e else 1
            results[key][0].extend(st)
            results[key][1].extend(sr)
        for key, w in ((0, early), (1, late)):
            serial = _serial_replay(
                w.samples, [(0, w.samples.shape[0])], w.profile
            )
            assert _signature(*results[key]) == _signature(*serial)


class TestBackpressureEdgeCases:
    def test_shedding_deterministic_under_seed_and_schedule(self, fleet):
        """Same (seed, schedule, capacity) -> bit-identical shed set."""
        lengths = [w.samples.shape[0] for w in fleet]
        schedule = synthesize_arrival_schedule(
            lengths,
            seed=5,
            batch_samples=100,
            burst_batches=(2, 5),
            quiet_ticks=(0, 1),
        )

        def run():
            gw = IngestGateway(
                RATE, capacity_s=3.0, telemetry=MetricsRegistry()
            )
            credits = serve_schedule(
                gw,
                schedule,
                [w.samples for w in fleet],
                profiles=[w.profile for w in fleet],
            )
            return gw.stats.as_dict(), {
                k: _signature(*v) for k, v in credits.items()
            }

        stats_a, credits_a = run()
        stats_b, credits_b = run()
        assert stats_a["samples_shed"] > 0
        assert stats_a == stats_b
        assert credits_a == credits_b

    def test_shed_counted_exactly_once(self, fleet):
        """stats, telemetry and the conservation law all agree."""
        reg = MetricsRegistry()
        lengths = [w.samples.shape[0] for w in fleet]
        schedule = synthesize_arrival_schedule(
            lengths,
            seed=5,
            batch_samples=100,
            burst_batches=(2, 5),
            quiet_ticks=(0, 1),
        )
        gw = IngestGateway(RATE, capacity_s=3.0, telemetry=reg)
        serve_schedule(
            gw,
            schedule,
            [w.samples for w in fleet],
            profiles=[w.profile for w in fleet],
        )
        s = gw.stats
        assert s.samples_shed > 0
        # Per-reason split partitions the shed total.
        assert (
            s.samples_shed
            == s.shed_capacity + s.shed_reorder + s.shed_closed
        )
        # Every offered sample was either accepted or shed (no
        # duplicates in this schedule), and every accepted sample was
        # ingested (nothing lost inside the gateway).
        assert s.samples_accepted + s.samples_shed == schedule.n_samples
        assert s.samples_ingested == s.samples_accepted
        # Telemetry mirrors the stats exactly: one inc per event.
        assert reg.counter(
            "serving_gateway_samples_shed_total"
        ).value == s.samples_shed
        assert reg.counter(
            "serving_gateway_batches_shed_total"
        ).value == s.batches_shed
        assert reg.counter(
            "serving_gateway_samples_accepted_total"
        ).value == s.samples_accepted
        assert reg.counter(
            "serving_gateway_samples_ingested_total"
        ).value == s.samples_ingested
        assert reg.counter(
            "serving_gateway_offers_total"
        ).value == s.offers == schedule.n_events

    def test_failed_session_mailbox_drains_without_blocking(self, fleet):
        """A poisoned stream is discarded; round-mates keep crediting."""
        reg = MetricsRegistry()
        gw = IngestGateway(RATE, telemetry=reg)
        good, bad = fleet[0], fleet[1]
        sid_g = gw.add_session(good.profile)
        sid_b = gw.add_session(bad.profile)
        batch = 200
        results = ([], [])
        for i, off in enumerate(range(0, good.samples.shape[0], batch)):
            gw.offer(sid_g, good.samples[off : off + batch])
            if i == 2:
                gw.offer(sid_b, np.full((batch, 3), np.nan))
            else:
                gw.offer(sid_b, bad.samples[off : off + batch])
            for sid, (st, sr) in gw.tick().items():
                if sid == sid_g:
                    results[0].extend(st)
                    results[1].extend(sr)
        for sid, (st, sr) in gw.flush().items():
            if sid == sid_g:
                results[0].extend(st)
                results[1].extend(sr)
        assert gw.pool.session_status(sid_b) == "failed"
        # Offers kept landing after the failure; their samples were
        # dropped with explicit accounting, not silently queued forever.
        assert gw.stats.failed_drops > 0
        assert (
            reg.counter("serving_gateway_failed_drops_total").value
            == gw.stats.failed_drops
        )
        assert gw.mailbox(sid_b).queued_samples == 0
        # The healthy round-mate is bit-identical to its solo run.
        serial = _serial_replay(
            good.samples, [(0, good.samples.shape[0])], good.profile
        )
        assert _signature(*results) == _signature(*serial)

    def test_saturation_and_depth_gauges(self):
        reg = MetricsRegistry()
        gw = IngestGateway(RATE, capacity_s=1.0, telemetry=reg)
        gw.add_session()
        sid = gw.session_ids[0]
        gw.offer(sid, _batch(50), seq=1)  # held behind missing seq 0
        assert gw.queue_depth_samples == 50
        assert gw.saturation == pytest.approx(0.5)
        gw.tick()  # publishes gauges; seq 0 still missing -> stalled
        assert reg.gauge(
            "serving_gateway_queue_depth_samples"
        ).value == 50
        assert reg.gauge(
            "serving_gateway_saturation"
        ).value == pytest.approx(0.5)
        assert reg.gauge("serving_gateway_stalled_sessions").value == 1


class TestClockSeam:
    def test_manual_clock_drives_tick_latency(self):
        reg = MetricsRegistry()
        clock = ManualClock(auto_step=0.25)
        gw = IngestGateway(RATE, clock=clock, telemetry=reg)
        gw.add_session()
        gw.tick()
        hist = reg.histogram("serving_gateway_tick_seconds")
        assert hist.count == 1
        # Two clock reads per tick, auto_step 0.25 -> observed 0.25.
        assert hist.sum == pytest.approx(0.25)

    def test_credits_do_not_depend_on_clock(self, fleet):
        w = fleet[0]

        def run(clock):
            gw = IngestGateway(
                RATE, clock=clock, telemetry=MetricsRegistry()
            )
            sid = gw.add_session(w.profile)
            out = ([], [])
            for off in range(0, w.samples.shape[0], 250):
                gw.offer(sid, w.samples[off : off + 250])
                for _, (st, sr) in gw.tick().items():
                    out[0].extend(st)
                    out[1].extend(sr)
            for _, (st, sr) in gw.flush().items():
                out[0].extend(st)
                out[1].extend(sr)
            return _signature(*out)

        assert run(ManualClock()) == run(ManualClock(auto_step=123.0))


class TestArrivalScheduleGenerator:
    LENGTHS = [2500, 1800, 3200]

    def test_deterministic_under_seed(self):
        a = synthesize_arrival_schedule(
            self.LENGTHS, seed=9, reorder_prob=0.3, disconnect_prob=0.1,
            join_spread_ticks=4,
        )
        b = synthesize_arrival_schedule(
            self.LENGTHS, seed=9, reorder_prob=0.3, disconnect_prob=0.1,
            join_spread_ticks=4,
        )
        assert a == b

    def test_seed_changes_schedule(self):
        a = synthesize_arrival_schedule(self.LENGTHS, seed=9)
        b = synthesize_arrival_schedule(self.LENGTHS, seed=10)
        assert a != b

    def test_sessions_independent_of_fleet_size(self):
        """Session i's traffic is a pure function of (seed, i)."""
        small = synthesize_arrival_schedule(self.LENGTHS[:2], seed=9)
        large = synthesize_arrival_schedule(self.LENGTHS, seed=9)

        def per_session(schedule, i):
            return [
                (t, ev.seq, ev.start, ev.stop)
                for t, tick in enumerate(schedule.events)
                for ev in tick
                if ev.session == i
            ]

        for i in range(2):
            assert per_session(small, i) == per_session(large, i)

    def test_full_delivery_without_faults(self):
        sched = synthesize_arrival_schedule(self.LENGTHS, seed=3)
        assert sched.n_samples == sum(self.LENGTHS)
        assert sched.max_seq_skew == 0
        assert sched.disconnected == ()
        for i, slices in sched.delivered_slices().items():
            assert slices[0][0] == 0
            assert slices[-1][1] == self.LENGTHS[i]
            assert all(
                a[1] == b[0] for a, b in zip(slices, slices[1:])
            )

    def test_disconnect_truncates_tail(self):
        sched = synthesize_arrival_schedule(
            self.LENGTHS, seed=4, disconnect_prob=0.5
        )
        assert sched.disconnected  # at prob 0.5 someone drops
        assert sched.n_samples < sum(self.LENGTHS)
        delivered = sched.delivered_slices()
        for i in sched.disconnected:
            # A session may disconnect before its first upload, in
            # which case it has no delivered slices at all.
            slices = delivered.get(i, [])
            assert not slices or slices[-1][1] < self.LENGTHS[i]

    def test_reorder_reports_skew(self):
        sched = synthesize_arrival_schedule(
            self.LENGTHS, seed=6, reorder_prob=0.5
        )
        assert sched.max_seq_skew > 0
        # Reordering delays batches, it never drops them.
        assert sched.n_samples == sum(self.LENGTHS)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="batch_samples"):
            synthesize_arrival_schedule([100], batch_samples=0)
        with pytest.raises(ConfigurationError, match="burst_batches"):
            synthesize_arrival_schedule([100], burst_batches=(3, 2))
        with pytest.raises(ConfigurationError, match="quiet_ticks"):
            synthesize_arrival_schedule([100], quiet_ticks=(-1, 2))
        with pytest.raises(ConfigurationError, match="disconnect_prob"):
            synthesize_arrival_schedule([100], disconnect_prob=1.5)
        with pytest.raises(ConfigurationError, match="reorder_prob"):
            synthesize_arrival_schedule([100], reorder_prob=-0.1)
        with pytest.raises(ConfigurationError, match="join_spread"):
            synthesize_arrival_schedule([100], join_spread_ticks=-1)


class TestScheduleFaultInjectors:
    LENGTHS = [2000, 2000]
    INJECTORS = [
        StalledProducer(stall_prob=0.4, stall_ticks=4),
        MailboxFlood(flood_prob=0.4, flood_span=6),
    ]

    def _schedule(self):
        return synthesize_arrival_schedule(
            self.LENGTHS, seed=2, batch_samples=128, quiet_ticks=(0, 2)
        )

    def test_deterministic_and_seed_sensitive(self):
        sched = self._schedule()
        a = inject_schedule_faults(sched, self.INJECTORS, seed=1)
        b = inject_schedule_faults(sched, self.INJECTORS, seed=1)
        c = inject_schedule_faults(sched, self.INJECTORS, seed=2)
        assert a == b
        assert a != c

    def test_events_retimed_never_dropped_or_altered(self):
        sched = self._schedule()
        faulted = inject_schedule_faults(sched, self.INJECTORS, seed=1)
        key = lambda s: sorted(
            (e.session, e.seq, e.start, e.stop)
            for tick in s.events
            for e in tick
        )
        assert key(faulted) == key(sched)
        assert faulted.delivered_slices() == sched.delivered_slices()
        assert faulted != sched  # ...but the timing did change

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="stall_prob"):
            StalledProducer(stall_prob=1.5)
        with pytest.raises(ConfigurationError, match="stall_ticks"):
            StalledProducer(stall_ticks=0)
        with pytest.raises(ConfigurationError, match="flood_prob"):
            MailboxFlood(flood_prob=-0.1)
        with pytest.raises(ConfigurationError, match="flood_span"):
            MailboxFlood(flood_span=0)

    def test_flood_overflows_small_mailboxes_deterministically(
        self, fleet
    ):
        lengths = [w.samples.shape[0] for w in fleet]
        sched = synthesize_arrival_schedule(
            lengths, seed=2, batch_samples=128, quiet_ticks=(1, 3)
        )
        faulted = inject_schedule_faults(
            sched, [MailboxFlood(flood_prob=0.5, flood_span=8)], seed=3
        )

        def run():
            gw = IngestGateway(
                RATE, capacity_s=3.0, telemetry=MetricsRegistry()
            )
            serve_schedule(
                gw,
                faulted,
                [w.samples for w in fleet],
                profiles=[w.profile for w in fleet],
            )
            return gw.stats.as_dict()

        stats = run()
        assert stats["samples_shed"] > 0
        assert stats == run()

    def test_gateway_equivalent_under_faulted_schedule(self, fleet):
        """Re-timing alone (ample capacity) never changes credits."""
        lengths = [w.samples.shape[0] for w in fleet]
        sched = synthesize_arrival_schedule(
            lengths, seed=2, batch_samples=128, reorder_prob=0.2,
            join_spread_ticks=4,
        )
        faulted = inject_schedule_faults(sched, self.INJECTORS, seed=3)
        gw = IngestGateway(
            RATE,
            reorder_window=max(8, faulted.max_seq_skew),
            telemetry=MetricsRegistry(),
        )
        credits = serve_schedule(
            gw,
            faulted,
            [w.samples for w in fleet],
            profiles=[w.profile for w in fleet],
        )
        assert gw.stats.samples_shed == 0
        for i, slices in faulted.delivered_slices().items():
            serial = _serial_replay(
                fleet[i].samples, slices, fleet[i].profile
            )
            assert _signature(*credits[i]) == _signature(*serial)


class TestBatchedBackend:
    def test_gateway_over_batched_pool_identical(self, fleet):
        """SessionPool-backed and BatchedSessionPool-backed gateways
        agree credit for credit on the same ragged schedule."""
        lengths = [w.samples.shape[0] for w in fleet]
        schedule = synthesize_arrival_schedule(
            lengths, seed=8, batch_samples=200, reorder_prob=0.2,
            disconnect_prob=0.1, join_spread_ticks=3,
        )

        def run(pool):
            gw = IngestGateway(
                RATE, pool=pool, telemetry=MetricsRegistry()
            )
            credits = serve_schedule(
                gw,
                schedule,
                [w.samples for w in fleet],
                profiles=[w.profile for w in fleet],
            )
            return {k: _signature(*v) for k, v in credits.items()}

        lockstep = run(SessionPool(RATE))
        batched = run(BatchedSessionPool(RATE))
        assert lockstep == batched
        assert any(sig[0] for sig in lockstep.values())
