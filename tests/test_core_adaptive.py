"""Unit tests for repro.core.adaptive (adaptive delta — SV future work)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveDelta, AdaptiveDeltaCounter, otsu_threshold
from repro.core.config import PTrackConfig
from repro.exceptions import CalibrationError, ConfigurationError
from repro.simulation.walker import simulate_walk


class TestOtsuThreshold:
    def test_separates_two_gaussians(self):
        rng = np.random.default_rng(0)
        sample = np.concatenate(
            [rng.normal(0.008, 0.002, 300), rng.normal(0.045, 0.004, 300)]
        )
        t = otsu_threshold(sample)
        assert 0.012 < t < 0.04

    def test_balanced_split(self):
        rng = np.random.default_rng(1)
        sample = np.concatenate([rng.normal(-1, 0.1, 200), rng.normal(1, 0.1, 200)])
        t = otsu_threshold(sample)
        assert abs(float((sample < t).mean()) - 0.5) < 0.05

    def test_rejects_tiny_sample(self):
        with pytest.raises(CalibrationError):
            otsu_threshold(np.array([1.0, 2.0]))

    def test_rejects_constant_sample(self):
        with pytest.raises(CalibrationError):
            otsu_threshold(np.full(100, 3.0))


class TestAdaptiveDelta:
    def test_starts_at_initial(self):
        assert AdaptiveDelta(initial_delta=0.0325).delta == 0.0325

    def test_holds_until_min_samples(self):
        ad = AdaptiveDelta(min_samples=40)
        ad.observe([0.01] * 10 + [0.05] * 10)
        assert ad.delta == 0.0325

    def test_adapts_to_shifted_populations(self):
        rng = np.random.default_rng(2)
        ad = AdaptiveDelta(min_samples=40)
        # A user whose walking offsets sit unusually low (0.028-0.04)
        # and gestures unusually high (0.012-0.02): the fixed 0.0325
        # would clip walking; adaptation must move between the modes.
        walking = rng.normal(0.034, 0.003, 120).tolist()
        gestures = rng.normal(0.012, 0.002, 120).tolist()
        ad.observe(walking + gestures)
        assert 0.015 < ad.delta < 0.032
        split = ad.delta
        assert all(g < split for g in gestures[:50])

    def test_one_sided_mix_keeps_threshold(self):
        ad = AdaptiveDelta(min_samples=40)
        ad.observe([0.04 + 0.001 * i for i in range(60)])  # walking only
        assert ad.delta == 0.0325

    def test_band_clamps(self):
        rng = np.random.default_rng(3)
        ad = AdaptiveDelta(initial_delta=0.025, band=(0.02, 0.03), min_samples=20)
        ad.observe(
            rng.normal(0.005, 0.001, 50).tolist()
            + rng.normal(0.08, 0.005, 50).tolist()
        )
        assert 0.02 <= ad.delta <= 0.03

    def test_ignores_garbage_values(self):
        ad = AdaptiveDelta(min_samples=40)
        ad.observe([float("nan"), -1.0, float("inf")])
        assert ad.n_observed == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            AdaptiveDelta(band=(0.05, 0.01))
        with pytest.raises(ConfigurationError):
            AdaptiveDelta(initial_delta=0.5)
        with pytest.raises(ConfigurationError):
            AdaptiveDelta(min_samples=2)
        with pytest.raises(ConfigurationError):
            AdaptiveDelta(separation_ratio=0.5)


class TestAdaptiveDeltaCounter:
    def test_counts_like_fixed_delta_on_normal_gait(self, user, walk_trace):
        trace, truth = walk_trace
        counter = AdaptiveDeltaCounter()
        counted = counter.count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=3)

    def test_threshold_moves_after_mixed_exposure(self, user, eating_trace):
        counter = AdaptiveDeltaCounter()
        initial = counter.delta
        trace, _ = simulate_walk(user, 40.0, rng=np.random.default_rng(8))
        counter.process(trace)
        counter.process(eating_trace)
        counter.process(trace)
        # With both populations observed the threshold re-fits; it must
        # stay within the sane band and keep counting accurately.
        assert 0.015 <= counter.delta <= 0.06
        trace2, truth2 = simulate_walk(user, 30.0, rng=np.random.default_rng(9))
        assert counter.count_steps(trace2) == pytest.approx(
            truth2.step_count, abs=3
        )
        assert counter.delta != initial or counter.delta == initial  # no crash

    def test_custom_config_respected(self, walk_trace):
        cfg = PTrackConfig(offset_threshold=0.03)
        counter = AdaptiveDeltaCounter(config=cfg)
        assert counter.delta == 0.03
