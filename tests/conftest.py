"""Shared fixtures.

Expensive artefacts (simulated traces, trained classifiers) are
session-scoped: the simulator is deterministic given a seed, so caching
them keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scar import ScarStepCounter
from repro.core.config import PTrackConfig
from repro.core.step_counter import PTrackStepCounter
from repro.experiments.common import train_scar
from repro.sensing.device import WearableDevice
from repro.simulation.activities import simulate_interference
from repro.simulation.profiles import SimulatedUser
from repro.simulation.spoofer import simulate_spoofer
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def user() -> SimulatedUser:
    """The default simulated user."""
    return SimulatedUser()


@pytest.fixture(scope="session")
def config() -> PTrackConfig:
    """Paper-default PTrack configuration."""
    return PTrackConfig()


@pytest.fixture(scope="session")
def walk_trace(user):
    """A 40 s noisy walking trace with ground truth."""
    return simulate_walk(user, 40.0, rng=np.random.default_rng(100))


@pytest.fixture(scope="session")
def stepping_trace(user):
    """A 40 s noisy stepping trace (arm rigid) with ground truth."""
    return simulate_walk(
        user, 40.0, rng=np.random.default_rng(101), arm_mode="rigid"
    )


@pytest.fixture(scope="session")
def swinging_trace(user):
    """A 40 s arm-swinging-while-standing trace."""
    trace, _ = simulate_walk(
        user, 40.0, rng=np.random.default_rng(102), body=False
    )
    return trace


@pytest.fixture(scope="session")
def clean_walk_trace(user):
    """A noiseless, jitter-free walking trace with ground truth."""
    return simulate_walk(user, 30.0, rng=None)


@pytest.fixture(scope="session")
def eating_trace():
    """A 90 s eating trace."""
    return simulate_interference(
        ActivityKind.EATING, 90.0, rng=np.random.default_rng(103)
    )


@pytest.fixture(scope="session")
def spoof_trace():
    """A 60 s spoofing-shaker trace."""
    return simulate_spoofer(60.0, rng=np.random.default_rng(104))


@pytest.fixture(scope="session")
def ptrack_counter(config) -> PTrackStepCounter:
    """A default PTrack step counter."""
    return PTrackStepCounter(config)


@pytest.fixture(scope="session")
def fitted_scar(user) -> ScarStepCounter:
    """A SCAR counter trained on the standard (photo-free) set."""
    return train_scar(user, np.random.default_rng(105), duration_s=40.0)


@pytest.fixture(scope="session")
def ideal_device() -> WearableDevice:
    """A noiseless sensing front end."""
    return WearableDevice.ideal()
