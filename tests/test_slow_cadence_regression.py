"""Pin the known slow-cadence distance underestimate (ROADMAP item).

Hypothesis (``test_distance_tracks_truth_for_any_user``) surfaced a
user at the slow edge of the cadence strategy (``cadence_hz =
1.046875``, walk seed 292) whose tracked distance lands ~15.3% under
ground truth — just past the property's 15% tolerance.

Decomposing the error on this exact example:

* **step undercount, -11.5%** — 46 of 52 true steps are credited.
  The pipeline's cycle admission rejects 3 of the 26 detected gait
  cycles for this trace, and the confirmation-streak warmup (the
  paper's Fig. 4 protocol) withholds credit for the first cycles of
  the walk; both losses grow near the slow-cadence strategy boundary,
  where cycle periods drift toward the segmentation window edge.
* **stride-length bias, -4.2%** — the credited steps' mean stride is
  only mildly under truth, well inside the per-step stride accuracy
  the paper reports (~5 cm on ~0.75 m strides).

So the dominant cause is *step admission near the cadence boundary*,
not the stride model. "Fixing" it by loosening admission would trade
this tail case against the interference-rejection specificity that
Figs. 6-7 rest on — the paper's own design accepts conservative
admission. The case is therefore **pinned, not fixed**: this test
fails if the underestimate silently worsens (admission regression) or
silently vanishes (which would mean admission behaviour changed and
the Fig. 6-7 specificity benches need re-reading).

Tolerances: the trace and pipeline are deterministic given the seed,
but scipy filter numerics may vary in the last ulp across platforms,
so step counts are pinned exactly and ratios get narrow bands.
"""

import numpy as np
import pytest

from repro.core.pipeline import PTrack
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk

PINNED_USER = dict(
    arm_length_m=0.5,
    leg_length_m=1.0,
    cadence_hz=1.046875,
    stride_m=0.75,
    arm_swing_amplitude_rad=0.4375,
    arm_swing_forward_bias_rad=0.125,
    arm_phase_lag=0.06640625,
)
PINNED_SEED = 292


@pytest.fixture(scope="module")
def pinned_run():
    user = SimulatedUser(**PINNED_USER)
    trace, truth = simulate_walk(
        user, 25.0, rng=np.random.default_rng(PINNED_SEED)
    )
    result = PTrack(profile=user.profile).track(trace)
    return truth, result


def test_distance_underestimate_is_pinned(pinned_run):
    truth, result = pinned_run
    error = result.distance_m / truth.total_distance_m - 1.0
    # ~-15.3% on the tree that pinned it; a narrow band on both sides
    # so the case can neither worsen nor silently vanish.
    assert -0.18 <= error <= -0.12


def test_step_undercount_dominates(pinned_run):
    truth, result = pinned_run
    assert truth.step_count == 52
    assert result.step_count == 46
    step_error = result.step_count / truth.step_count - 1.0
    assert step_error == pytest.approx(-0.1154, abs=0.002)


def test_stride_bias_is_secondary(pinned_run):
    truth, result = pinned_run
    mean_est = result.distance_m / result.step_count
    mean_true = truth.total_distance_m / truth.step_count
    stride_bias = mean_est / mean_true - 1.0
    # The stride model is mildly low here but NOT the dominant cause;
    # if this band breaks, the stride estimator changed behaviour.
    assert -0.07 <= stride_bias <= -0.02
