"""Unit tests for repro.signal.projection."""

import numpy as np
import pytest

from repro.exceptions import SignalError
from repro.signal.projection import (
    anterior_direction,
    project_horizontal,
    split_vertical_horizontal,
)


class TestSplit:
    def test_columns(self):
        acc = np.arange(12.0).reshape(4, 3)
        vert, horiz = split_vertical_horizontal(acc)
        assert np.array_equal(vert, acc[:, 2])
        assert np.array_equal(horiz, acc[:, :2])

    def test_copies_not_views(self):
        acc = np.zeros((4, 3))
        vert, horiz = split_vertical_horizontal(acc)
        vert[0] = 9.0
        assert acc[0, 2] == 0.0

    def test_rejects_bad_shape(self):
        with pytest.raises(SignalError):
            split_vertical_horizontal(np.zeros((4, 2)))

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            split_vertical_horizontal(np.zeros((0, 3)))

    def test_rejects_nan(self):
        acc = np.zeros((4, 3))
        acc[1, 1] = np.nan
        with pytest.raises(SignalError):
            split_vertical_horizontal(acc)


class TestAnteriorDirection:
    def _cloud(self, angle_rad, n=200, noise=0.05, seed=0):
        rng = np.random.default_rng(seed)
        main = rng.normal(0, 1, n)
        cross = rng.normal(0, noise, n)
        c, s = np.cos(angle_rad), np.sin(angle_rad)
        return np.column_stack([main * c - cross * s, main * s + cross * c])

    @pytest.mark.parametrize("angle", [0.0, 0.4, 1.1, np.pi / 2, 2.2])
    def test_recovers_orientation(self, angle):
        direction = anterior_direction(self._cloud(angle))
        recovered = np.arctan2(direction[1], direction[0]) % np.pi
        distance = abs(recovered - angle % np.pi)
        assert min(distance, np.pi - distance) < 0.05  # circular mod pi

    def test_unit_norm(self):
        d = anterior_direction(self._cloud(0.7))
        assert np.linalg.norm(d) == pytest.approx(1.0)

    def test_canonical_sign(self):
        d = anterior_direction(self._cloud(0.3))
        assert d[0] > 0

    def test_mean_offset_irrelevant(self):
        cloud = self._cloud(0.5) + np.array([100.0, -40.0])
        d = anterior_direction(cloud)
        assert np.arctan2(d[1], d[0]) % np.pi == pytest.approx(0.5, abs=0.05)

    def test_rejects_degenerate_cloud(self):
        with pytest.raises(SignalError):
            anterior_direction(np.zeros((10, 2)))

    def test_rejects_too_few_samples(self):
        with pytest.raises(SignalError):
            anterior_direction(np.zeros((2, 2)))


class TestProjectHorizontal:
    def test_projection_values(self):
        horiz = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        out = project_horizontal(horiz, np.array([1.0, 0.0]))
        assert np.allclose(out, [1.0, 0.0, 1.0])

    def test_direction_normalised_internally(self):
        horiz = np.array([[2.0, 0.0]])
        out = project_horizontal(horiz, np.array([10.0, 0.0]))
        assert out[0] == pytest.approx(2.0)

    def test_round_trip_with_anterior_direction(self):
        rng = np.random.default_rng(2)
        main = rng.normal(0, 1, 300)
        angle = 0.9
        cloud = np.column_stack(
            [main * np.cos(angle), main * np.sin(angle)]
        )
        d = anterior_direction(cloud)
        projected = project_horizontal(cloud, d)
        assert np.std(projected) == pytest.approx(np.std(main), rel=0.02)

    def test_rejects_zero_direction(self):
        with pytest.raises(SignalError):
            project_horizontal(np.zeros((3, 2)), np.zeros(2))

    def test_rejects_bad_shapes(self):
        with pytest.raises(SignalError):
            project_horizontal(np.zeros((3, 3)), np.array([1.0, 0.0]))
        with pytest.raises(SignalError):
            project_horizontal(np.zeros((3, 2)), np.array([1.0, 0.0, 0.0]))
