"""Property-based tests (hypothesis) for the DSP substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.config import PTrackConfig
from repro.core.offset import (
    _offset_from_points_scalar,
    critical_points_for_offset,
    offset_from_points,
)
from repro.signal.correlation import (
    _best_lag_scalar,
    autocorrelation,
    batch_half_cycle_correlation,
    best_lag,
    half_cycle_correlation,
    normalized_cross_correlation,
)
from repro.signal.critical_points import (
    _zero_crossings_scalar,
    critical_points,
    zero_crossings,
)
from repro.signal.filters import detrend_mean, moving_average
from repro.signal.integration import (
    cumulative_trapezoid,
    double_integrate_mean_removal,
    integrate_mean_removal,
)
from repro.signal.peaks import detect_peaks, detect_valleys

finite_signals = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=8, max_value=200),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


@settings(max_examples=50, deadline=None)
@given(finite_signals)
def test_detrend_mean_is_idempotent(x):
    once = detrend_mean(x)
    twice = detrend_mean(once)
    assert np.allclose(once, twice, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(finite_signals, st.integers(min_value=2, max_value=20))
def test_moving_average_bounded_by_input_range(x, width):
    y = moving_average(x, width)
    assert y.min() >= x.min() - 1e-9
    assert y.max() <= x.max() + 1e-9


@settings(max_examples=50, deadline=None)
@given(finite_signals)
def test_signal_descends_between_consecutive_peaks(x):
    peaks = detect_peaks(x, min_prominence=0.1)
    # Between two accepted peaks the signal must dip strictly below
    # both (a local maximum descends on each side by construction).
    for a, b in zip(peaks, peaks[1:]):
        trough = x[a + 1 : b].min()
        assert trough < x[a] and trough < x[b]


@settings(max_examples=50, deadline=None)
@given(finite_signals)
def test_peak_indices_strictly_inside(x):
    for idx in detect_peaks(x):
        assert 0 < idx < x.size - 1


@settings(max_examples=50, deadline=None)
@given(finite_signals, st.floats(min_value=0.01, max_value=0.2))
def test_integration_linear_in_input(x, dt):
    a = cumulative_trapezoid(x, dt)
    b = cumulative_trapezoid(2.0 * x, dt)
    assert np.allclose(b, 2.0 * a, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(finite_signals, st.floats(min_value=0.005, max_value=0.1))
def test_mean_removal_velocity_ends_at_zero(x, dt):
    # Trapezoid-consistent mean removal zeroes the final sample exactly
    # (up to floating-point rounding).
    vel = integrate_mean_removal(x, dt)
    scale = max(1.0, np.abs(x).max() * x.size * dt)
    assert abs(vel[-1]) < 1e-9 * scale


@settings(max_examples=50, deadline=None)
@given(finite_signals, st.floats(min_value=0.005, max_value=0.1))
def test_double_integration_invariant_to_bias(x, dt):
    biased = double_integrate_mean_removal(x + 42.0, dt)
    plain = double_integrate_mean_removal(x, dt)
    assert np.allclose(biased, plain, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(finite_signals, st.integers(min_value=1, max_value=50))
def test_autocorrelation_bounded(x, lag):
    if lag < x.size and x.std() > 0:
        assert -1.0 - 1e-9 <= autocorrelation(x, lag) <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(finite_signals)
def test_cross_correlation_symmetry(x):
    if x.std() > 0:
        # corr(x, x, lag) == corr(x, x, -lag) for autocorrelation use.
        lag = min(5, x.size - 2)
        if lag > 0:
            forward = normalized_cross_correlation(x, x, lag)
            backward = normalized_cross_correlation(x, x, -lag)
            assert forward == backward or abs(forward - backward) < 1e-9


@settings(max_examples=50, deadline=None)
@given(finite_signals)
def test_critical_points_sorted_unique(x):
    pts = critical_points(x - x.mean(), min_prominence=0.05)
    indices = [p.index for p in pts]
    assert indices == sorted(indices)
    assert len(indices) == len(set(indices))


@settings(max_examples=50, deadline=None)
@given(finite_signals, st.floats(min_value=0.0, max_value=1.0))
def test_hysteresis_monotone(x, hyst):
    centred = x - x.mean()
    loose = zero_crossings(centred, hysteresis=0.0)
    tight = zero_crossings(centred, hysteresis=hyst)
    assert len(tight) <= len(loose)


# ----------------------------------------------------------------------
# Vectorised kernels vs their retained scalar references
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(finite_signals, st.floats(min_value=0.0, max_value=2.0))
def test_zero_crossings_matches_scalar_reference(x, hyst):
    centred = x - x.mean()
    assert zero_crossings(centred, hyst) == _zero_crossings_scalar(centred, hyst)


@settings(max_examples=100, deadline=None)
@given(finite_signals, finite_signals)
def test_offset_matching_matches_scalar_reference(v, a):
    n = min(v.size, a.size)
    v, a = v[:n] - v[:n].mean(), a[:n] - a[:n].mean()
    cfg = PTrackConfig()
    v_pts = [p for p in critical_points_for_offset(v, cfg) if p.kind.is_turning]
    a_pts = critical_points_for_offset(a, cfg)
    fast = offset_from_points(v_pts, a_pts, n, cfg)
    slow = _offset_from_points_scalar(v_pts, a_pts, n, cfg)
    assert abs(fast - slow) <= 1e-12


@settings(max_examples=100, deadline=None)
@given(finite_signals, finite_signals, st.integers(min_value=1, max_value=40))
def test_best_lag_matches_scalar_reference(x, y, max_lag):
    n = min(x.size, y.size)
    x, y = x[:n], y[:n]
    assert best_lag(x, y, max_lag) == _best_lag_scalar(x, y, max_lag)


@settings(max_examples=50, deadline=None)
@given(st.lists(finite_signals, min_size=1, max_size=6))
def test_batch_half_cycle_matches_per_cycle(segments):
    batch = batch_half_cycle_correlation(segments)
    assert len(batch) == len(segments)
    for seg, got in zip(segments, batch):
        arr = np.asarray(seg, dtype=float)
        if arr.size >= 4 and arr.std() > 0:
            assert abs(got - half_cycle_correlation(arr)) <= 1e-9
        else:
            assert got == 0.0
