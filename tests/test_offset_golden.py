"""Golden-waveform tests for the offset metric (Eq. 1).

Each case is an analytically constructed cycle whose classification the
physics dictates; together they pin the metric's behaviour independent
of the simulator.
"""

import numpy as np
import pytest

from repro.core.config import PTrackConfig
from repro.core.offset import cycle_offset

CFG = PTrackConfig()
N = 120
T = np.linspace(0.0, 1.0, N, endpoint=False)


def _scale(x, target_std=2.5):
    return x / max(x.std(), 1e-12) * target_std


class TestRigidFamilies:
    """Single-source motions: both axes share one driver -> below delta."""

    def test_proportional_axes(self):
        driver = np.sin(2 * np.pi * T) + 0.4 * np.sin(4 * np.pi * T)
        v = _scale(driver)
        a = _scale(0.6 * driver)
        assert cycle_offset(v, a, CFG) < CFG.offset_threshold

    def test_antiproportional_axes(self):
        driver = np.sin(2 * np.pi * T)
        assert cycle_offset(_scale(driver), _scale(-driver), CFG) < CFG.offset_threshold

    def test_pendulum_harmonics(self):
        # Vertical at 2f from the centripetal term, anterior at f from
        # the tangential one: the classic swinging arm.
        v = _scale(np.cos(4 * np.pi * T))
        a = _scale(np.sin(2 * np.pi * T))
        assert cycle_offset(v, a, CFG) < CFG.offset_threshold

    def test_small_lag_still_rigid(self):
        # Elbow cushioning shifts the vertical by ~1 sample.
        driver = np.sin(2 * np.pi * T) + 0.3 * np.sin(4 * np.pi * T)
        v = _scale(np.roll(driver, 1))
        a = _scale(driver)
        assert cycle_offset(v, a, CFG) < CFG.offset_threshold

    def test_stepping_quarter_phase(self):
        # Pure body: both axes at the step frequency, quarter apart.
        v = _scale(np.cos(4 * np.pi * T))
        a = _scale(np.cos(4 * np.pi * T + np.pi / 2))
        assert cycle_offset(v, a, CFG) < CFG.offset_threshold


class TestSuperposedFamilies:
    """Two independent sources -> above delta."""

    def _walking_like(self, body_phase):
        # Vertical: bounce (2f) + weak arm residue; anterior: arm (f)
        # plus the body's ripple (2f) at an independent phase.
        v = _scale(
            np.cos(4 * np.pi * T + body_phase) + 0.3 * np.sin(2 * np.pi * T)
        )
        a = _scale(
            np.sin(2 * np.pi * T) + 0.5 * np.cos(4 * np.pi * T + body_phase + 1.3)
        )
        return v, a

    @pytest.mark.parametrize("body_phase", [0.7, 1.2, 2.0])
    def test_mixed_phases_exceed_delta(self, body_phase):
        v, a = self._walking_like(body_phase)
        assert cycle_offset(v, a, CFG) > CFG.offset_threshold

    def test_half_grid_lag_exceeds_delta(self):
        # Shifting one axis by half the critical-point grid spacing
        # maximises the mismatch; no rigid driver explains it. (A
        # *full*-grid shift would re-align with the next points — time
        # shifts are only detectable modulo the grid, which is why the
        # simulator's realism comes from per-component phase shifts.)
        driver = np.cos(4 * np.pi * T) + 0.5 * np.sin(2 * np.pi * T)
        v = _scale(np.roll(driver, N // 16))
        a = _scale(driver)
        assert cycle_offset(v, a, CFG) > CFG.offset_threshold


class TestMetricEdges:
    def test_silent_anterior_scores_zero(self):
        v = _scale(np.cos(4 * np.pi * T))
        a = np.zeros(N)
        assert cycle_offset(v, a, CFG) == 0.0

    def test_silent_vertical_scores_zero(self):
        v = np.zeros(N)
        a = _scale(np.sin(2 * np.pi * T))
        assert cycle_offset(v, a, CFG) == 0.0

    def test_noise_only_cycles_stay_low(self):
        rng = np.random.default_rng(0)
        lows = []
        for _ in range(10):
            v = _scale(rng.normal(size=N), 0.3)
            a = _scale(rng.normal(size=N), 0.3)
            lows.append(cycle_offset(v, a, CFG))
        # Sub-prominence noise produces few critical points; the
        # metric must not hallucinate walking from it.
        assert np.median(lows) < CFG.offset_threshold

    def test_scale_invariance(self):
        v = _scale(np.cos(4 * np.pi * T) + 0.3 * np.sin(2 * np.pi * T))
        a = _scale(np.sin(2 * np.pi * T) + 0.5 * np.cos(4 * np.pi * T + 1.3))
        base = cycle_offset(v, a, CFG)
        doubled = cycle_offset(2 * v, 2 * a, CFG)
        assert doubled == pytest.approx(base, rel=0.2)


class TestVectorizedMatchingEquivalence:
    """The searchsorted matcher must reproduce the per-point scan."""

    def _point_sets(self, rng):
        from repro.core.offset import critical_points_for_offset

        v = _scale(rng.normal(size=N)).cumsum()
        a = _scale(rng.normal(size=N)).cumsum()
        v -= v.mean()
        a -= a.mean()
        v_pts = [p for p in critical_points_for_offset(v, CFG) if p.kind.is_turning]
        a_pts = critical_points_for_offset(a, CFG)
        return v_pts, a_pts

    def test_matches_scalar_on_random_cycles(self):
        from repro.core.offset import _offset_from_points_scalar, offset_from_points

        rng = np.random.default_rng(21)
        compared = 0
        for _ in range(50):
            v_pts, a_pts = self._point_sets(rng)
            fast = offset_from_points(v_pts, a_pts, N, CFG)
            slow = _offset_from_points_scalar(v_pts, a_pts, N, CFG)
            assert abs(fast - slow) <= 1e-12
            compared += 1
        assert compared == 50

    def test_matches_scalar_on_golden_waveforms(self):
        from repro.core.offset import (
            _offset_from_points_scalar,
            critical_points_for_offset,
            offset_from_points,
        )

        driver = np.cos(4 * np.pi * T) + 0.5 * np.sin(2 * np.pi * T)
        for v, a in [
            (_scale(driver), _scale(0.6 * driver)),
            (_scale(np.roll(driver, N // 16)), _scale(driver)),
            (_scale(np.cos(4 * np.pi * T)), _scale(np.sin(2 * np.pi * T))),
        ]:
            v_pts = [
                p for p in critical_points_for_offset(v, CFG) if p.kind.is_turning
            ]
            a_pts = critical_points_for_offset(a, CFG)
            fast = offset_from_points(v_pts, a_pts, N, CFG)
            slow = _offset_from_points_scalar(v_pts, a_pts, N, CFG)
            assert abs(fast - slow) <= 1e-12

    def test_unsorted_anterior_points_handled(self):
        # The scalar scan never needed sorted matching points; the
        # vectorised matcher sorts internally and must agree.
        from repro.core.offset import _offset_from_points_scalar, offset_from_points
        from repro.signal.critical_points import CriticalPoint, CriticalPointKind

        v_pts = [CriticalPoint(i, CriticalPointKind.PEAK) for i in (20, 60, 100)]
        a_pts = [
            CriticalPoint(i, CriticalPointKind.CROSSING) for i in (90, 15, 55, 110)
        ]
        fast = offset_from_points(v_pts, a_pts, N, CFG)
        slow = _offset_from_points_scalar(v_pts, a_pts, N, CFG)
        assert abs(fast - slow) <= 1e-12
