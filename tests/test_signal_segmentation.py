"""Unit tests for repro.signal.segmentation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SignalError
from repro.signal.segmentation import (
    Segment,
    segment_by_valleys,
    segment_gait_cycles,
    sliding_windows,
)


def _gait_like(step_rate=1.9, duration=20.0, rate=100.0, amp=3.0):
    t = np.arange(int(duration * rate)) / rate
    return amp * np.sin(2 * np.pi * step_rate * t)


class TestSegment:
    def test_length(self):
        assert Segment(3, 10).length == 7

    def test_slice(self):
        seg = Segment(2, 5)
        assert seg.slice(np.arange(10)).tolist() == [2, 3, 4]

    def test_slice_2d(self):
        seg = Segment(0, 2)
        x = np.arange(12).reshape(4, 3)
        assert seg.slice(x).shape == (2, 3)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            Segment(5, 5)
        with pytest.raises(ValueError):
            Segment(-1, 3)


class TestSegmentGaitCycles:
    def test_counts_two_steps_per_cycle(self):
        v = _gait_like(duration=20.0)
        cycles = segment_gait_cycles(v, 100.0)
        total_steps = sum(len(c.peak_indices) for c in cycles)
        # 1.9 steps/s for 20 s = 38 steps; pairing may drop the last one.
        assert 34 <= total_steps <= 38
        for c in cycles:
            assert len(c.peak_indices) == 2

    def test_cycles_ordered_and_disjoint_peaks(self):
        v = _gait_like()
        cycles = segment_gait_cycles(v, 100.0)
        peaks = [p for c in cycles for p in c.peak_indices]
        assert peaks == sorted(peaks)
        assert len(peaks) == len(set(peaks))

    def test_low_prominence_signal_ignored(self):
        v = _gait_like(amp=0.1)  # below the 0.6 m/s^2 floor
        assert segment_gait_cycles(v, 100.0) == []

    def test_too_slow_oscillation_ignored(self):
        v = _gait_like(step_rate=0.4)
        assert segment_gait_cycles(v, 100.0) == []

    def test_too_fast_oscillation_rate_gated(self):
        # An 8 Hz shake aliases through the peak spacing gate, but the
        # step rate implied by the accepted peaks must stay inside the
        # human band (the gate's purpose).
        v = _gait_like(step_rate=8.0)
        cycles = segment_gait_cycles(v, 100.0)
        steps = sum(len(c.peak_indices) for c in cycles)
        assert steps <= 3.2 * 20.0  # max_step_rate * duration

    def test_flat_signal(self):
        assert segment_gait_cycles(np.zeros(1000), 100.0) == []

    def test_boundaries_near_valleys(self):
        v = _gait_like(duration=10.0)
        cycles = segment_gait_cycles(v, 100.0)
        for c in cycles[1:-1]:
            # Boundary samples should sit near the valley level (-amp).
            assert v[c.start] < -1.5

    def test_rejects_bad_band(self):
        with pytest.raises(ConfigurationError):
            segment_gait_cycles(np.zeros(100), 100.0, min_step_rate_hz=3.0, max_step_rate_hz=2.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            segment_gait_cycles(np.zeros(100), 0.0)

    def test_rejects_nan(self):
        v = np.zeros(100)
        v[3] = np.nan
        with pytest.raises(SignalError):
            segment_gait_cycles(v, 100.0)

    def test_empty_signal(self):
        assert segment_gait_cycles(np.empty(0), 100.0) == []


class TestSegmentByValleys:
    def test_one_segment_per_peak(self):
        v = _gait_like(duration=5.0)
        from repro.signal.peaks import detect_peaks, detect_valleys

        peaks = detect_peaks(v, min_prominence=1.0, min_distance=20)
        valleys = detect_valleys(v, min_prominence=1.0, min_distance=20)
        segs = segment_by_valleys(v, peaks, valleys)
        assert len(segs) == len(peaks)
        for seg in segs:
            assert seg.start <= seg.peak_indices[0] < seg.end


class TestSlidingWindows:
    def test_exact_tiling(self):
        assert list(sliding_windows(10, 5, 5)) == [(0, 5), (5, 10)]

    def test_overlap(self):
        assert list(sliding_windows(6, 4, 2)) == [(0, 4), (2, 6)]

    def test_window_larger_than_signal(self):
        assert list(sliding_windows(3, 10, 1)) == []

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            list(sliding_windows(10, 0, 1))
        with pytest.raises(ConfigurationError):
            list(sliding_windows(10, 2, 0))
