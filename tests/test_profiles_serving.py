"""Profile-store integration with the serving stack.

The invariants under test:

* **Warm-load oracle** — a fleet served from store-loaded profiles
  credits bit-identically to the same fleet with profiles passed
  directly. Durable profiles are plumbing, never a credit change.
* **Provenance** — a caller-supplied profile always wins over the
  store; a ``user_id`` binds the slot to a store identity whose
  version is the compare-and-swap baseline for write-backs.
* **Staleness fails loud** — restoring a pool snapshot (or a durable
  fleet checkpoint) whose pinned profile versions the store has since
  advanced past raises :class:`~repro.exceptions.ConfigurationError`
  instead of silently serving superseded biomechanics.
* **Exactly-once self-training** — crash-replayed epochs never
  double-feed observations: the crashy durable fleet banks the same
  per-user evidence (and the same credits) as the clean run.
"""

import pickle

import pytest

from repro.exceptions import ConfigurationError, ProfileConflictError
from repro.faults import ShardCrash
from repro.profiles import ProfileRecord, ProfileStore
from repro.serving import SessionPool, serve_fleet, synthesize_workload
from repro.serving.fleet import _ProfileCtx
from repro.types import UserProfile

RATE = 100.0
BATCH = 50

_FLEET = synthesize_workload(3, 15.0, seed=77)
_TRACES = [w.samples for w in _FLEET]
_PROFILES = [w.profile for w in _FLEET]
_USER_IDS = [w.user.name for w in _FLEET]


def _credits(report):
    return [
        (
            s.status,
            [(e.index, e.time) for e in s.steps],
            [(e.time, e.length_m) for e in s.strides],
        )
        for s in report.sessions
    ]


def _seeded_store(tmp_path):
    store = ProfileStore(tmp_path / "profiles")
    store.put_many(
        ProfileRecord(user_id=uid, profile=p)
        for uid, p in zip(_USER_IDS, _PROFILES)
    )
    return store


class TestWarmLoadOracle:
    def test_store_loaded_equals_direct(self, tmp_path):
        direct = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1, batch_samples=BATCH
        )
        stored = serve_fleet(
            _TRACES,
            RATE,
            user_ids=_USER_IDS,
            profile_store=_seeded_store(tmp_path),
            workers=1,
            batch_samples=BATCH,
        )
        assert _credits(stored) == _credits(direct)
        assert stored.profiles_loaded == len(_FLEET)
        assert stored.profiles_updated == 0

    def test_explicit_profile_beats_store(self, tmp_path):
        store = _seeded_store(tmp_path)
        # Poison the store: if serving read it, credits would change.
        store.put(
            ProfileRecord(
                user_id=_USER_IDS[0],
                profile=UserProfile(
                    arm_length_m=0.95, leg_length_m=1.1, calibration_k=3.0
                ),
            )
        )
        direct = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1, batch_samples=BATCH
        )
        mixed = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            user_ids=_USER_IDS,
            profile_store=store,
            workers=1,
            batch_samples=BATCH,
        )
        assert _credits(mixed) == _credits(direct)
        assert mixed.profiles_loaded == 0

    def test_missing_records_serve_profile_free(self, tmp_path):
        store = ProfileStore(tmp_path / "empty")
        bare = serve_fleet(
            _TRACES, RATE, workers=1, batch_samples=BATCH
        )
        cold = serve_fleet(
            _TRACES,
            RATE,
            user_ids=_USER_IDS,
            profile_store=store,
            workers=1,
            batch_samples=BATCH,
        )
        assert _credits(cold) == _credits(bare)
        assert cold.profiles_loaded == 0

    def test_telemetry_counts_loads_and_updates(self, tmp_path):
        report = serve_fleet(
            _TRACES,
            RATE,
            user_ids=_USER_IDS,
            profile_store=_seeded_store(tmp_path),
            self_train=True,
            workers=1,
            batch_samples=BATCH,
            telemetry=True,
        )
        counters = report.telemetry["counters"]
        assert counters["serving_fleet_profiles_loaded_total"] == len(_FLEET)
        assert (
            counters["serving_fleet_profiles_updated_total"]
            == report.profiles_updated
            > 0
        )


class TestValidation:
    def test_user_ids_length_mismatch(self, tmp_path):
        with pytest.raises(ConfigurationError):
            serve_fleet(
                _TRACES,
                RATE,
                user_ids=_USER_IDS[:-1],
                profile_store=_seeded_store(tmp_path),
                workers=1,
            )

    def test_store_requires_user_ids(self, tmp_path):
        with pytest.raises(ConfigurationError):
            serve_fleet(
                _TRACES,
                RATE,
                profile_store=_seeded_store(tmp_path),
                workers=1,
            )

    def test_user_ids_require_store(self):
        with pytest.raises(ConfigurationError):
            serve_fleet(_TRACES, RATE, user_ids=_USER_IDS, workers=1)

    def test_self_train_requires_store(self):
        with pytest.raises(ConfigurationError):
            serve_fleet(
                _TRACES,
                RATE,
                profiles=_PROFILES,
                self_train=True,
                workers=1,
            )


class TestPoolProvenance:
    def test_user_id_warm_loads_and_tracks_version(self, tmp_path):
        pool = SessionPool(RATE, profile_store=_seeded_store(tmp_path))
        sid = pool.add_session(user_id=_USER_IDS[0])
        assert pool.session(sid).profile == _PROFILES[0]
        assert pool.profile_meta()[sid] == {
            "user_id": _USER_IDS[0],
            "version": 1,
        }

    def test_caller_profile_wins_but_identity_recorded(self, tmp_path):
        pool = SessionPool(RATE, profile_store=_seeded_store(tmp_path))
        mine = UserProfile(
            arm_length_m=0.6, leg_length_m=0.8, calibration_k=1.5
        )
        sid = pool.add_session(mine, user_id=_USER_IDS[0])
        assert pool.session(sid).profile is mine
        assert pool.profile_meta()[sid]["version"] == 1

    def test_write_back_advances_cas_baseline(self, tmp_path):
        store = _seeded_store(tmp_path)
        pool = SessionPool(RATE, profile_store=store)
        pool.add_session(user_id=_USER_IDS[0])
        committed = pool.write_back_profile(
            ProfileRecord(user_id=_USER_IDS[0], profile=_PROFILES[0])
        )
        assert committed.version == 2
        # The slot advanced with the commit: a second write-back works.
        assert (
            pool.write_back_profile(
                ProfileRecord(user_id=_USER_IDS[0], profile=_PROFILES[0])
            ).version
            == 3
        )

    def test_write_back_loses_cas_race(self, tmp_path):
        store = _seeded_store(tmp_path)
        pool = SessionPool(RATE, profile_store=store)
        pool.add_session(user_id=_USER_IDS[0])
        # An external writer lands first.
        store.put(ProfileRecord(user_id=_USER_IDS[0], profile=_PROFILES[0]))
        with pytest.raises(ProfileConflictError):
            pool.write_back_profile(
                ProfileRecord(user_id=_USER_IDS[0], profile=_PROFILES[0])
            )

    def test_write_back_needs_bound_session(self, tmp_path):
        pool = SessionPool(RATE, profile_store=_seeded_store(tmp_path))
        pool.add_session(_PROFILES[0])  # no user_id
        with pytest.raises(ConfigurationError):
            pool.write_back_profile(
                ProfileRecord(user_id=_USER_IDS[0], profile=_PROFILES[0])
            )

    def test_observation_tap_drains_exactly_once(self, tmp_path):
        pool = SessionPool(RATE, collect_observations=True)
        sid = pool.add_session(_PROFILES[0])
        w = _FLEET[0]
        for off in range(0, w.samples.shape[0], BATCH):
            pool.append([sid], [w.samples[off : off + BATCH]])
        pool.flush()
        first = pool.take_observations()
        assert first and first[sid]
        assert pool.take_observations() == {}


class TestStalenessFailsLoud:
    def test_pool_restore_refuses_advanced_store(self, tmp_path):
        store = _seeded_store(tmp_path)
        pool = SessionPool(RATE, profile_store=store)
        pool.add_session(user_id=_USER_IDS[0])
        blob = pickle.loads(pickle.dumps(pool.snapshot()))
        # An external writer advances the user after the snapshot.
        store.put(ProfileRecord(user_id=_USER_IDS[0], profile=_PROFILES[0]))
        fresh = SessionPool(RATE, profile_store=store)
        with pytest.raises(ConfigurationError, match="stale"):
            fresh.restore(blob)

    def test_pool_restore_without_store_skips_check(self, tmp_path):
        store = _seeded_store(tmp_path)
        pool = SessionPool(RATE, profile_store=store)
        pool.add_session(user_id=_USER_IDS[0])
        blob = pool.snapshot()
        store.put(ProfileRecord(user_id=_USER_IDS[0], profile=_PROFILES[0]))
        # No store attached: nothing to validate against; meta travels.
        revived = SessionPool.from_snapshot(blob)
        assert revived.profile_meta()[0]["version"] == 1

    def test_fleet_restore_refuses_advanced_store(self, tmp_path):
        store = _seeded_store(tmp_path)
        records = store.get_many(_USER_IDS)
        ctx = _ProfileCtx(store, _USER_IDS, records, None)
        checkpoint = {"profiles": ctx.shard_versions(range(len(_USER_IDS)))}
        ctx.check_restored(checkpoint, range(len(_USER_IDS)))  # clean: ok
        store.put(ProfileRecord(user_id=_USER_IDS[1], profile=_PROFILES[1]))
        with pytest.raises(ConfigurationError, match="advanced past"):
            ctx.check_restored(checkpoint, range(len(_USER_IDS)))


class TestSelfTraining:
    def test_write_back_banks_trainer_state(self, tmp_path):
        store = _seeded_store(tmp_path)
        report = serve_fleet(
            _TRACES,
            RATE,
            user_ids=_USER_IDS,
            profile_store=store,
            self_train=True,
            workers=1,
            batch_samples=BATCH,
        )
        assert report.profiles_updated == len(_FLEET)
        for uid in _USER_IDS:
            record = store.get(uid)
            assert record.version == 2
            assert record.observations > 0
            assert record.trainer_state is not None

    def test_observations_accumulate_across_runs(self, tmp_path):
        store = _seeded_store(tmp_path)
        kwargs = dict(
            user_ids=_USER_IDS,
            profile_store=store,
            self_train=True,
            workers=1,
            batch_samples=BATCH,
        )
        serve_fleet(_TRACES, RATE, **kwargs)
        first = {u: store.get(u).observations for u in _USER_IDS}
        serve_fleet(_TRACES, RATE, **kwargs)
        second = {u: store.get(u).observations for u in _USER_IDS}
        # Warm-started trainers: the second run doubles the evidence.
        assert second == {u: 2 * n for u, n in first.items()}

    def test_self_training_never_changes_credits(self, tmp_path):
        plain = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1, batch_samples=BATCH
        )
        trained = serve_fleet(
            _TRACES,
            RATE,
            user_ids=_USER_IDS,
            profile_store=_seeded_store(tmp_path),
            self_train=True,
            workers=1,
            batch_samples=BATCH,
        )
        assert _credits(trained) == _credits(plain)

    def test_crashy_durable_feeds_exactly_once(self, tmp_path):
        clean_store = _seeded_store(tmp_path / "clean")
        serve_fleet(
            _TRACES,
            RATE,
            user_ids=_USER_IDS,
            profile_store=clean_store,
            self_train=True,
            workers=1,
            batch_samples=BATCH,
        )
        clean = {u: clean_store.get(u).observations for u in _USER_IDS}

        crashy_store = _seeded_store(tmp_path / "crashy")
        report = serve_fleet(
            _TRACES,
            RATE,
            user_ids=_USER_IDS,
            profile_store=crashy_store,
            self_train=True,
            workers=1,
            batch_samples=BATCH,
            checkpoint_every_s=3.0,
            shard_faults=[ShardCrash(prob=0.4, mode="raise")],
            fault_seed=5,
        )
        assert report.checkpoint_restores > 0, "fault schedule never fired"
        crashy = {u: crashy_store.get(u).observations for u in _USER_IDS}
        # Replayed epochs are recognised and skipped: the evidence per
        # user matches the clean run exactly, as do the credits.
        assert crashy == clean
        direct = serve_fleet(
            _TRACES, RATE, profiles=_PROFILES, workers=1, batch_samples=BATCH
        )
        assert _credits(report) == _credits(direct)
