"""Pin the known low-rate resample step undercount (ROADMAP item).

Hypothesis (``test_resample_round_trip_counts``) surfaced sampling
rates near the bottom of the ablation band (25-30 Hz) where counting
the canonical 35 s walk (seed 2024, 66 true steps) through
``resample_trace`` undercounts by more than the property's original
+/-5 band: 60 steps at 26.4765625 Hz, and 56 at the band's worst rate,
27.6875 Hz.

Decomposing the error at the pinned rates:

* **Segmentation is not the cause.** Every rate in the band detects
  all 33 gait cycles; nothing is lost at the front end.
* **Cycle admission is.** The paper's walking test (Eq. 1) admits a
  cycle when its critical-point offset exceeds delta = 0.0325. At
  ~26-28 Hz a gait cycle spans only ~20 samples, and the resampled
  critical points land up to half a sample period off their true
  positions — enough to erode a few genuinely-walking cycles' offsets
  to ~0.031, just *below* delta. Those cycles fall through to the
  stepping tests, where a walking arm swing fails both checks
  (half-cycle correlation ~ -0.7 against the +0.5 stepping threshold,
  and the phase test), so they resolve as *interference* and credit
  nothing; the Fig. 4 confirmation streak then withholds the
  neighbouring credit too.

A sub-sample interpolation "fix" in the resampler or the offset
measurement would perturb critical-point offsets at **every** rate and
break the bit-identity oracles the serving stack rests on (streaming ==
batch, serial == pooled == batched == gateway), trading a 2-generation
boundary artefact for a re-validation of every golden test. The paper's
own ablation (Fig. 10) reports degraded accuracy below 30 Hz; the
behaviour is therefore **pinned, not fixed**: this test fails if the
undercount silently worsens (resampler or admission regression) or
silently vanishes (admission behaviour changed; re-read the
interference-specificity benches before trusting it).

The trace and the resampler are deterministic given the seed, so the
counts are pinned exactly; the offsets get a narrow band because scipy
filter numerics may vary in the last ulp across platforms.
"""

import numpy as np
import pytest

from repro.core.config import PTrackConfig
from repro.core.step_counter import PTrackStepCounter
from repro.signal.resample import resample_trace
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk
from repro.types import GaitType

PINNED_SEED = 2024
PINNED_RATE = 26.4765625  # first rate hypothesis shrank to (60 steps)
WORST_RATE = 27.6875  # band minimum from a dense 25-60 Hz sweep (56)


@pytest.fixture(scope="module")
def walk():
    user = SimulatedUser()
    trace, truth = simulate_walk(
        user, 35.0, rng=np.random.default_rng(PINNED_SEED)
    )
    return trace, truth


def _process(trace, rate):
    converted = resample_trace(trace, rate)
    return PTrackStepCounter().process(converted)


def test_truth_is_the_expected_walk(walk):
    _, truth = walk
    assert truth.step_count == 66


def test_undercount_is_pinned_exactly(walk):
    trace, _ = walk
    events, _ = _process(trace, PINNED_RATE)
    assert len(events) == 60
    events, _ = _process(trace, WORST_RATE)
    assert len(events) == 56


def test_segmentation_survives_low_rates(walk):
    """All 33 cycles are detected at every pinned rate — the loss is
    in admission, not segmentation."""
    trace, _ = walk
    for rate in (PINNED_RATE, WORST_RATE, 30.0):
        _, resolved = _process(trace, rate)
        assert len(resolved) == 33


def test_rejections_sit_just_under_the_offset_threshold(walk):
    """The rejected cycles are quantisation casualties: their offsets
    land in a narrow band immediately below delta, and the stepping
    fallback rejects them (anti-phase arm swing)."""
    trace, _ = walk
    delta = PTrackConfig().offset_threshold
    _, resolved = _process(trace, PINNED_RATE)
    rejected = [
        r for r in resolved if r.gait_type is GaitType.INTERFERENCE
    ]
    assert len(rejected) == 3
    for r in rejected:
        assert 0.9 * delta < r.offset < delta
        assert r.half_cycle_correlation < 0.0  # walking, not stepping
        assert r.steps_added == 0


def test_thirty_hz_recovers_fully(walk):
    """The paper's own ablation floor: at 30 Hz counting is exact."""
    trace, truth = walk
    events, resolved = _process(trace, 30.0)
    assert len(events) == truth.step_count
    assert all(r.gait_type is GaitType.WALKING for r in resolved)


def test_band_floor_holds_across_low_rates(walk):
    """Regression bound: nowhere in the degraded 25-30 Hz band does
    the undercount drop below the pinned worst case."""
    trace, truth = walk
    for rate in (25.0, 25.5, 26.0, 27.0, 28.0, 29.0, 29.5):
        events, _ = _process(trace, rate)
        assert 56 <= len(events) <= truth.step_count
