"""Unit tests for repro.sensing.frames."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensing.frames import heading_rotation, rotate_xyz, rotation_from_euler


class TestHeadingRotation:
    def test_identity_at_zero(self):
        assert np.allclose(heading_rotation(0.0), np.eye(3))

    def test_quarter_turn(self):
        r = heading_rotation(np.pi / 2)
        assert np.allclose(r @ np.array([1.0, 0, 0]), [0, 1, 0], atol=1e-12)

    def test_preserves_vertical(self):
        r = heading_rotation(1.234)
        assert np.allclose(r @ np.array([0, 0, 1.0]), [0, 0, 1.0])

    def test_orthonormal(self):
        r = heading_rotation(0.7)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)


class TestRotationFromEuler:
    def test_identity(self):
        assert np.allclose(rotation_from_euler(0, 0, 0), np.eye(3))

    def test_yaw_only_matches_heading(self):
        assert np.allclose(rotation_from_euler(0, 0, 0.8), heading_rotation(0.8))

    def test_roll_rotates_about_x(self):
        r = rotation_from_euler(np.pi / 2, 0, 0)
        assert np.allclose(r @ np.array([0, 1.0, 0]), [0, 0, 1.0], atol=1e-12)

    def test_pitch_rotates_about_y(self):
        r = rotation_from_euler(0, np.pi / 2, 0)
        assert np.allclose(r @ np.array([0, 0, 1.0]), [1.0, 0, 0], atol=1e-12)

    def test_orthonormal_for_random_angles(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            roll, pitch, yaw = rng.uniform(-np.pi, np.pi, 3)
            r = rotation_from_euler(roll, pitch, yaw)
            assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
            assert np.linalg.det(r) == pytest.approx(1.0)


class TestRotateXYZ:
    def test_single_vector(self):
        r = heading_rotation(np.pi / 2)
        assert np.allclose(rotate_xyz(np.array([1.0, 0, 0]), r), [0, 1, 0], atol=1e-12)

    def test_batch(self):
        r = heading_rotation(np.pi)
        vs = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        out = rotate_xyz(vs, r)
        assert np.allclose(out, [[-1.0, 0, 0], [0, -2.0, 0]], atol=1e-12)

    def test_norm_preserved(self):
        rng = np.random.default_rng(1)
        vs = rng.normal(size=(20, 3))
        r = rotation_from_euler(0.3, -0.2, 1.1)
        out = rotate_xyz(vs, r)
        assert np.allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(vs, axis=1)
        )

    def test_rejects_non_orthonormal(self):
        with pytest.raises(ConfigurationError):
            rotate_xyz(np.zeros(3), np.ones((3, 3)))

    def test_rejects_bad_shapes(self):
        r = np.eye(3)
        with pytest.raises(ConfigurationError):
            rotate_xyz(np.zeros(2), r)
        with pytest.raises(ConfigurationError):
            rotate_xyz(np.zeros((2, 2)), r)
        with pytest.raises(ConfigurationError):
            rotate_xyz(np.zeros(3), np.eye(4))
