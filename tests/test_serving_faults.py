"""Tests for self-healing serving: pool isolation, fleet bisection."""

import multiprocessing

import numpy as np
import pytest

from repro.core.streaming import StreamingPTrack
from repro.exceptions import ConfigurationError
from repro.faults import FaultPolicy, Outage, SampleDropout, inject_faults
from repro.serving import SessionPool, serve_fleet, synthesize_workload
from repro.serving import fleet as fleet_mod


def _workload(n=3, duration_s=20.0, seed=17):
    ws = synthesize_workload(n, duration_s, seed=seed)
    return [w.samples for w in ws], [w.profile for w in ws]


class TestPoolErrors:
    def test_length_mismatch_is_actionable(self):
        pool = SessionPool(100.0)
        sid = pool.add_session()
        with pytest.raises(ConfigurationError, match="positionally"):
            pool.append([sid], [np.zeros((10, 3)), np.zeros((10, 3))])

    def test_unknown_ids_reported_together(self):
        pool = SessionPool(100.0)
        sid = pool.add_session()
        with pytest.raises(ConfigurationError, match=r"\[7, 9\]"):
            pool.append(
                [sid, 7, 9],
                [np.zeros((10, 3))] * 3,
            )

    def test_duplicate_ids_rejected(self):
        pool = SessionPool(100.0)
        sid = pool.add_session()
        with pytest.raises(ConfigurationError, match="duplicate"):
            pool.append([sid, sid], [np.zeros((10, 3))] * 2)

    def test_errors_raised_before_any_ingest(self):
        pool = SessionPool(100.0)
        sid = pool.add_session()
        try:
            pool.append([sid, 99], [np.zeros((10, 3))] * 2)
        except ConfigurationError:
            pass
        assert pool.session(sid).op_stats.samples_in == 0


class TestPoolIsolation:
    def test_poisoned_session_does_not_stop_the_pool(self):
        traces, profiles = _workload(3)
        pool = SessionPool(100.0)
        sids = pool.add_sessions(profiles)
        bad = np.full((50, 3), np.nan)  # strict sessions raise on NaN
        for off in range(0, traces[0].shape[0], 50):
            batches = [t[off : off + 50] for t in traces]
            if off == 500:
                batches[1] = bad
            pool.append(sids, batches)
        pool.flush(sids)
        assert pool.session_status(sids[1]) == "failed"
        assert sids[1] in pool.failed_sessions
        assert "SignalError" in pool.failed_sessions[sids[1]]
        assert pool.session_status(sids[0]) == "ok"
        assert pool.step_count(sids[0]) > 0
        assert pool.step_count(sids[2]) > 0

    def test_survivors_identical_to_solo_runs(self):
        traces, profiles = _workload(2)
        solo = StreamingPTrack(100.0, profile=profiles[0])
        events = []
        for off in range(0, traces[0].shape[0], 50):
            steps, _ = solo.append(traces[0][off : off + 50])
            events.extend(steps)
        steps, _ = solo.flush()
        events.extend(steps)

        pool = SessionPool(100.0)
        sids = pool.add_sessions(profiles)
        pooled = []
        for off in range(0, traces[0].shape[0], 50):
            batches = [t[off : off + 50] for t in traces]
            if off == 500:
                batches[1] = np.full((50, 3), np.nan)
            out = pool.append(sids, batches)
            pooled.extend(out[0][0])
        out = pool.flush(sids)
        pooled.extend(out[0][0])
        assert [(e.index, e.time) for e in pooled] == [
            (e.index, e.time) for e in events
        ]

    def test_isolation_off_restores_fail_fast(self):
        pool = SessionPool(100.0, isolate_failures=False)
        sid = pool.add_session()
        with pytest.raises(Exception):
            pool.append([sid], [np.full((50, 3), np.nan)])

    def test_revive_returns_session_to_rotation(self):
        traces, profiles = _workload(1)
        pool = SessionPool(100.0)
        sid = pool.add_session(profiles[0])
        pool.append([sid], [np.full((50, 3), np.nan)])
        assert pool.session_status(sid) == "failed"
        pool.revive_session(sid)
        assert pool.session_status(sid) == "ok"
        for off in range(0, traces[0].shape[0], 50):
            pool.append([sid], [traces[0][off : off + 50]])
        pool.flush([sid])
        assert pool.step_count(sid) > 0


class TestEagerValidation:
    def test_wrong_shape_names_the_trace(self):
        with pytest.raises(ConfigurationError, match="trace 1"):
            serve_fleet([np.zeros((10, 3)), np.zeros((10, 2))], 100.0)

    def test_non_numeric_dtype_rejected(self):
        with pytest.raises(ConfigurationError, match="float-convertible"):
            serve_fleet([np.array([["a", "b", "c"]])], 100.0)

    def test_non_finite_requires_fault_policy(self):
        bad = np.zeros((100, 3))
        bad[5] = np.inf
        with pytest.raises(ConfigurationError, match="fault_policy"):
            serve_fleet([bad], 100.0)

    def test_profile_length_mismatch(self):
        traces, profiles = _workload(2)
        with pytest.raises(ConfigurationError, match="profiles"):
            serve_fleet(traces, 100.0, profiles=profiles[:1])

    def test_empty_fleet_is_ok(self):
        report = serve_fleet([], 100.0)
        assert report.status == "ok"
        assert report.sessions == ()


class TestDegradedFleet:
    def test_faulted_fleet_completes_with_counters(self):
        traces, profiles = _workload(3, duration_s=30.0)
        faulted = [
            inject_faults(
                t,
                [
                    SampleDropout(prob=0.03),
                    Outage(rate_per_min=4.0, min_gap_s=0.5, max_gap_s=1.0),
                ],
                seed=23,
                index=i,
            )
            for i, t in enumerate(traces)
        ]
        report = serve_fleet(
            faulted, 100.0, profiles=profiles, fault_policy=FaultPolicy()
        )
        assert report.status == "ok"
        assert len(report.sessions) == 3
        assert all(s.status == "ok" for s in report.sessions)
        assert report.samples_repaired > 0
        assert report.samples_rejected > 0
        assert report.gaps_reset > 0
        assert report.total_steps > 0

    def test_clean_fleet_identical_with_policy(self):
        traces, profiles = _workload(3)
        base = serve_fleet(traces, 100.0, profiles=profiles)
        hardened = serve_fleet(
            traces, 100.0, profiles=profiles, fault_policy=FaultPolicy()
        )
        sig = lambda r: [
            [(e.index, e.time) for e in s.steps] for s in r.sessions
        ]
        assert sig(base) == sig(hardened)
        assert hardened.samples_repaired == 0
        assert hardened.gaps_reset == 0


class TestShardHealing:
    def test_killed_shard_is_bisected_to_the_culprit(self, monkeypatch):
        traces, profiles = _workload(4)
        real = fleet_mod._serve_shard

        def poisoned(shard):
            if 2 in shard[0]:
                raise RuntimeError("worker down")
            return real(shard)

        monkeypatch.setattr(fleet_mod, "_serve_shard", poisoned)
        report = fleet_mod.serve_fleet(
            traces,
            100.0,
            profiles=profiles,
            workers=1,
            sessions_per_shard=4,
        )
        assert report.status == "degraded"
        assert report.n_failed == 1
        assert report.shard_retries >= 1
        failed = report.sessions[2]
        assert failed.status == "failed"
        assert "worker down" in failed.error
        # Every other session completed with real credits.
        for i in (0, 1, 3):
            assert report.sessions[i].status == "ok"
            assert report.sessions[i].step_count > 0

    def test_healed_survivors_identical_to_clean_run(self, monkeypatch):
        traces, profiles = _workload(4)
        clean = serve_fleet(
            traces, 100.0, profiles=profiles, sessions_per_shard=4
        )
        real = fleet_mod._serve_shard

        def poisoned(shard):
            if 2 in shard[0]:
                raise RuntimeError("worker down")
            return real(shard)

        monkeypatch.setattr(fleet_mod, "_serve_shard", poisoned)
        healed = fleet_mod.serve_fleet(
            traces,
            100.0,
            profiles=profiles,
            workers=1,
            sessions_per_shard=4,
        )
        for i in (0, 1, 3):
            assert [(e.index, e.time) for e in healed.sessions[i].steps] == [
                (e.index, e.time) for e in clean.sessions[i].steps
            ]

    def test_all_shards_poisoned_still_returns(self, monkeypatch):
        traces, profiles = _workload(2)

        def always_down(shard):
            raise RuntimeError("rack on fire")

        monkeypatch.setattr(fleet_mod, "_serve_shard", always_down)
        report = fleet_mod.serve_fleet(
            traces, 100.0, profiles=profiles, sessions_per_shard=2
        )
        assert report.status == "degraded"
        assert report.n_failed == 2
        assert all("rack on fire" in s.error for s in report.sessions)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-kill test relies on fork start method",
    )
    def test_killed_worker_process_recovers(self):
        # A shard whose worker dies (the hard failure mode: SIGKILL,
        # OOM) must be healed by bisection in a fresh pool, not crash
        # serve_fleet.
        traces, profiles = _workload(2, duration_s=10.0)
        report = _serve_with_kill(traces, profiles)
        assert len(report.sessions) == 2
        assert report.n_failed <= 1
        ok = [s for s in report.sessions if s.status == "ok"]
        assert ok  # at least one session survives the dead worker
        for s in report.sessions:
            if s.status == "failed":
                assert "BrokenProcessPool" in s.error or "Timeout" in s.error


# Captured at import time, before any test patches the module attr —
# _kill_if_marked must delegate to the real implementation.
_REAL_SERVE_SHARD = fleet_mod._serve_shard


def _kill_if_marked(shard):
    import os
    import signal

    if shard[0] == [0]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_SERVE_SHARD(shard)


def _serve_with_kill(traces, profiles):
    original = fleet_mod._serve_shard
    # Patch at module level so the fork-started workers inherit it.
    fleet_mod._serve_shard = _kill_if_marked  # type: ignore[assignment]
    try:
        return fleet_mod.serve_fleet(
            traces,
            100.0,
            profiles=profiles,
            workers=2,
            sessions_per_shard=1,
            shard_timeout_s=120.0,
        )
    finally:
        fleet_mod._serve_shard = original  # type: ignore[assignment]
