"""Integration tests: the full system against the paper's claims."""

import numpy as np
import pytest

from repro.apps.deadreckoning import navigate_route
from repro.baselines.peak_counter import PeakStepCounter
from repro.core.pipeline import PTrack
from repro.eval.metrics import count_accuracy, count_error_rate
from repro.experiments.common import make_users
from repro.simulation.routes import paper_route, walk_route
from repro.simulation.scenarios import SessionBuilder
from repro.simulation.spoofer import simulate_spoofer
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind, Posture


class TestHeadlineClaims:
    """Each test pins one headline number of the paper (shape level)."""

    def test_step_error_rate_low(self, ptrack_counter):
        # "achieving an error rate as low as 0.02 with extensive
        # interfering activities"
        user = make_users(1, 3)[0]
        session = (
            SessionBuilder(user, rng=np.random.default_rng(31))
            .walk(40.0)
            .interfere(ActivityKind.EATING, 40.0, posture=Posture.SEATED)
            .step(40.0)
            .interfere(ActivityKind.GAME, 40.0)
            .walk(40.0)
            .build()
        )
        counted = ptrack_counter.count_steps(session.trace)
        assert count_error_rate(counted, session.true_step_count) < 0.08

    def test_stride_error_about_5cm(self):
        # "the average per-step stride estimation error is ... 5.3cm"
        user = make_users(1, 5)[0]
        trace, truth = simulate_walk(user, 60.0, rng=np.random.default_rng(32))
        result = PTrack(profile=user.profile).track(trace)
        errors = np.abs(
            np.array([s.length_m for s in result.strides])[: truth.step_count]
            - truth.stride_lengths_m[: len(result.strides)]
        )
        assert np.mean(errors) < 0.08

    def test_navigation_distance_close(self):
        # "Along a 141.5m navigation route, the derived walking
        # distance from PTrack is 136.4m"
        user = make_users(1, 7)[0]
        route = paper_route()
        rng = np.random.default_rng(33)
        trace, truth = walk_route(user, route, rng=rng)
        report = navigate_route(
            PTrack(profile=user.profile), trace, truth, route, rng=rng
        )
        assert abs(report.tracked_distance_m - route.total_length_m) < 15.0

    def test_spoofing_rejected_but_fools_baselines(self, ptrack_counter):
        trace = simulate_spoofer(60.0, rng=np.random.default_rng(34))
        assert ptrack_counter.count_steps(trace) <= 2
        assert PeakStepCounter.gfit().count_steps(trace) > 40


class TestMultiUserRobustness:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_walking_accuracy_across_users(self, seed, ptrack_counter):
        user = make_users(1, seed)[0]
        trace, truth = simulate_walk(user, 40.0, rng=np.random.default_rng(seed))
        acc = count_accuracy(ptrack_counter.count_steps(trace), truth.step_count)
        assert acc > 0.92

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_stride_accuracy_across_users(self, seed):
        user = make_users(1, seed)[0]
        trace, truth = simulate_walk(user, 40.0, rng=np.random.default_rng(seed))
        result = PTrack(profile=user.profile).track(trace)
        assert result.distance_m == pytest.approx(truth.total_distance_m, rel=0.12)

    @pytest.mark.parametrize("pace", [(0.85, 0.58), (1.0, 0.72), (1.1, 0.85)])
    def test_paces(self, pace, ptrack_counter):
        cadence, stride = pace
        user = make_users(1, 44)[0].with_gait(cadence_hz=cadence, stride_m=stride)
        trace, truth = simulate_walk(user, 30.0, rng=np.random.default_rng(44))
        acc = count_accuracy(ptrack_counter.count_steps(trace), truth.step_count)
        # The extreme ends of the pace band lose a few cycles whose
        # offsets graze delta; the paper's mixed-gait accuracy (0.91 -
        # 0.93) shows the same effect.
        assert acc > 0.85


class TestFailureInjection:
    def test_high_noise_degrades_gracefully(self, user, ptrack_counter):
        from repro.sensing.device import WearableDevice
        from repro.sensing.noise import NoiseModel

        device = WearableDevice(noise=NoiseModel(white_sigma=0.3, bias_sigma=0.05))
        trace, truth = simulate_walk(
            user, 30.0, rng=np.random.default_rng(55), device=device
        )
        counted = ptrack_counter.count_steps(trace)
        # Harsh noise may cost accuracy but must not explode the count.
        assert counted <= 1.2 * truth.step_count

    def test_low_sample_rate_still_works(self, user, ptrack_counter):
        from repro.sensing.device import WearableDevice

        trace, truth = simulate_walk(
            user,
            30.0,
            sample_rate_hz=50.0,
            rng=np.random.default_rng(56),
            device=WearableDevice(sample_rate_hz=50.0),
        )
        acc = count_accuracy(ptrack_counter.count_steps(trace), truth.step_count)
        assert acc > 0.85

    def test_very_short_trace_no_crash(self, user, ptrack_counter):
        trace, _ = simulate_walk(user, 1.5, rng=np.random.default_rng(57))
        assert ptrack_counter.count_steps(trace) >= 0

    def test_single_sample_style_traces(self, ptrack_counter):
        from repro.sensing.imu import IMUTrace

        trace = IMUTrace(np.zeros((12, 3)), 100.0)
        assert ptrack_counter.count_steps(trace) == 0
