"""Tests for the raw-IMU + attitude-filter substrate ([25])."""

import numpy as np
import pytest

from repro.core.pipeline import PTrack
from repro.exceptions import ConfigurationError, SignalError
from repro.sensing.attitude import (
    ComplementaryFilter,
    RawIMUTrace,
    recover_linear_acceleration,
)
from repro.sensing.imu import GRAVITY_M_S2
from repro.simulation.raw import GyroNoiseModel, simulate_walk_raw
from repro.simulation.walker import simulate_walk


def _static_raw(n=500, rate=100.0, tilt=0.0):
    """A motionless device, optionally tilted about y."""
    c, s = np.cos(tilt), np.sin(tilt)
    # world_from_device = Ry(tilt); gravity reaction in device frame:
    force_device = np.array([-s * GRAVITY_M_S2 * 0 + s * 0, 0.0, 0.0])
    # specific force = R^T * (0,0,g)
    r = np.array([[c, 0, s], [0, 1, 0], [-s, 0, c]])
    f = r.T @ np.array([0.0, 0.0, GRAVITY_M_S2])
    forces = np.tile(f, (n, 1))
    rates = np.zeros((n, 3))
    return RawIMUTrace(forces, rates, rate)


class TestRawIMUTrace:
    def test_properties(self):
        raw = _static_raw(100)
        assert raw.n_samples == 100
        assert raw.dt == pytest.approx(0.01)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(SignalError):
            RawIMUTrace(np.zeros((10, 3)), np.zeros((9, 3)), 100.0)

    def test_rejects_nan(self):
        forces = np.zeros((10, 3))
        forces[0, 0] = np.nan
        with pytest.raises(SignalError):
            RawIMUTrace(forces, np.zeros((10, 3)), 100.0)


class TestComplementaryFilter:
    def test_static_level_device(self):
        raw = _static_raw()
        rotations = ComplementaryFilter(100.0).estimate(raw)
        assert np.allclose(rotations[-1], np.eye(3), atol=1e-6)

    @pytest.mark.parametrize("tilt", [0.2, -0.5, 1.0])
    def test_static_tilted_device_recovers_gravity(self, tilt):
        raw = _static_raw(tilt=tilt)
        rotations = ComplementaryFilter(100.0).estimate(raw)
        # The estimated world-frame force must point straight up.
        world = rotations[-1] @ raw.specific_force[-1]
        assert world[2] == pytest.approx(GRAVITY_M_S2, rel=1e-3)
        assert abs(world[0]) < 0.05
        assert abs(world[1]) < 0.05

    def test_gyro_bias_corrected_by_accel(self):
        raw = _static_raw(2000)
        biased = RawIMUTrace(
            raw.specific_force,
            raw.angular_rate + np.array([0.02, 0.0, 0.0]),
            raw.sample_rate_hz,
        )
        rotations = ComplementaryFilter(100.0, tau_s=1.0).estimate(biased)
        # Without correction the roll would reach 0.02 * 20 s = 0.4 rad;
        # the filter holds the tilt near level.
        world = rotations[-1] @ biased.specific_force[-1]
        assert world[2] == pytest.approx(GRAVITY_M_S2, rel=0.01)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            ComplementaryFilter(0.0)
        with pytest.raises(ConfigurationError):
            ComplementaryFilter(100.0, tau_s=0.0)
        with pytest.raises(ConfigurationError):
            ComplementaryFilter(100.0, gravity_gate=2.0)

    def test_rate_mismatch_rejected(self):
        raw = _static_raw(rate=50.0)
        with pytest.raises(ConfigurationError):
            ComplementaryFilter(100.0).estimate(raw)


class TestRawSynthesis:
    def test_specific_force_magnitude_near_gravity_when_still(self, user):
        raw, _, _ = simulate_walk_raw(user, 10.0, rng=None, arm_mode="none")
        magnitudes = np.linalg.norm(raw.specific_force, axis=1)
        # Walking modulates around 1 g.
        assert np.median(magnitudes) == pytest.approx(GRAVITY_M_S2, rel=0.2)

    def test_gyro_sees_arm_swing(self, user):
        raw, _, _ = simulate_walk_raw(user, 10.0, rng=None, arm_mode="swing")
        # Pitch rate from the swing: amplitude ~ 2*pi*f*A ~ 2-3 rad/s.
        assert np.abs(raw.angular_rate[:, 1]).max() > 1.0

    def test_rotations_orthonormal(self, user):
        _, _, rotations = simulate_walk_raw(user, 5.0, rng=None)
        sample = rotations[::100]
        for r in sample:
            assert np.allclose(r @ r.T, np.eye(3), atol=1e-9)

    def test_deterministic_given_seed(self, user):
        a, _, _ = simulate_walk_raw(user, 5.0, rng=np.random.default_rng(1))
        b, _, _ = simulate_walk_raw(user, 5.0, rng=np.random.default_rng(1))
        assert np.array_equal(a.specific_force, b.specific_force)
        assert np.array_equal(a.angular_rate, b.angular_rate)

    def test_gyro_noise_model_validation(self):
        with pytest.raises(ConfigurationError):
            GyroNoiseModel(white_sigma=-1.0)


class TestEndToEndThroughAttitude:
    def test_noiseless_reconstruction_close(self, user):
        raw, _, rotations = simulate_walk_raw(user, 20.0, rng=None)
        recovered = recover_linear_acceleration(raw, initial_rotation=rotations[0])
        ideal, _ = simulate_walk(user, 20.0, rng=None)
        err = np.abs(
            recovered.linear_acceleration - ideal.linear_acceleration
        )
        assert np.median(err) < 0.15 * ideal.linear_acceleration.std()

    def test_ptrack_on_recovered_trace(self, user):
        raw, truth, _ = simulate_walk_raw(
            user, 40.0, rng=np.random.default_rng(4)
        )
        trace = recover_linear_acceleration(raw)
        result = PTrack(profile=user.profile).track(trace)
        assert result.step_count == pytest.approx(truth.step_count, abs=3)
        assert result.distance_m == pytest.approx(
            truth.total_distance_m, rel=0.1
        )

    def test_stepping_through_attitude(self, user):
        raw, truth, _ = simulate_walk_raw(
            user, 30.0, rng=np.random.default_rng(5), arm_mode="rigid"
        )
        trace = recover_linear_acceleration(raw)
        counted = PTrack().count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=4)
