"""Tests for repro.serving: pool identity, sharding, workloads."""

import numpy as np
import pytest

from repro.core.streaming import StreamingPTrack
from repro.exceptions import ConfigurationError
from repro.serving import (
    SessionPool,
    serve_fleet,
    synthesize_workload,
)


def _serve_serially(workloads, batch=50):
    """Reference: each session driven by its own StreamingPTrack."""
    results = []
    for w in workloads:
        sess = StreamingPTrack(100.0, profile=w.profile)
        steps, strides = [], []
        for off in range(0, w.samples.shape[0], batch):
            st, sr = sess.append(w.samples[off : off + batch])
            steps.extend(st)
            strides.extend(sr)
        st, sr = sess.flush()
        steps.extend(st)
        strides.extend(sr)
        results.append((steps, strides))
    return results


def _serve_pooled(workloads, batch=50):
    """Same sessions behind one SessionPool ingest call per tick."""
    pool = SessionPool(100.0)
    sids = pool.add_sessions([w.profile for w in workloads])
    results = [([], []) for _ in sids]
    longest = max(w.samples.shape[0] for w in workloads)
    for off in range(0, longest, batch):
        live = [k for k, w in enumerate(workloads) if off < w.samples.shape[0]]
        out = pool.append(
            [sids[k] for k in live],
            [workloads[k].samples[off : off + batch] for k in live],
        )
        for k, (st, sr) in zip(live, out):
            results[k][0].extend(st)
            results[k][1].extend(sr)
    for k, (st, sr) in enumerate(pool.flush(sids)):
        results[k][0].extend(st)
        results[k][1].extend(sr)
    return results


def _signature(steps, strides):
    """Exact identity key of one session's credited output."""
    return (
        [(e.index, e.time) for e in steps],
        [(e.time, e.length_m) for e in strides],
    )


@pytest.fixture(scope="module")
def small_fleet():
    return synthesize_workload(4, 25.0, seed=11)


class TestSessionPool:
    def test_pooled_identical_to_serial(self, small_fleet):
        serial = _serve_serially(small_fleet)
        pooled = _serve_pooled(small_fleet)
        for (s_steps, s_strides), (p_steps, p_strides) in zip(serial, pooled):
            assert _signature(s_steps, s_strides) == _signature(
                p_steps, p_strides
            )
        assert all(len(s) > 0 for s, _ in serial)

    def test_partial_fleet_appends(self, small_fleet):
        # A session that only uploads on some ticks must behave exactly
        # like a solo session fed the same batches.
        w = small_fleet[0]
        pool = SessionPool(100.0)
        busy = pool.add_session(w.profile)
        idle = pool.add_session()
        solo = StreamingPTrack(100.0, profile=w.profile)
        steps_pool, steps_solo = [], []
        for off in range(0, w.samples.shape[0], 100):
            batch = w.samples[off : off + 100]
            (st_p, _), = pool.append([busy], [batch])
            st_s, _ = solo.append(batch)
            steps_pool.extend(st_p)
            steps_solo.extend(st_s)
        assert [e.index for e in steps_pool] == [e.index for e in steps_solo]
        assert pool.step_count(idle) == 0
        assert pool.step_count(busy) == pool.total_steps

    def test_totals_aggregate_sessions(self, small_fleet):
        pool = SessionPool(100.0)
        sids = pool.add_sessions([w.profile for w in small_fleet])
        for sid, w in zip(sids, small_fleet):
            pool.append([sid], [w.samples])
        pool.flush()
        assert pool.total_steps == sum(pool.step_count(s) for s in sids)
        assert pool.total_distance_m == pytest.approx(
            sum(pool.distance_m(s) for s in sids)
        )
        assert pool.n_sessions == len(sids)
        assert pool.session_ids == sids

    def test_reset_session_reuses_buffers(self, small_fleet):
        w = small_fleet[1]
        pool = SessionPool(100.0)
        sid = pool.add_session(w.profile)
        pool.append([sid], [w.samples])
        pool.flush([sid])
        first = pool.step_count(sid)
        buf = pool.session(sid)._data
        pool.reset_session(sid)
        assert pool.step_count(sid) == 0
        assert pool.session(sid)._data is buf
        pool.append([sid], [w.samples])
        pool.flush([sid])
        assert pool.step_count(sid) == first

    def test_rejects_mismatched_lengths(self):
        pool = SessionPool(100.0)
        sid = pool.add_session()
        with pytest.raises(ConfigurationError):
            pool.append([sid], [np.zeros((10, 3)), np.zeros((10, 3))])

    def test_rejects_unknown_session(self):
        pool = SessionPool(100.0)
        with pytest.raises(ConfigurationError):
            pool.append([99], [np.zeros((10, 3))])


class TestServeFleet:
    def test_sharded_identical_to_serial(self, small_fleet):
        serial = _serve_serially(small_fleet)
        report = serve_fleet(
            [w.samples for w in small_fleet],
            100.0,
            profiles=[w.profile for w in small_fleet],
            workers=2,
            sessions_per_shard=2,
        )
        assert len(report.sessions) == len(small_fleet)
        for k, (steps, strides) in enumerate(serial):
            sess = report.sessions[k]
            assert sess.session_index == k
            assert _signature(steps, strides) == _signature(
                list(sess.steps), list(sess.strides)
            )

    def test_shard_layout_cannot_change_results(self, small_fleet):
        traces = [w.samples for w in small_fleet]
        profiles = [w.profile for w in small_fleet]
        per_one = serve_fleet(
            traces, 100.0, profiles=profiles, workers=1, sessions_per_shard=1
        )
        one_shard = serve_fleet(
            traces, 100.0, profiles=profiles, workers=1,
            sessions_per_shard=len(small_fleet),
        )
        for a, b in zip(per_one.sessions, one_shard.sessions):
            assert _signature(list(a.steps), list(a.strides)) == _signature(
                list(b.steps), list(b.strides)
            )
        assert per_one.total_steps == one_shard.total_steps

    def test_report_aggregates(self, small_fleet):
        report = serve_fleet(
            [w.samples for w in small_fleet],
            100.0,
            profiles=[w.profile for w in small_fleet],
            workers=1,
        )
        assert report.n_samples == sum(
            w.samples.shape[0] for w in small_fleet
        )
        assert report.total_steps == sum(
            s.step_count for s in report.sessions
        )
        assert report.total_distance_m == pytest.approx(
            sum(s.distance_m for s in report.sessions)
        )
        # Steps land near the simulator's ground truth fleet-wide.
        truth = sum(w.true_steps for w in small_fleet)
        assert report.total_steps == pytest.approx(truth, abs=2 * len(small_fleet))

    def test_empty_fleet(self):
        report = serve_fleet([], 100.0)
        assert report.sessions == () and report.n_samples == 0
        assert report.total_steps == 0 and report.total_distance_m == 0.0

    def test_rejects_bad_arguments(self, small_fleet):
        traces = [w.samples for w in small_fleet]
        with pytest.raises(ConfigurationError):
            serve_fleet(traces, 100.0, profiles=[None])
        with pytest.raises(ConfigurationError):
            serve_fleet(traces, 100.0, batch_samples=0)
        with pytest.raises(ConfigurationError):
            serve_fleet(traces, 100.0, sessions_per_shard=0)


class TestWorkloadSynthesis:
    def test_deterministic(self):
        a = synthesize_workload(3, 12.0, seed=5)
        b = synthesize_workload(3, 12.0, seed=5)
        for wa, wb in zip(a, b):
            assert np.array_equal(wa.samples, wb.samples)
            assert wa.true_steps == wb.true_steps

    def test_session_is_function_of_seed_and_index(self):
        # Session i's walk must not depend on the fleet size, so that
        # scaling benchmarks grow the fleet without perturbing the
        # sessions already in it.
        small = synthesize_workload(2, 12.0, seed=5)
        large = synthesize_workload(5, 12.0, seed=5)
        for ws, wl in zip(small, large):
            assert np.array_equal(ws.samples, wl.samples)

    def test_seed_changes_workload(self):
        a = synthesize_workload(2, 12.0, seed=5)
        b = synthesize_workload(2, 12.0, seed=6)
        assert not np.array_equal(a[0].samples, b[0].samples)

    def test_samples_ready_for_ingest(self):
        (w,) = synthesize_workload(1, 12.0, seed=0)
        assert w.samples.dtype == np.float64
        assert w.samples.ndim == 2 and w.samples.shape[1] == 3
        assert w.true_steps > 0 and w.true_distance_m > 0.0
        # Directly ingestible: no dtype/shape conversion needed.
        sess = StreamingPTrack(100.0, profile=w.profile)
        sess.append(w.samples)
        sess.flush()
        assert sess.step_count > 0
