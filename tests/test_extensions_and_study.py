"""Tests for the study protocol, extension experiments, the
lag-corrected bounce primitives and stride imputation."""

import numpy as np
import pytest

from repro.core.bounce import (
    body_phase_factors,
    extract_cycle_moments,
    solve_bounce_lag_corrected,
)
from repro.exceptions import GeometryError
from repro.experiments import extensions, study


class TestLagCorrectedPrimitives:
    def _forward(self, b, r1, r2, m, g1, g2):
        h1 = r1 - g1 * b
        h2 = r2 - g2 * b
        d = np.sqrt(m**2 - (m - r1) ** 2) + np.sqrt(m**2 - (m - r2) ** 2)
        return h1, h2, d

    @pytest.mark.parametrize("g", [(1.0, 1.0), (0.8, 0.9), (0.5, 0.6)])
    def test_round_trip_with_known_factors(self, g):
        g1, g2 = g
        m, b = 0.6, 0.06
        h1, h2, d = self._forward(b, 0.09, 0.12, m, g1, g2)
        assert solve_bounce_lag_corrected(h1, h2, d, m, g1, g2) == pytest.approx(
            b, abs=1e-6
        )

    def test_reduces_to_paper_solve_at_unity(self):
        from repro.core.bounce import solve_bounce

        m, b = 0.6, 0.05
        h1, h2, d = self._forward(b, 0.08, 0.1, m, 1.0, 1.0)
        assert solve_bounce_lag_corrected(
            h1, h2, d, m, 1.0, 1.0
        ) == pytest.approx(solve_bounce(h1, h2, d, m), abs=1e-9)

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(GeometryError):
            solve_bounce_lag_corrected(0.01, 0.01, 0.3, 0.6, 0.0, 1.0)

    def test_body_phase_factors_aligned_case(self):
        # Arm moments exactly at heel strike / mid-stance / heel strike
        # -> full bounce traversed in both halves.
        from repro.core.bounce import CycleMoments

        moments = CycleMoments(
            backmost_index=0,
            vertical_index=25,
            foremost_index=50,
            h1_m=0.0,
            h2_m=0.0,
            d_m=0.3,
            d1_m=0.15,
            d2_m=0.15,
        )
        g1, g2 = body_phase_factors(moments, (0, 50))
        assert g1 == pytest.approx(1.0)
        assert g2 == pytest.approx(1.0)

    def test_body_phase_factors_lagged_case(self):
        from repro.core.bounce import CycleMoments

        moments = CycleMoments(
            backmost_index=5,
            vertical_index=30,
            foremost_index=55,
            h1_m=0.0,
            h2_m=0.0,
            d_m=0.3,
            d1_m=0.15,
            d2_m=0.15,
        )
        g1, g2 = body_phase_factors(moments, (0, 50))
        assert 0.05 <= g1 < 1.0
        assert 0.05 <= g2 < 1.0

    def test_body_phase_factors_rejects_bad_peaks(self):
        from repro.core.bounce import CycleMoments

        moments = CycleMoments(0, 10, 20, 0.0, 0.0, 0.3, 0.15, 0.15)
        with pytest.raises(GeometryError):
            body_phase_factors(moments, (10, 10))


class TestStrideImputation:
    def test_distance_covers_all_counted_steps(self, user):
        """Every counted step carries a stride (solved or imputed)."""
        from repro.core.pipeline import PTrack
        from repro.simulation.routes import paper_route, walk_route

        rng = np.random.default_rng(59)
        trace, _ = walk_route(user, paper_route(), rng=rng)
        result = PTrack(profile=user.profile).track(trace)
        assert len(result.strides) >= 0.95 * result.step_count

    def test_imputed_strides_flagged(self, user):
        from repro.core.pipeline import PTrack
        from repro.simulation.routes import paper_route, walk_route

        rng = np.random.default_rng(59)
        trace, _ = walk_route(user, paper_route(), rng=rng)
        result = PTrack(profile=user.profile).track(trace)
        imputed = [s for s in result.strides if s.bounce_m is None]
        solved = [s for s in result.strides if s.bounce_m is not None]
        assert solved  # the bulk is genuinely solved
        if imputed:
            median = float(np.median([s.length_m for s in solved]))
            for s in imputed:
                assert s.length_m == pytest.approx(median)


class TestStudy:
    def test_daily_session_structure(self, user, rng):
        session = study.daily_session(user, rng, scale=0.4)
        kinds = {s.kind for s in session.segments}
        assert len(session.segments) >= 8
        assert session.true_step_count > 50
        from repro.types import ActivityKind

        assert ActivityKind.WALKING in kinds
        assert ActivityKind.STEPPING in kinds
        assert ActivityKind.EATING in kinds

    def test_run_study_small(self):
        results, table = study.run_study(n_users=1, n_days=1, scale=0.4)
        by_name = {r.counter: r for r in results}
        assert set(by_name) == {"gfit", "mtage", "autocorr", "scar", "ptrack"}
        assert by_name["ptrack"].error_rate < 0.08
        assert by_name["gfit"].error_rate > by_name["ptrack"].error_rate
        assert "error rate" in table.render()


class TestExtensions:
    def test_counter_design_space_small(self):
        counts, _ = extensions.run_counter_design_space(duration_s=45.0)
        assert counts[("ptrack", "walking")] > 60
        assert counts[("ptrack", "gait-band spoofer")] <= 3
        assert counts[("periodicity", "gait-band spoofer")] > 30

    def test_adaptive_delta_helps(self):
        summary, _ = extensions.run_adaptive_delta(n_sessions=4)
        fixed_err = abs(summary["fixed"] - summary["true"]) / summary["true"]
        adaptive_err = abs(summary["adaptive"] - summary["true"]) / summary["true"]
        assert adaptive_err <= fixed_err

    def test_inertial_navigation_small(self):
        results, _ = extensions.run_inertial_navigation(seed=30)
        assert results["inertial_final_m"] < 15.0
