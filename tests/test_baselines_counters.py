"""Unit tests for repro.baselines.{peak_counter,montage}."""

import numpy as np
import pytest

from repro.baselines.montage import MontageTracker
from repro.baselines.peak_counter import PeakStepCounter
from repro.exceptions import ConfigurationError, SignalError
from repro.types import UserProfile


class TestPeakStepCounter:
    def test_counts_walking_steps(self, walk_trace):
        trace, truth = walk_trace
        counted = PeakStepCounter.gfit().count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=0.1 * truth.step_count)

    def test_counts_interference_too(self, eating_trace):
        # The design flaw under study: a peak counter ticks on gestures.
        assert PeakStepCounter.gfit().count_steps(eating_trace) > 10

    def test_counts_spoofer(self, spoof_trace):
        assert PeakStepCounter.gfit().count_steps(spoof_trace) > 40

    def test_silent_on_idle(self, rng):
        from repro.simulation.activities import simulate_interference
        from repro.types import ActivityKind

        trace = simulate_interference(ActivityKind.IDLE, 30.0, rng=rng)
        assert PeakStepCounter.gfit().count_steps(trace) == 0

    def test_step_times_match_indices(self, walk_trace):
        trace, _ = walk_trace
        counter = PeakStepCounter.gfit()
        times = counter.step_times(trace)
        indices = counter.step_indices(trace)
        assert len(times) == len(indices)
        assert times == sorted(times)

    def test_profiles_differ(self, eating_trace):
        strict = PeakStepCounter.coprocessor().count_steps(eating_trace)
        loose = PeakStepCounter.software().count_steps(eating_trace)
        assert loose >= strict

    def test_vertical_mode(self, walk_trace):
        trace, truth = walk_trace
        counter = PeakStepCounter(use_magnitude=False)
        counted = counter.count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=0.15 * truth.step_count)

    def test_refractory_period_limits_rate(self, walk_trace):
        trace, _ = walk_trace
        counter = PeakStepCounter(min_step_interval_s=0.30)
        indices = counter.step_indices(trace)
        gaps = np.diff(indices) * trace.dt
        assert np.all(gaps >= 0.30 - 1e-9)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            PeakStepCounter(cutoff_hz=0.0)
        with pytest.raises(ConfigurationError):
            PeakStepCounter(min_step_interval_s=3.0, max_step_interval_s=2.0)


class TestMontageTracker:
    def test_counts_walking(self, walk_trace):
        trace, truth = walk_trace
        counted = MontageTracker().count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=0.1 * truth.step_count)

    def test_strides_on_body_accurate(self, user):
        # Montage's home turf: the device rigid with the body.
        from repro.simulation.walker import simulate_walk

        trace, truth = simulate_walk(
            user, 30.0, rng=np.random.default_rng(0), arm_mode="none"
        )
        tracker = MontageTracker(profile=user.profile)
        strides = tracker.estimate_strides(trace)
        errors = np.abs(np.array([s.length_m for s in strides]) - user.stride_m)
        assert np.mean(errors) < 0.08

    def test_strides_on_wrist_degrade(self, user, walk_trace):
        # The paper's point: wrist wear breaks the body-attachment
        # assumption and Montage's stride error grows.
        trace, _ = walk_trace
        tracker = MontageTracker(profile=user.profile)
        wrist_err = np.mean(
            np.abs(
                np.array([s.length_m for s in tracker.estimate_strides(trace)])
                - user.stride_m
            )
        )
        from repro.simulation.walker import simulate_walk

        body_trace, _ = simulate_walk(
            user, 30.0, rng=np.random.default_rng(0), arm_mode="none"
        )
        body_err = np.mean(
            np.abs(
                np.array(
                    [s.length_m for s in tracker.estimate_strides(body_trace)]
                )
                - user.stride_m
            )
        )
        assert wrist_err > 1.5 * body_err

    def test_distance_sums_strides(self, user, walk_trace):
        tracker = MontageTracker(profile=user.profile)
        strides = tracker.estimate_strides(walk_trace[0])
        assert tracker.distance_m(walk_trace[0]) == pytest.approx(
            sum(s.length_m for s in strides)
        )

    def test_stride_needs_profile(self, walk_trace):
        with pytest.raises(SignalError):
            MontageTracker().estimate_strides(walk_trace[0])

    def test_counting_needs_no_profile(self, walk_trace):
        assert MontageTracker().count_steps(walk_trace[0]) > 0
