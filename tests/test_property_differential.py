"""Differential and round-trip property tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import PTrack
from repro.core.streaming import StreamingPTrack
from repro.sensing.io import load_session, save_session
from repro.simulation.profiles import SimulatedUser
from repro.simulation.scenarios import SessionBuilder
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind, Posture

slow = settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_user = SimulatedUser()
_trace, _truth = simulate_walk(_user, 35.0, rng=np.random.default_rng(2024))
_batch_result = PTrack(profile=_user.profile).track(_trace)


@slow
@given(st.lists(st.integers(min_value=20, max_value=800), min_size=3, max_size=12))
def test_streaming_equals_batch_for_any_batching(batch_sizes):
    """The online driver's totals match the batch pipeline no matter
    how the stream is chopped into append() calls."""
    streamer = StreamingPTrack(
        _trace.sample_rate_hz, profile=_user.profile
    )
    data = _trace.linear_acceleration
    position = 0
    i = 0
    while position < data.shape[0]:
        size = batch_sizes[i % len(batch_sizes)]
        streamer.append(data[position : position + size])
        position += size
        i += 1
    streamer.flush()
    assert abs(streamer.step_count - _batch_result.step_count) <= 2
    assert streamer.distance_m == pytest.approx(
        _batch_result.distance_m, rel=0.1
    )


_SEGMENT_KINDS = st.sampled_from(
    ["walk", "step", "eating", "poker", "idle"]
)


@slow
@given(
    st.lists(_SEGMENT_KINDS, min_size=1, max_size=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_session_io_round_trip_any_mix(kinds, seed):
    """Any mixed session survives save/load exactly (truth included)."""
    import tempfile
    import pathlib

    rng = np.random.default_rng(seed)
    builder = SessionBuilder(_user, rng=rng)
    for kind in kinds:
        if kind == "walk":
            builder.walk(8.0)
        elif kind == "step":
            builder.step(8.0)
        elif kind == "eating":
            builder.interfere(ActivityKind.EATING, 8.0, posture=Posture.SEATED)
        elif kind == "poker":
            builder.interfere(ActivityKind.POKER, 8.0)
        else:
            builder.idle(8.0)
    session = builder.build()

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "session.npz"
        save_session(path, session)
        loaded = load_session(path)

    assert loaded.true_step_count == session.true_step_count
    assert loaded.true_distance_m == pytest.approx(session.true_distance_m)
    assert [s.kind for s in loaded.segments] == [
        s.kind for s in session.segments
    ]
    assert np.allclose(
        loaded.trace.linear_acceleration, session.trace.linear_acceleration
    )
    assert np.allclose(loaded.true_step_times, session.true_step_times)


@slow
@given(st.floats(min_value=25.0, max_value=400.0))
def test_resample_round_trip_counts(rate):
    """Counting is rate-invariant through resampling (within the band
    the rate ablation covers).

    Below ~30 Hz quantisation erodes a few genuinely-walking cycles'
    critical-point offsets under the admission threshold and counting
    degrades — a known, pinned behaviour (the paper's own ablation
    reports the same floor). The asymmetric band admits that pinned
    undercount (worst case 56/66 at 27.6875 Hz, see
    ``tests/test_low_rate_resample_regression.py``) while still
    rejecting any new overcount or a deeper undercount.
    """
    from repro.core.step_counter import PTrackStepCounter
    from repro.signal.resample import resample_trace

    converted = resample_trace(_trace, float(rate))
    counted = PTrackStepCounter().count_steps(converted)
    if rate >= 30.0:
        assert counted == pytest.approx(_truth.step_count, abs=5)
    else:
        assert _truth.step_count - 11 <= counted <= _truth.step_count + 5
