"""Unit tests for repro.apps.{deadreckoning,fitness}."""

import numpy as np
import pytest

from repro.apps.deadreckoning import DeadReckoner, navigate_route
from repro.apps.fitness import FitnessTracker
from repro.core.pipeline import PTrack
from repro.exceptions import ConfigurationError
from repro.simulation.routes import paper_route, walk_route
from repro.types import ActivityKind, Posture


class TestDeadReckoner:
    def test_requires_profile(self):
        with pytest.raises(ConfigurationError):
            DeadReckoner(PTrack())

    def test_rejects_negative_noise(self, user):
        with pytest.raises(ConfigurationError):
            DeadReckoner(PTrack(profile=user.profile), heading_noise_rad=-0.1)

    def test_straight_walk_reckons_forward(self, user, walk_trace):
        trace, truth = walk_trace
        reckoner = DeadReckoner(PTrack(profile=user.profile), heading_noise_rad=0.0)
        positions, result = reckoner.reckon(trace, truth.headings_rad)
        assert positions.shape[0] == len(result.strides)
        # Heading 0: the path must advance along +x and stay near y=0.
        assert positions[-1, 0] == pytest.approx(
            truth.total_distance_m, rel=0.1
        )
        assert abs(positions[-1, 1]) < 2.0

    def test_heading_shape_checked(self, user, walk_trace):
        reckoner = DeadReckoner(PTrack(profile=user.profile))
        with pytest.raises(ConfigurationError):
            reckoner.reckon(walk_trace[0], np.zeros(5))


class TestNavigateRoute:
    @pytest.fixture(scope="class")
    def navigation(self, user):
        route = paper_route()
        rng = np.random.default_rng(11)
        trace, truth = walk_route(user, route, rng=rng)
        tracker = PTrack(profile=user.profile)
        report = navigate_route(tracker, trace, truth, route, rng=rng)
        return route, truth, report

    def test_tracked_distance_near_route(self, navigation):
        route, truth, report = navigation
        assert report.tracked_distance_m == pytest.approx(
            route.total_length_m, rel=0.1
        )

    def test_position_errors_bounded(self, navigation):
        _, _, report = navigation
        assert report.mean_position_error_m < 10.0
        assert report.final_error_m < 20.0

    def test_positions_one_per_stride(self, navigation):
        _, _, report = navigation
        assert report.positions_m.shape == (report.step_times.size, 2)


class TestFitnessTracker:
    def test_aggregates_mixed_day(self, user):
        from repro.simulation.scenarios import SessionBuilder

        tracker = FitnessTracker(PTrack(profile=user.profile))
        rng = np.random.default_rng(21)
        morning = (
            SessionBuilder(user, rng=rng).walk(20.0).interfere(
                ActivityKind.EATING, 30.0, posture=Posture.SEATED
            ).build()
        )
        evening = SessionBuilder(user, rng=rng).step(20.0).build()
        tracker.add_session(morning.trace)
        tracker.add_session(evening.trace)
        report = tracker.report()

        true_steps = morning.true_step_count + evening.true_step_count
        assert report.total_steps == pytest.approx(true_steps, abs=0.1 * true_steps)
        assert report.sessions == 2
        assert report.active_time_s == pytest.approx(
            morning.trace.duration_s + evening.trace.duration_s
        )
        assert report.walking_steps > 0
        assert report.stepping_steps > 0
        assert report.distance_m > 0
        assert 0.3 < report.average_stride_m < 1.2

    def test_interference_only_day_reports_rejections(self, user):
        from repro.simulation.scenarios import SessionBuilder

        tracker = FitnessTracker(PTrack(profile=user.profile))
        session = (
            SessionBuilder(user, rng=np.random.default_rng(22))
            .interfere(ActivityKind.POKER, 60.0)
            .build()
        )
        tracker.add_session(session.trace)
        report = tracker.report()
        assert report.total_steps <= 4
        assert report.rejected_cycles > 5

    def test_reset(self, user, walk_trace):
        tracker = FitnessTracker(PTrack(profile=user.profile))
        tracker.add_session(walk_trace[0])
        tracker.reset()
        report = tracker.report()
        assert report.total_steps == 0
        assert report.sessions == 0

    def test_empty_report(self, user):
        report = FitnessTracker(PTrack(profile=user.profile)).report()
        assert report.total_steps == 0
        assert report.average_stride_m == 0.0
