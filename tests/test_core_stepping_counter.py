"""Unit tests for repro.core.{stepping,step_counter}."""

import numpy as np
import pytest

from repro.core.config import PTrackConfig
from repro.core.step_counter import PTrackStepCounter
from repro.core.stepping import has_fixed_phase_difference, stepping_correlation
from repro.exceptions import SignalError
from repro.types import GaitType


class TestSteppingCorrelation:
    def test_stepping_cycle_positive(self):
        # Anterior acceleration repeating per step (2 per cycle).
        t = np.linspace(0, 1, 100, endpoint=False)
        assert stepping_correlation(np.sin(4 * np.pi * t)) > 0.9

    def test_gesture_cycle_negative(self):
        t = np.linspace(0, 1, 100, endpoint=False)
        assert stepping_correlation(np.sin(2 * np.pi * t)) < -0.9


class TestFixedPhaseDifference:
    def _axes(self, phase):
        t = np.linspace(0, 1, 120, endpoint=False)
        v = np.cos(4 * np.pi * t)
        a = np.cos(4 * np.pi * t + phase)
        return v, a

    def test_quarter_period_accepted(self, config):
        v, a = self._axes(np.pi / 2)
        ok, frac = has_fixed_phase_difference(v, a, config)
        assert ok
        assert min(abs(frac - 0.25), abs(frac - 0.75)) < config.phase_difference_tolerance

    def test_mirrored_quarter_accepted(self, config):
        v, a = self._axes(-np.pi / 2)
        ok, _ = has_fixed_phase_difference(v, a, config)
        assert ok

    def test_in_phase_rejected(self, config):
        v, a = self._axes(0.0)
        ok, _ = has_fixed_phase_difference(v, a, config)
        assert not ok

    def test_anti_phase_rejected(self, config):
        v, a = self._axes(np.pi)
        ok, _ = has_fixed_phase_difference(v, a, config)
        assert not ok

    def test_rejects_mismatch(self, config):
        with pytest.raises(SignalError):
            has_fixed_phase_difference(np.zeros(10), np.zeros(12), config)


class TestStepCounterWalking:
    def test_walking_accuracy(self, ptrack_counter, walk_trace):
        trace, truth = walk_trace
        counted = ptrack_counter.count_steps(trace)
        assert abs(counted - truth.step_count) <= max(2, 0.04 * truth.step_count)

    def test_nearly_all_cycles_classified_walking(self, ptrack_counter, walk_trace):
        _, classifications = ptrack_counter.process(walk_trace[0])
        walking = [c for c in classifications if c.gait_type is GaitType.WALKING]
        assert len(walking) >= 0.95 * len(classifications)

    def test_steps_sorted_and_typed(self, ptrack_counter, walk_trace):
        steps, _ = ptrack_counter.process(walk_trace[0])
        times = [s.time for s in steps]
        assert times == sorted(times)
        assert all(s.gait_type is GaitType.WALKING for s in steps)

    def test_offsets_recorded_above_threshold(self, ptrack_counter, walk_trace):
        _, classifications = ptrack_counter.process(walk_trace[0])
        cfg = ptrack_counter.config
        for c in classifications:
            if c.gait_type is GaitType.WALKING:
                assert c.offset > cfg.offset_threshold


class TestStepCounterStepping:
    def test_stepping_accuracy(self, ptrack_counter, stepping_trace):
        trace, truth = stepping_trace
        counted = ptrack_counter.count_steps(trace)
        assert abs(counted - truth.step_count) <= max(2, 0.05 * truth.step_count)

    def test_cycles_classified_stepping(self, ptrack_counter, stepping_trace):
        _, classifications = ptrack_counter.process(stepping_trace[0])
        stepping = [c for c in classifications if c.gait_type is GaitType.STEPPING]
        assert len(stepping) >= 0.9 * len(classifications)

    def test_stepping_has_positive_correlation(self, ptrack_counter, stepping_trace):
        _, classifications = ptrack_counter.process(stepping_trace[0])
        for c in classifications:
            if c.gait_type is GaitType.STEPPING:
                assert c.half_cycle_correlation > 0

    def test_consecutive_requirement_buffers_start(self, stepping_trace):
        # With a huge consecutive requirement, nothing is ever credited.
        counter = PTrackStepCounter(PTrackConfig(stepping_consecutive=10_000))
        assert counter.count_steps(stepping_trace[0]) == 0


class TestStepCounterInterference:
    def test_swinging_rejected(self, ptrack_counter, swinging_trace):
        assert ptrack_counter.count_steps(swinging_trace) == 0

    def test_eating_rejected(self, ptrack_counter, eating_trace):
        assert ptrack_counter.count_steps(eating_trace) <= 4

    def test_spoofer_rejected(self, ptrack_counter, spoof_trace):
        assert ptrack_counter.count_steps(spoof_trace) == 0

    def test_idle_produces_nothing(self, ptrack_counter, rng):
        from repro.simulation.activities import simulate_interference
        from repro.types import ActivityKind

        trace = simulate_interference(ActivityKind.IDLE, 30.0, rng=rng)
        assert ptrack_counter.count_steps(trace) == 0

    def test_classifications_cover_all_candidates(self, ptrack_counter, eating_trace):
        _, classifications = ptrack_counter.process(eating_trace)
        ids = [c.cycle_id for c in classifications]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))


class TestStepCounterMixed:
    def test_mixed_session(self, user, ptrack_counter):
        from repro.simulation.scenarios import SessionBuilder
        from repro.types import ActivityKind, Posture

        session = (
            SessionBuilder(user, rng=np.random.default_rng(55))
            .walk(20.0)
            .interfere(ActivityKind.POKER, 30.0, posture=Posture.SEATED)
            .step(20.0)
            .build()
        )
        counted = ptrack_counter.count_steps(session.trace)
        true = session.true_step_count
        assert abs(counted - true) <= max(6, 0.12 * true)
