"""Arrival-order fuzzing for the ingest gateway.

The gateway's contract: credits are a pure function of each session's
*delivered* sample stream — bit-identical to a serial replay of the
delivered batches in sequence order, for **any** arrival schedule.
Hypothesis drives the schedule space (burst sizes, quiet gaps,
reorderings within a session's window, disconnects, staggered joins)
and every example is checked against the serial oracle; the
differential profiles additionally pin the whole driver stack to one
answer: ``serial == pooled == batched == gateway`` (and ``== sharded``
in the slow profile). The pool-kill profile extends the contract to
durability: killing the backing pool mid-schedule and adopting one
restored from its ``ptrack-session-v1`` snapshot must leave the
credits equal to the uninterrupted serial replay.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.streaming import StreamingPTrack
from repro.serving import (
    BatchedSessionPool,
    IngestGateway,
    SessionPool,
    serve_fleet,
    serve_schedule,
    synthesize_arrival_schedule,
    synthesize_workload,
)
from repro.telemetry import MetricsRegistry

RATE = 100.0

fuzz = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
fuzz_heavy = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# One fleet for the whole module: the schedules vary, the walks do not.
_FLEET = synthesize_workload(3, 20.0, seed=2024)
_TRACES = [w.samples for w in _FLEET]
_PROFILES = [w.profile for w in _FLEET]
_LENGTHS = [t.shape[0] for t in _TRACES]


#: A ragged arrival process: every structural knob hypothesis can turn.
schedules = st.builds(
    lambda seed, batch, burst_lo, burst_span, quiet_hi, disc, reorder,
    join: synthesize_arrival_schedule(
        _LENGTHS,
        seed=seed,
        batch_samples=batch,
        burst_batches=(burst_lo, burst_lo + burst_span),
        quiet_ticks=(0, quiet_hi),
        disconnect_prob=disc,
        reorder_prob=reorder,
        join_spread_ticks=join,
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    batch=st.integers(min_value=32, max_value=512),
    burst_lo=st.integers(min_value=1, max_value=3),
    burst_span=st.integers(min_value=0, max_value=3),
    quiet_hi=st.integers(min_value=0, max_value=3),
    disc=st.sampled_from([0.0, 0.1]),
    reorder=st.sampled_from([0.0, 0.25]),
    join=st.integers(min_value=0, max_value=5),
)


def _signature(steps, strides):
    return (
        [(e.index, e.time) for e in steps],
        [(e.time, e.length_m) for e in strides],
    )


def _serial(slices_by_session):
    """The oracle: one StreamingPTrack per session, delivered order."""
    out = {}
    for i, slices in slices_by_session.items():
        sess = StreamingPTrack(RATE, profile=_PROFILES[i])
        steps, strides = [], []
        for start, stop in slices:
            st_, sr = sess.append(_TRACES[i][start:stop])
            steps.extend(st_)
            strides.extend(sr)
        st_, sr = sess.flush()
        steps.extend(st_)
        strides.extend(sr)
        out[i] = _signature(steps, strides)
    return out


def _gateway(schedule, pool=None):
    gw = IngestGateway(
        RATE,
        pool=pool,
        reorder_window=max(8, schedule.max_seq_skew),
        telemetry=MetricsRegistry(),
    )
    credits = serve_schedule(gw, schedule, _TRACES, profiles=_PROFILES)
    return gw, {i: _signature(*c) for i, c in credits.items()}


def _lockstep(slices_by_session, pool):
    """The delivered streams through a lockstep pool, slice per tick."""
    items = sorted(slices_by_session.items())
    sids = {
        i: pool.add_session(_PROFILES[i]) for i, _ in items if _
    }
    acc = {i: ([], []) for i in sids}
    depth = max((len(s) for _, s in items), default=0)
    for k in range(depth):
        live = [i for i, slices in items if k < len(slices)]
        out = pool.append(
            [sids[i] for i in live],
            [
                _TRACES[i][slice(*dict(items)[i][k])]
                for i in live
            ],
        )
        for i, (st_, sr) in zip(live, out):
            acc[i][0].extend(st_)
            acc[i][1].extend(sr)
    for i, (st_, sr) in zip(
        sids, pool.flush([sids[i] for i in sids])
    ):
        acc[i][0].extend(st_)
        acc[i][1].extend(sr)
    return {i: _signature(*c) for i, c in acc.items()}


class TestArrivalOrderInvariance:
    @fuzz_heavy
    @given(schedule=schedules)
    def test_gateway_matches_serial_replay(self, schedule):
        """For any generated schedule: gateway == serial replay,
        nothing shed, everything delivered accounted."""
        gw, credits = _gateway(schedule)
        assert gw.stats.samples_shed == 0
        assert gw.stats.duplicates == 0
        assert gw.stats.samples_ingested == schedule.n_samples
        oracle = _serial(schedule.delivered_slices())
        assert credits == {i: s for i, s in oracle.items() if s != ([], [])}

    @fuzz
    @given(
        window=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_window_bounded_shuffle_is_invisible(self, window, seed):
        """Offering a session's batches in ANY order with seq skew <=
        reorder_window credits identically to in-order arrival."""
        trace = _TRACES[0]
        batches = [
            (k, trace[lo : lo + 256])
            for k, lo in enumerate(range(0, trace.shape[0], 256))
        ]
        # Windowed Fisher-Yates: repeatedly emit one of the first
        # window+1 remaining batches — every arrival is at most
        # `window` slots ahead of the in-order frontier.
        rng = np.random.default_rng(seed)
        remaining = list(batches)
        shuffled = []
        while remaining:
            j = int(rng.integers(0, min(window + 1, len(remaining))))
            shuffled.append(remaining.pop(j))

        def run(order):
            gw = IngestGateway(
                RATE, reorder_window=window, telemetry=MetricsRegistry()
            )
            sid = gw.add_session(_PROFILES[0])
            out = ([], [])
            for seq, batch in order:
                res = gw.offer(sid, batch, seq=seq)
                assert res.ok, res
                for _, (st_, sr) in gw.tick().items():
                    out[0].extend(st_)
                    out[1].extend(sr)
            for _, (st_, sr) in gw.flush().items():
                out[0].extend(st_)
                out[1].extend(sr)
            return _signature(*out)

        assert run(shuffled) == run(batches)

    @fuzz
    @given(schedule=schedules)
    def test_differential_serial_pooled_batched_gateway(self, schedule):
        """serial == pooled == batched == gateway on one schedule."""
        delivered = {
            i: s for i, s in schedule.delivered_slices().items() if s
        }
        oracle = _serial(delivered)
        pooled = _lockstep(delivered, SessionPool(RATE))
        batched = _lockstep(delivered, BatchedSessionPool(RATE))
        assert pooled == oracle
        assert batched == oracle
        _, gw_credits = _gateway(schedule)
        nonempty = {i: s for i, s in oracle.items() if s != ([], [])}
        assert gw_credits == nonempty
        _, gw_batched = _gateway(schedule, pool=BatchedSessionPool(RATE))
        assert gw_batched == nonempty

    @fuzz
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        capacity_s=st.sampled_from([2.0, 4.0]),
    )
    def test_shedding_is_deterministic(self, seed, capacity_s):
        """Under pressure, (seed, schedule, capacity) pins both the
        shed accounting and the credits, bit for bit."""
        schedule = synthesize_arrival_schedule(
            _LENGTHS,
            seed=seed,
            batch_samples=128,
            burst_batches=(2, 6),
            quiet_ticks=(0, 1),
        )

        def run():
            gw = IngestGateway(
                RATE, capacity_s=capacity_s, telemetry=MetricsRegistry()
            )
            credits = serve_schedule(
                gw, schedule, _TRACES, profiles=_PROFILES
            )
            return gw.stats.as_dict(), {
                i: _signature(*c) for i, c in credits.items()
            }

        stats_a, credits_a = run()
        stats_b, credits_b = run()
        assert stats_a == stats_b
        assert credits_a == credits_b
        assert (
            stats_a["samples_accepted"] + stats_a["samples_shed"]
            == schedule.n_samples
        )


def _gateway_with_pool_kill(schedule, cut_frac):
    """Replay a schedule tick by tick; partway through, kill the pool
    and adopt one restored from a pickled snapshot.

    The gateway's mailboxes survive the kill, so any samples still
    buffered for reordering at the cut must drain into the restored
    pool on the following ticks — the durability contract for the
    ingest path.
    """
    gw = IngestGateway(
        RATE,
        reorder_window=max(8, schedule.max_seq_skew),
        telemetry=MetricsRegistry(),
    )
    cut = max(1, int(cut_frac * schedule.n_ticks))
    sid_of = {}
    acc = {}
    for tick, events in enumerate(schedule.events):
        if tick == cut:
            blob = pickle.loads(pickle.dumps(gw.pool.snapshot()))
            gw.adopt_pool(SessionPool.from_snapshot(blob))
        for ev in events:
            if ev.session not in sid_of:
                sid_of[ev.session] = gw.add_session(_PROFILES[ev.session])
                acc[ev.session] = ([], [])
            res = gw.offer(
                sid_of[ev.session],
                _TRACES[ev.session][ev.start : ev.stop],
                seq=ev.seq,
            )
            assert res.ok, res
        reverse = {sid: i for i, sid in sid_of.items()}
        for sid, (s, r) in gw.tick().items():
            acc[reverse[sid]][0].extend(s)
            acc[reverse[sid]][1].extend(r)
    reverse = {sid: i for i, sid in sid_of.items()}
    for sid, (s, r) in gw.flush().items():
        acc[reverse[sid]][0].extend(s)
        acc[reverse[sid]][1].extend(r)
    return gw, {i: _signature(*c) for i, c in acc.items()}


class TestPoolKillRestore:
    @fuzz_heavy
    @given(
        schedule=schedules,
        cut_frac=st.sampled_from([0.1, 0.5, 0.9]),
    )
    def test_mid_schedule_pool_kill_matches_serial(self, schedule, cut_frac):
        """For any schedule and kill point: killing the pool mid-stream
        and restoring it from its snapshot leaves the credits equal to
        the uninterrupted serial replay — the mailboxes drain into the
        restored pool with arrival-order invariance intact."""
        gw, credits = _gateway_with_pool_kill(schedule, cut_frac)
        assert gw.stats.samples_shed == 0
        oracle = _serial(schedule.delivered_slices())
        assert credits == {i: s for i, s in oracle.items() if i in credits}
        for i, sig in oracle.items():
            if i not in credits:
                assert sig == ([], [])


@pytest.mark.slow
class TestFullStackDifferential:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(schedule=schedules)
    def test_serial_pooled_sharded_batched_gateway(self, schedule):
        """The full chain, sharded driver included: every driver in the
        repo credits the same delivered streams identically."""
        delivered = {
            i: s for i, s in schedule.delivered_slices().items() if s
        }
        oracle = _serial(delivered)
        pooled = _lockstep(delivered, SessionPool(RATE))
        batched = _lockstep(delivered, BatchedSessionPool(RATE))
        # Sharded: serve_fleet over the delivered streams (contiguous
        # concatenation — chunk-invariance makes the upload cadence
        # irrelevant).
        idx = sorted(delivered)
        report = serve_fleet(
            [
                np.concatenate(
                    [_TRACES[i][a:b] for a, b in delivered[i]], axis=0
                )
                for i in idx
            ],
            RATE,
            profiles=[_PROFILES[i] for i in idx],
            workers=2,
            sessions_per_shard=1,
        )
        sharded = {
            i: _signature(list(s.steps), list(s.strides))
            for i, s in zip(idx, report.sessions)
        }
        _, gateway = _gateway(schedule)
        nonempty = {i: s for i, s in oracle.items() if s != ([], [])}
        assert pooled == oracle
        assert batched == oracle
        assert sharded == oracle
        assert gateway == nonempty
