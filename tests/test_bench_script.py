"""Smoke tests for the tracked benchmark harness (scripts/bench.py)."""

import json
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_results(tmp_path_factory):
    """One --check run shared by every assertion in this module."""
    out = tmp_path_factory.mktemp("bench") / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench.py"), "--check",
         "--output", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return json.loads(out.read_text())


def test_check_mode_reports_all_sections(check_results):
    assert check_results["check_mode"] is True
    assert set(check_results) >= {
        "schema",
        "platform",
        "parallel",
        "kernels",
        "trace_cache",
        "macro",
    }


def test_kernel_sections_complete(check_results):
    kernels = check_results["kernels"]
    assert set(kernels) == {"zero_crossings", "offset_matching", "best_lag"}
    for section in kernels.values():
        assert section["scalar_s"] > 0 and section["vectorized_s"] > 0
        assert section["speedup"] == pytest.approx(
            section["scalar_s"] / section["vectorized_s"]
        )


def test_macro_results_identical_across_modes(check_results):
    macro = check_results["macro"]
    assert macro["identical_results"] is True
    assert macro["cache_misses"] == macro["n_seeds"]
    assert macro["cache_hits"] == macro["n_seeds"]


def test_parallel_pool_roundtrip(check_results):
    assert check_results["parallel"]["pool_roundtrip_ok"] is True
    assert check_results["parallel"]["available_workers"] >= 1


def test_checked_in_scoreboard_is_current_schema():
    scoreboard = json.loads((REPO_ROOT / "BENCH_PR1.json").read_text())
    assert scoreboard["schema"] == "ptrack-bench-v1"
    macro = scoreboard["macro"]
    assert macro["identical_results"] is True
    # The acceptance headline: the warm (memoized) study re-run beats
    # the seed-style serial loop by well over 3x.
    assert macro["speedup_warm"] >= 3.0


def test_revision_and_schema_stamped(check_results):
    assert check_results["schema"] == "ptrack-bench-v2"
    rev = check_results["git_revision"]
    assert rev == "unknown" or len(rev.split("-")[0]) == 40


def test_serving_sections_complete(check_results):
    serving = check_results["serving"]
    assert set(serving) == {
        "single_session",
        "amortized_append",
        "fleet_scaling",
    }
    single = serving["single_session"]
    assert single["headline_speedup"] > 0
    assert all(r["speedup"] > 0 for r in single["cadences"])
    amort = serving["amortized_append"]
    assert amort["work_counters_cadence_invariant"] is True
    fleet = serving["fleet_scaling"]
    assert fleet["identity_serial_pooled_sharded"] is True
    assert all(r["samples_per_s"] > 0 for r in fleet["scaling"])


def test_telemetry_sections_complete(check_results):
    telemetry = check_results["telemetry"]
    assert set(telemetry) == {"instrumented_overhead", "fleet_merge"}
    overhead = telemetry["instrumented_overhead"]
    assert overhead["identical_credits"] is True
    assert overhead["plain_s"] > 0 and overhead["instrumented_s"] > 0
    merge = telemetry["fleet_merge"]
    assert merge["counters_invariant"] is True
    assert merge["total_steps"] > 0


def test_pr5_scoreboard_meets_acceptance():
    scoreboard = json.loads((REPO_ROOT / "BENCH_PR5.json").read_text())
    assert scoreboard["schema"] == "ptrack-bench-v2"
    telemetry = scoreboard["telemetry"]
    # Acceptance headline: telemetry on the clean streaming path stays
    # under the 5% budget with bit-identical credits, and the merged
    # fleet counters are shard/worker invariant.
    overhead = telemetry["instrumented_overhead"]
    assert overhead["duration_s"] >= 300.0
    assert overhead["identical_credits"] is True
    assert overhead["overhead_ok"] is True
    assert overhead["overhead_frac"] < 0.05
    merge = telemetry["fleet_merge"]
    assert merge["counters_invariant"] is True


def test_pr3_scoreboard_meets_acceptance():
    scoreboard = json.loads((REPO_ROOT / "BENCH_PR3.json").read_text())
    assert scoreboard["schema"] == "ptrack-bench-v2"
    serving = scoreboard["serving"]
    # Acceptance headline: >= 5x single-session streaming throughput
    # over the pre-PR reprocessing driver on a 10-minute trace.
    single = serving["single_session"]
    assert single["duration_s"] >= 600.0
    assert single["headline_speedup"] >= 5.0
    # Near-flat amortised per-append cost across an 8x cadence sweep.
    amort = serving["amortized_append"]
    assert amort["work_counters_cadence_invariant"] is True
    assert amort["wall_spread"] <= 2.5
    # Fleet scaling reaches 1000 sessions with identity asserted.
    fleet = serving["fleet_scaling"]
    assert fleet["max_sessions"] >= 1000
    assert fleet["identity_serial_pooled_sharded"] is True


def test_fleet_batch_sections_complete(check_results):
    fleet_batch = check_results["fleet_batch"]
    assert set(fleet_batch) == {
        "check_mode",
        "identity",
        "batched_vs_lockstep",
        "occupancy",
        "backends",
    }
    assert fleet_batch["identity"]["ok"] is True
    headline = fleet_batch["batched_vs_lockstep"]
    assert headline["batched_us_per_sample"] > 0
    assert headline["lockstep_us_per_sample"] > 0
    assert all(r["samples_per_s"] > 0 for r in fleet_batch["occupancy"]["rows"])
    statuses = {r["backend"]: r["status"] for r in fleet_batch["backends"]["rows"]}
    assert statuses["numpy"] == "bit_identical"
    assert statuses["float32"] in ("tolerance_ok", "bit_identical")
    assert statuses["numba"] in ("bit_identical", "skipped")


def test_pr6_scoreboard_meets_acceptance():
    scoreboard = json.loads((REPO_ROOT / "BENCH_PR6.json").read_text())
    assert scoreboard["schema"] == "ptrack-bench-v2"
    fleet_batch = scoreboard["fleet_batch"]
    # Acceptance headline: the batched fleet driver cuts amortised
    # ingest cost >= 5x vs the lockstep pool at 1000 sessions, with the
    # serial == pooled == sharded == batched crediting oracle intact.
    assert fleet_batch["identity"]["ok"] is True
    headline = fleet_batch["batched_vs_lockstep"]
    assert headline["n_sessions"] >= 1000
    assert headline["speedup"] >= 5.0
    assert headline["speedup_ok"] is True
    # The occupancy sweep reaches 10000 concurrent sessions.
    assert max(r["sessions"] for r in fleet_batch["occupancy"]["rows"]) >= 10000
    # The default backend is bit-identical; absent deps skip cleanly.
    statuses = {r["backend"]: r["status"] for r in fleet_batch["backends"]["rows"]}
    assert statuses["numpy"] == "bit_identical"
    assert statuses["numba"] in ("bit_identical", "skipped")


def test_ragged_ingest_sections_complete(check_results):
    ragged = check_results["ragged_ingest"]
    assert set(ragged) == {
        "check_mode",
        "identity",
        "ragged_vs_lockstep",
        "shedding",
    }
    assert ragged["identity"]["ok"] is True
    headline = ragged["ragged_vs_lockstep"]
    assert headline["gateway_us_per_sample"] > 0
    assert headline["lockstep_us_per_sample"] > 0
    assert headline["gateway_samples_per_s"] > 0
    shed = ragged["shedding"]
    assert shed["accounting_exact"] is True
    assert shed["deterministic"] is True
    assert (
        shed["accepted_samples"] + shed["shed_samples"]
        == shed["offered_samples"]
    )


def test_pr7_scoreboard_meets_acceptance():
    scoreboard = json.loads((REPO_ROOT / "BENCH_PR7.json").read_text())
    assert scoreboard["schema"] == "ptrack-bench-v2"
    ragged = scoreboard["ragged_ingest"]
    # Acceptance headline: gateway credits survive the serial-replay
    # oracle on a ragged schedule, sustained samples/s is recorded with
    # the lockstep pool as baseline and stays within the tracked 2x
    # overhead bound, and shedding is exactly-once deterministic.
    assert ragged["identity"]["ok"] is True
    headline = ragged["ragged_vs_lockstep"]
    assert headline["n_sessions"] >= 100
    assert headline["gateway_samples_per_s"] > 0
    assert headline["lockstep_samples_per_s"] > 0
    assert headline["overhead_ok"] is True
    assert headline["overhead_x"] <= headline["target_overhead_x"]
    shed = ragged["shedding"]
    assert shed["shed_samples"] > 0
    assert shed["accounting_exact"] is True
    assert shed["deterministic"] is True


def test_fleet_kernels_sections_complete(check_results):
    kernels = check_results["fleet_kernels"]
    assert set(kernels) == {
        "check_mode",
        "identity",
        "bounce_differential",
        "headline",
        "small_fleet",
        "backends",
        "bounce_kernel",
        "check_reference",
        "regression",
    }
    assert kernels["identity"]["ok"] is True
    diff = kernels["bounce_differential"]
    assert diff["ok"] is True
    assert diff["solved_rows"] + diff["rejected_rows"] == diff["rows"]
    assert kernels["headline"]["us_per_sample"] > 0
    assert kernels["small_fleet"]["packed_us_per_sample"] > 0
    statuses = {r["backend"]: r["status"] for r in kernels["backends"]["rows"]}
    assert statuses["numpy"] == "bit_identical"
    assert statuses["numba"] in ("bit_identical", "skipped")
    assert kernels["bounce_kernel"]["block_us_per_row"] > 0
    assert kernels["check_reference"]["speedup"] > 0
    assert kernels["regression"]["regression_ok"] is True


def test_pr8_scoreboard_meets_acceptance():
    scoreboard = json.loads((REPO_ROOT / "BENCH_PR8.json").read_text())
    assert scoreboard["schema"] == "ptrack-bench-v2"
    kernels = scoreboard["fleet_kernels"]
    # Acceptance: crediting oracle + brentq bit-identity differential
    # asserted before timing, and the 1000-session NumPy headline beats
    # the tracked PR-6 batched row by >= 1.5x at <= 1.2 µs/sample.
    assert kernels["identity"]["ok"] is True
    diff = kernels["bounce_differential"]
    assert diff["ok"] is True and diff["rows"] >= 10_000
    headline = kernels["headline"]
    assert headline["n_sessions"] >= 1000
    assert headline["improvement_x"] >= headline["target_improvement_x"]
    assert headline["improvement_ok"] is True
    assert headline["absolute_ok"] is True
    # The small-fleet measurement justifying SMALL_FLEET_CUTOFF = 0.
    assert kernels["small_fleet"]["packed_beats_scalar"] is True
    # The check-scale reference CI's regression gate compares against.
    assert kernels["check_reference"]["speedup"] > 1.0


def test_cli_bench_verb_wiring():
    # The installed-package entry point: `repro bench` forwards to the
    # scripts/bench.py driver (exercised directly by the fixture above).
    from repro import cli

    parser = cli.build_parser()
    args = parser.parse_args(["bench", "--suite", "fleet-batch", "--check"])
    assert args.func is cli._cmd_bench
    assert args.suite == "fleet-batch"
    assert args.check is True
    args = parser.parse_args(["bench", "--suite", "ragged-ingest", "--check"])
    assert args.suite == "ragged-ingest"
    args = parser.parse_args(["bench", "--suite", "fleet-kernels", "--check"])
    assert args.suite == "fleet-kernels"
