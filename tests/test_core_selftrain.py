"""Unit tests for repro.core.selftrain."""

import numpy as np
import pytest

from repro.core.selftrain import (
    CalibrationWalk,
    SelfTrainer,
    train_arm_length,
    train_leg_length,
)
from repro.exceptions import CalibrationError
from repro.sensing.imu import IMUTrace
from repro.simulation.walker import simulate_walk


@pytest.fixture(scope="module")
def calibration_walks(user):
    """Three mixed walking+stepping walks with coarse references."""
    rng = np.random.default_rng(2024)
    walks = []
    for cadence_scale, stride_scale in ((0.9, 0.88), (1.0, 1.0), (1.1, 1.1)):
        tuned = user.with_gait(
            cadence_hz=cadence_scale * user.cadence_hz,
            stride_m=stride_scale * user.stride_m,
        )
        walk_trace, walk_truth = simulate_walk(tuned, 45.0, rng=rng)
        step_trace, step_truth = simulate_walk(
            tuned, 30.0, rng=rng, arm_mode="rigid"
        )
        trace = IMUTrace.concatenate([walk_trace, step_trace])
        reference = (walk_truth.total_distance_m + step_truth.total_distance_m) * (
            1.0 + float(rng.normal(0.0, 0.02))
        )
        walks.append(CalibrationWalk(trace, reference))
    return walks


class TestCalibrationWalk:
    def test_rejects_nonpositive_reference(self, walk_trace):
        with pytest.raises(CalibrationError):
            CalibrationWalk(walk_trace[0], 0.0)


class TestTrainArmLength:
    def test_recovers_plausible_arm(self, calibration_walks, user):
        m_hat = train_arm_length([w.trace for w in calibration_walks])
        assert 0.40 <= m_hat <= 0.85
        # Exact recovery is not expected (the arm lag biases both
        # estimators slightly); the trained value must stay in a band
        # that keeps strides accurate, checked end-to-end below.
        assert abs(m_hat - user.arm_length_m) < 0.2

    def test_requires_both_gaits(self, walk_trace):
        # A walking-only calibration has no stepping anchor.
        with pytest.raises(CalibrationError):
            train_arm_length([walk_trace[0]])

    def test_requires_enough_cycles(self, user):
        tiny, _ = simulate_walk(user, 4.0, rng=np.random.default_rng(0))
        with pytest.raises(CalibrationError):
            train_arm_length([tiny])

    def test_rejects_tiny_grid(self, calibration_walks):
        with pytest.raises(CalibrationError):
            train_arm_length(
                [w.trace for w in calibration_walks], grid_m=np.array([0.6])
            )


class TestTrainLegLength:
    def test_recovers_distance_scale(self, calibration_walks, user):
        m_hat = train_arm_length([w.trace for w in calibration_walks])
        leg, k = train_leg_length(calibration_walks, m_hat)
        assert 0.70 <= leg <= 1.10
        assert 1.0 < k < 3.0

    def test_requires_walks(self):
        with pytest.raises(CalibrationError):
            train_leg_length([], 0.6)


class TestSelfTrainer:
    def test_end_to_end_profile_quality(self, calibration_walks, user):
        profile = SelfTrainer().train(calibration_walks)
        # The decisive check: strides estimated with the self-trained
        # profile are accurate (the paper's Fig. 8(b) criterion).
        from repro.core.pipeline import PTrack

        trace, truth = simulate_walk(user, 40.0, rng=np.random.default_rng(7))
        result = PTrack(profile=profile).track(trace)
        errors = np.abs(
            np.array([s.length_m for s in result.strides]) - user.stride_m
        )
        assert np.mean(errors) < 0.08  # paper: 5.3 cm average
        assert result.distance_m == pytest.approx(
            truth.total_distance_m, rel=0.12
        )
