"""The durable fleet driver: rolling restarts, torn checkpoints,
live rebalancing, and the checkpoint store's quarantine contract.

The invariant under test everywhere: whatever the fault schedule does
to the workers — SIGKILL mid-round, exceptions mid-epoch, checkpoint
bytes torn on disk, shards split live between epochs — the fleet's
credited steps and strides are bit-identical to the classic clean
single-pass driver. Crashes may cost wall-clock; they may never cost
(or duplicate) a credit.
"""

import multiprocessing
import pickle

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import ShardCrash, TornCheckpoint, plan_shard_crash
from repro.serving import (
    CheckpointStore,
    RebalancePolicy,
    ShardEpochStats,
    SessionPool,
    make_checkpoint,
    serve_fleet,
    split_checkpoint,
    split_pool_snapshot,
    synthesize_workload,
)
from repro.telemetry import MetricsRegistry

RATE = 100.0
BATCH = 50

_FLEET = synthesize_workload(6, 20.0, seed=88)
_TRACES = [w.samples for w in _FLEET]
_PROFILES = [w.profile for w in _FLEET]


def _credits(report):
    return [
        (
            s.status,
            [(e.index, e.time) for e in s.steps],
            [(e.time, e.length_m) for e in s.strides],
        )
        for s in report.sessions
    ]


@pytest.fixture(scope="module")
def classic_credits():
    report = serve_fleet(
        _TRACES, RATE, profiles=_PROFILES, workers=1, batch_samples=BATCH
    )
    assert report.status == "ok"
    return _credits(report)


class TestRollingRestart:
    def test_raise_crash_restores_from_checkpoint(self, classic_credits):
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=1,
            batch_samples=BATCH,
            sessions_per_shard=3,
            checkpoint_every_s=2.0,
            shard_faults=[ShardCrash(prob=0.9, mode="kill")],
            fault_seed=11,
        )
        # The in-process driver degrades kill directives to raises (no
        # worker process exists to SIGKILL) but must still recover.
        assert report.checkpoint_restores > 0
        assert report.status == "ok"
        assert _credits(report) == classic_credits

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-kill test relies on fork start method",
    )
    def test_kill_worker_mid_round_zero_credit_loss(self, classic_credits):
        # The headline rolling-restart drill: SIGKILL a live worker
        # process mid-epoch; the shard restores from its checkpoint and
        # the fleet finishes with exactly the clean run's credits.
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=2,
            batch_samples=BATCH,
            sessions_per_shard=3,
            checkpoint_every_s=2.0,
            shard_faults=[ShardCrash(prob=0.9, mode="kill")],
            fault_seed=11,
        )
        assert report.checkpoint_restores > 0
        assert report.status == "ok"
        assert _credits(report) == classic_credits

    def test_retry_crashes_fall_back_to_bisection(self, classic_credits):
        # retry_prob=1 makes every restore retry die too; after the
        # attempt budget the driver must fall back to classic healing
        # (bisection from the trace) and still credit everything.
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=1,
            batch_samples=BATCH,
            sessions_per_shard=3,
            checkpoint_every_s=2.0,
            shard_faults=[ShardCrash(prob=0.9, retry_prob=1.0)],
            fault_seed=11,
        )
        assert report.shard_retries > 0
        assert report.status == "ok"
        assert _credits(report) == classic_credits

    def test_clean_run_durable_mode_matches_classic(self, classic_credits):
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=1,
            batch_samples=BATCH,
            checkpoint_every_s=5.0,
        )
        assert report.checkpoint_restores == 0
        assert _credits(report) == classic_credits


class TestTornCheckpointFallback:
    def test_torn_disk_checkpoint_reads_as_miss(
        self, tmp_path, classic_credits
    ):
        # Every checkpoint write is torn; every crash therefore finds
        # no usable disk state and re-ingests from the trace. Slower,
        # but never a wrong credit and never an exception. (The crash
        # rate is kept low: with all checkpoints torn a crash resets
        # the shard to offset 0, so a high rate would livelock.)
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=1,
            batch_samples=BATCH,
            sessions_per_shard=3,
            checkpoint_every_s=5.0,
            checkpoint_dir=tmp_path,
            telemetry=True,
            shard_faults=[
                ShardCrash(prob=0.3),
                TornCheckpoint(prob=1.0, max_keep_frac=0.5),
            ],
            fault_seed=7,
        )
        assert report.status == "ok"
        assert _credits(report) == classic_credits
        counters = report.telemetry["counters"]
        assert counters.get("serving_checkpoint_torn_total", 0) > 0
        # Quarantined remains are renamed aside, not left as live state.
        assert list(tmp_path.glob("*.ckpt.corrupt"))

    def test_disk_checkpoints_cleaned_up_on_success(
        self, tmp_path, classic_credits
    ):
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=1,
            batch_samples=BATCH,
            checkpoint_every_s=2.0,
            checkpoint_dir=tmp_path,
        )
        assert _credits(report) == classic_credits
        assert list(tmp_path.glob("*.ckpt")) == []


class TestRebalance:
    def test_crash_driven_split_keeps_credits(self, classic_credits):
        # One crash marks a shard for splitting; the split halves must
        # resume bit-identically from the split checkpoint.
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=1,
            batch_samples=BATCH,
            sessions_per_shard=6,
            checkpoint_every_s=2.0,
            rebalance=RebalancePolicy(crash_split_threshold=1),
            shard_faults=[ShardCrash(prob=0.4)],
            fault_seed=3,
        )
        assert report.rebalances > 0
        assert report.status == "ok"
        assert _credits(report) == classic_credits

    def test_rebalances_surface_in_telemetry(self):
        report = serve_fleet(
            _TRACES,
            RATE,
            profiles=_PROFILES,
            workers=1,
            batch_samples=BATCH,
            sessions_per_shard=6,
            checkpoint_every_s=2.0,
            telemetry=True,
            rebalance=RebalancePolicy(crash_split_threshold=1),
            shard_faults=[ShardCrash(prob=0.4)],
            fault_seed=3,
        )
        counters = report.telemetry["counters"]
        assert counters["serving_fleet_rebalances_total"] == report.rebalances
        assert (
            counters["serving_fleet_checkpoint_restores_total"]
            == report.checkpoint_restores
        )


class TestCheckpointStore:
    @staticmethod
    def _payload(n_sessions=2):
        pool = SessionPool(RATE)
        sids = pool.add_sessions(_PROFILES[:n_sessions])
        pool.append(sids, [t[:BATCH] for t in _TRACES[:n_sessions]])
        return make_checkpoint(
            pool.snapshot(), BATCH, [[] for _ in sids], [[] for _ in sids], 1
        )

    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path, telemetry=MetricsRegistry())
        payload = self._payload()
        path = store.save("shard-0", payload)
        assert path.exists()
        loaded = store.load("shard-0")
        assert loaded["kind"] == "checkpoint"
        assert loaded["next_offset"] == payload["next_offset"]
        assert loaded["epoch"] == payload["epoch"]
        assert sorted(loaded["pool"]["sessions"]) == sorted(
            payload["pool"]["sessions"]
        )
        assert store.stats == {"saves": 1, "loads": 1, "torn_loads": 0}

    def test_names_and_delete(self, tmp_path):
        store = CheckpointStore(tmp_path)
        payload = self._payload()
        store.save("shard-1", payload)
        store.save("shard-0", payload)
        assert store.names() == ["shard-0", "shard-1"]
        store.delete("shard-1")
        store.delete("shard-1")  # missing is fine
        assert store.names() == ["shard-0"]

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nope") is None

    def test_invalid_name_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ConfigurationError, match="name"):
                store.save(bad, self._payload())

    def test_truncated_file_quarantined_as_miss(self, tmp_path):
        reg = MetricsRegistry()
        store = CheckpointStore(tmp_path, telemetry=reg)
        path = store.save("shard-0", self._payload())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.load("shard-0") is None
        assert store.stats["torn_loads"] == 1
        assert not path.exists()
        assert path.with_suffix(".ckpt.corrupt").exists()
        counters = reg.snapshot()["counters"]
        assert counters["serving_checkpoint_torn_total"] == 1

    def test_torn_write_injector_applies_at_save(self, tmp_path):
        store = CheckpointStore(
            tmp_path,
            blob_faults=[TornCheckpoint(prob=1.0, max_keep_frac=0.5)],
            seed=9,
        )
        store.save("shard-0", self._payload())
        assert store.load("shard-0") is None
        assert store.stats["torn_loads"] == 1

    def test_wrong_schema_blob_raises(self, tmp_path):
        # A *decodable* blob of a foreign schema is a deployment
        # mistake, not bit rot: surface it, don't quarantine it.
        store = CheckpointStore(tmp_path)
        payload = dict(self._payload())
        payload["schema"] = "ptrack-session-v999"
        (tmp_path / "shard-0.ckpt").write_bytes(pickle.dumps(payload))
        with pytest.raises(ConfigurationError, match="v999"):
            store.load("shard-0")

    def test_wrong_kind_blob_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        pool = SessionPool(RATE)
        pool.add_session(_PROFILES[0])
        (tmp_path / "shard-0.ckpt").write_bytes(
            pickle.dumps(pool.snapshot())
        )
        with pytest.raises(ConfigurationError, match="checkpoint"):
            store.load("shard-0")


class TestCheckpointSplit:
    def test_split_partitions_sessions_and_credits(self):
        pool = SessionPool(RATE)
        sids = pool.add_sessions(_PROFILES[:4])
        steps = [[("s", i)] for i in range(4)]
        strides = [[("r", i)] for i in range(4)]
        ckpt = make_checkpoint(pool.snapshot(), 100, steps, strides, 2)
        left, right = split_checkpoint(ckpt, 1)
        assert sorted(left["pool"]["sessions"]) == sids[:1]
        assert sorted(right["pool"]["sessions"]) == sids[1:]
        assert left["steps"] == steps[:1] and right["steps"] == steps[1:]
        assert left["strides"] == strides[:1]
        assert right["strides"] == strides[1:]
        assert left["epoch"] == right["epoch"] == 2
        assert left["next_offset"] == right["next_offset"] == 100

    def test_split_halves_resume_like_the_whole(self):
        # Serving the two halves forward equals serving the unsplit
        # pool forward: the migration-without-credit-loss invariant.
        def finish(pool, sids, start):
            acc = {sid: ([], []) for sid in sids}
            traces = [_TRACES[sid] for sid in sids]
            n = max(t.shape[0] for t in traces)
            for off in range(start, n, BATCH):
                out = pool.append(sids, [t[off : off + BATCH] for t in traces])
                for sid, (s, r) in zip(sids, out):
                    acc[sid][0].extend(s)
                    acc[sid][1].extend(r)
            for sid, (s, r) in zip(sids, pool.flush(sids)):
                acc[sid][0].extend(s)
                acc[sid][1].extend(r)
            return {
                sid: (
                    [(e.index, e.time) for e in c[0]],
                    [(e.time, e.length_m) for e in c[1]],
                )
                for sid, c in acc.items()
            }

        cut = 10 * BATCH
        pool = SessionPool(RATE)
        sids = pool.add_sessions(_PROFILES[:4])
        for off in range(0, cut, BATCH):
            pool.append(sids, [t[off : off + BATCH] for t in _TRACES[:4]])
        blob = pool.snapshot()
        whole = finish(
            SessionPool.from_snapshot(pickle.loads(pickle.dumps(blob))),
            sids,
            cut,
        )
        left_blob, right_blob = split_pool_snapshot(blob, 2)
        halves = {}
        for half in (left_blob, right_blob):
            hp = SessionPool.from_snapshot(half)
            halves.update(finish(hp, hp.session_ids, cut))
        assert halves == whole

    def test_split_rejects_empty_half(self):
        pool = SessionPool(RATE)
        pool.add_sessions(_PROFILES[:2])
        ckpt = make_checkpoint(pool.snapshot(), 0, [[], []], [[], []], 0)
        for mid in (0, 2):
            with pytest.raises(ConfigurationError, match="non-empty"):
                split_checkpoint(ckpt, mid)


class TestRebalancePolicy:
    @staticmethod
    def _stats(shard_id, n=4, mean_round=1.0, crashes=0):
        return ShardEpochStats(
            shard_id=shard_id,
            n_sessions=n,
            elapsed_s=mean_round * 10,
            round_seconds_sum=mean_round * 10,
            round_seconds_count=10,
            crashes=crashes,
        )

    def test_slow_shard_is_split(self):
        policy = RebalancePolicy(split_factor=1.5)
        stats = [self._stats(0), self._stats(1), self._stats(2, mean_round=4.0)]
        assert policy.plan(stats) == [2]

    def test_balanced_fleet_plans_nothing(self):
        policy = RebalancePolicy()
        assert policy.plan([self._stats(i) for i in range(3)]) == []

    def test_budget_truncates_worst_first(self):
        policy = RebalancePolicy(max_splits_per_epoch=1)
        stats = [
            self._stats(0),
            self._stats(1),
            self._stats(2),
            self._stats(3, mean_round=3.0),
            self._stats(4, mean_round=5.0),
        ]
        assert policy.plan(stats) == [4]
        wider = RebalancePolicy(max_splits_per_epoch=2)
        assert wider.plan(stats) == [4, 3]

    def test_single_session_shard_never_split(self):
        policy = RebalancePolicy(crash_split_threshold=1)
        assert policy.plan([self._stats(0, n=1, crashes=5)]) == []

    def test_crash_threshold_forces_split(self):
        policy = RebalancePolicy(crash_split_threshold=2)
        stats = [self._stats(0), self._stats(1, crashes=2)]
        assert policy.plan(stats) == [1]
        disabled = RebalancePolicy(crash_split_threshold=0)
        assert disabled.plan(stats) == []

    def test_wallclock_fallback_without_telemetry(self):
        # round_seconds_count == 0 (telemetry off) falls back to the
        # epoch wall-clock signal.
        fast = ShardEpochStats(0, 4, elapsed_s=1.0)
        slow = ShardEpochStats(1, 4, elapsed_s=9.0)
        assert RebalancePolicy().plan([fast, fast, slow]) == [1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"split_factor": 1.0},
            {"min_split_sessions": 1},
            {"max_splits_per_epoch": 0},
            {"crash_split_threshold": -1},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RebalancePolicy(**kwargs)


class TestShardCrashPlanning:
    def test_plan_is_deterministic(self):
        faults = [ShardCrash(prob=0.5, mode="raise")]
        plans = [
            plan_shard_crash(faults, seed=1, shard_index=s, epoch=e, attempt=0)
            for s in range(4)
            for e in range(4)
        ]
        assert plans == [
            plan_shard_crash(faults, seed=1, shard_index=s, epoch=e, attempt=0)
            for s in range(4)
            for e in range(4)
        ]
        assert any(p is not None for p in plans)
        assert any(p is None for p in plans)

    def test_retry_prob_defaults_to_zero(self):
        faults = [ShardCrash(prob=1.0)]
        assert (
            plan_shard_crash(faults, seed=1, shard_index=0, epoch=0, attempt=0)
            is not None
        )
        assert (
            plan_shard_crash(faults, seed=1, shard_index=0, epoch=0, attempt=1)
            is None
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            ShardCrash(mode="explode")


class TestDurableArgValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_dir": "/tmp/x"},
            {"rebalance": RebalancePolicy()},
            {"shard_faults": [ShardCrash()]},
        ],
    )
    def test_durable_args_require_checkpointing(self, kwargs):
        with pytest.raises(ConfigurationError, match="checkpoint_every_s"):
            serve_fleet(
                _TRACES[:1], RATE, profiles=_PROFILES[:1], workers=1, **kwargs
            )

    def test_nonpositive_epoch_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_every_s"):
            serve_fleet(
                _TRACES[:1],
                RATE,
                profiles=_PROFILES[:1],
                workers=1,
                checkpoint_every_s=0.0,
            )
