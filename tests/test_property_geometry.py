"""Property-based tests for the biomechanical geometry (Eqs. 2-5)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.bounce import bounce_from_half_cycle, solve_bounce
from repro.core.stride import stride_from_bounce_model
from repro.simulation.gait import bounce_from_stride, stride_from_bounce
from repro.types import UserProfile

legs = st.floats(min_value=0.6, max_value=1.2)
arms = st.floats(min_value=0.45, max_value=0.8)
bounces = st.floats(min_value=0.005, max_value=0.12)


@settings(max_examples=100, deadline=None)
@given(legs, st.floats(min_value=0.1, max_value=0.95))
def test_bounce_stride_round_trip(leg, stride_frac):
    stride = stride_frac * 2 * leg
    b = bounce_from_stride(stride, leg)
    assert 0 <= b <= leg
    assert stride_from_bounce(b, leg, k=2.0) == pytest.approx(stride, rel=1e-9)


@settings(max_examples=100, deadline=None)
@given(legs, bounces)
def test_stride_model_monotone_in_bounce(leg, b):
    profile = UserProfile(0.6, leg)
    assume(b + 0.01 < leg)
    assert stride_from_bounce_model(b + 0.01, profile) > stride_from_bounce_model(
        b, profile
    )


@settings(max_examples=100, deadline=None)
@given(
    arms,
    bounces,
    st.floats(min_value=0.005, max_value=0.15),
    st.floats(min_value=0.005, max_value=0.15),
)
def test_solve_bounce_round_trip(m, b, r1_extra, r2_extra):
    r1, r2 = b + r1_extra, b + r2_extra
    assume(r1 < 0.9 * m and r2 < 0.9 * m)
    h1, h2 = r1 - b, r2 - b
    d = np.sqrt(m**2 - (m - r1) ** 2) + np.sqrt(m**2 - (m - r2) ** 2)
    assert solve_bounce(h1, h2, d, m) == pytest.approx(b, abs=1e-5)


@settings(max_examples=100, deadline=None)
@given(arms, bounces, st.floats(min_value=0.01, max_value=0.15))
def test_half_cycle_closed_form_round_trip(m, b, r_extra):
    r = b + r_extra
    assume(r < 0.9 * m)
    h = r - b
    d_half = np.sqrt(m**2 - (m - r) ** 2)
    assert bounce_from_half_cycle(h, d_half, m) == pytest.approx(b, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(arms, bounces, st.floats(min_value=0.02, max_value=0.1))
def test_solve_bounce_monotone_in_d(m, b, r_extra):
    r1 = r2 = b + r_extra
    assume(r1 < 0.85 * m)
    h1 = h2 = r1 - b
    d = 2 * np.sqrt(m**2 - (m - r1) ** 2)
    lower = solve_bounce(h1, h2, 0.9 * d, m)
    exact = solve_bounce(h1, h2, d, m)
    assert lower <= exact + 1e-9
