"""Tests for repro.eval.harness plus gait-variant integration checks."""

import numpy as np
import pytest

from repro.eval.harness import Replicates, compare_cdfs, format_cdf, repeat
from repro.exceptions import SignalError


class TestReplicates:
    def test_statistics(self):
        r = Replicates("x", (1.0, 2.0, 3.0))
        assert r.mean == 2.0
        assert r.minimum == 1.0
        assert r.maximum == 3.0
        lo, hi = r.confidence_interval()
        assert lo < 2.0 < hi

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            Replicates("x", ())


class TestRepeat:
    def test_aggregates_across_seeds(self):
        def measure(seed: int):
            rng = np.random.default_rng(seed)
            return {"a": float(rng.normal()), "b": float(seed)}

        result = repeat(measure, seeds=[1, 2, 3])
        assert set(result) == {"a", "b"}
        assert result["b"].values == (1.0, 2.0, 3.0)

    def test_deterministic_measurement(self):
        result = repeat(lambda s: {"v": s * 2.0}, seeds=[5])
        assert result["v"].mean == 10.0

    def test_rejects_no_seeds(self):
        with pytest.raises(SignalError):
            repeat(lambda s: {"v": 0.0}, seeds=[])

    def test_rejects_inconsistent_metrics(self):
        def measure(seed: int):
            return {"a": 0.0} if seed == 1 else {"b": 0.0}

        with pytest.raises(SignalError):
            repeat(measure, seeds=[1, 2])


class TestCdfHelpers:
    def test_format_cdf_monotone(self):
        text = format_cdf(np.random.default_rng(0).normal(size=500), "err")
        lines = text.splitlines()[2:]
        values = [float(line.split()[0]) for line in lines]
        assert values == sorted(values)
        assert lines[-1].endswith("1.00")

    def test_format_cdf_rejects_empty(self):
        with pytest.raises(SignalError):
            format_cdf([])

    def test_compare_cdfs_orders_by_median(self):
        ordered = compare_cdfs(
            {"worse": [10.0, 11.0, 12.0], "better": [1.0, 2.0, 3.0]}
        )
        assert ordered[0][0] == "better"
        assert ordered[0][1][0.5] == pytest.approx(2.0)

    def test_compare_cdfs_rejects_empty_sample(self):
        with pytest.raises(SignalError):
            compare_cdfs({"x": []})


class TestGaitVariants:
    """The paper notes walking 'and also its variants like jogging,
    running' decompose the same way; the counter must follow."""

    @pytest.mark.parametrize(
        "cadence,stride",
        [(1.25, 1.05), (1.35, 1.15)],
        ids=["jog", "brisk-jog"],
    )
    def test_jogging_paces_tracked(self, cadence, stride, ptrack_counter):
        from repro.core.pipeline import PTrack
        from repro.simulation import SimulatedUser
        from repro.simulation.walker import simulate_walk

        user = SimulatedUser().with_gait(cadence_hz=cadence, stride_m=stride)
        trace, truth = simulate_walk(user, 30.0, rng=np.random.default_rng(8))
        counted = ptrack_counter.count_steps(trace)
        assert counted == pytest.approx(truth.step_count, abs=3)

        result = PTrack(profile=user.profile).track(trace)
        assert result.distance_m == pytest.approx(
            truth.total_distance_m, rel=0.1
        )

    def test_slow_stroll_tracked(self, ptrack_counter):
        from repro.simulation import SimulatedUser
        from repro.simulation.walker import simulate_walk

        user = SimulatedUser().with_gait(cadence_hz=0.8, stride_m=0.52)
        trace, truth = simulate_walk(user, 30.0, rng=np.random.default_rng(9))
        counted = ptrack_counter.count_steps(trace)
        assert counted >= 0.9 * truth.step_count
