"""Unit tests for repro.sensing.imu."""

import numpy as np
import pytest

from repro.exceptions import SignalError
from repro.sensing.imu import GRAVITY_M_S2, IMUTrace


def _trace(n=100, rate=100.0, start=0.0):
    rng = np.random.default_rng(0)
    return IMUTrace(rng.normal(size=(n, 3)), rate, start)


class TestConstruction:
    def test_basic_properties(self):
        tr = _trace(200, 100.0)
        assert tr.n_samples == 200
        assert tr.dt == pytest.approx(0.01)
        assert tr.duration_s == pytest.approx(2.0)

    def test_times(self):
        tr = _trace(3, 10.0, start=1.0)
        assert np.allclose(tr.times, [1.0, 1.1, 1.2])

    def test_axis_views(self):
        tr = _trace(10)
        assert tr.vertical.shape == (10,)
        assert tr.horizontal.shape == (10, 2)
        assert np.array_equal(tr.vertical, tr.linear_acceleration[:, 2])

    def test_payload_immutable(self):
        tr = _trace()
        with pytest.raises((ValueError, RuntimeError)):
            tr.linear_acceleration[0, 0] = 5.0

    def test_payload_copied_from_input(self):
        data = np.zeros((5, 3))
        tr = IMUTrace(data, 100.0)
        data[0, 0] = 7.0
        assert tr.linear_acceleration[0, 0] == 0.0

    def test_gravity_constant(self):
        assert GRAVITY_M_S2 == pytest.approx(9.80665)

    def test_rejects_bad_shape(self):
        with pytest.raises(SignalError):
            IMUTrace(np.zeros((5, 2)), 100.0)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            IMUTrace(np.zeros((0, 3)), 100.0)

    def test_rejects_nan(self):
        data = np.zeros((5, 3))
        data[2, 2] = np.nan
        with pytest.raises(SignalError):
            IMUTrace(data, 100.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(SignalError):
            IMUTrace(np.zeros((5, 3)), 0.0)


class TestSlicing:
    def test_slice_samples(self):
        tr = _trace(100, 100.0)
        sub = tr.slice_samples(10, 20)
        assert sub.n_samples == 10
        assert sub.start_time == pytest.approx(0.1)
        assert np.array_equal(
            sub.linear_acceleration, tr.linear_acceleration[10:20]
        )

    def test_slice_samples_bounds(self):
        tr = _trace(10)
        with pytest.raises(SignalError):
            tr.slice_samples(5, 5)
        with pytest.raises(SignalError):
            tr.slice_samples(-1, 5)
        with pytest.raises(SignalError):
            tr.slice_samples(5, 11)

    def test_slice_time(self):
        tr = _trace(100, 100.0, start=10.0)
        sub = tr.slice_time(10.5, 10.7)
        assert sub.n_samples == 20
        assert sub.start_time == pytest.approx(10.5)

    def test_slice_time_outside_raises(self):
        tr = _trace(10, 100.0)
        with pytest.raises(SignalError):
            tr.slice_time(5.0, 6.0)
        with pytest.raises(SignalError):
            tr.slice_time(0.05, 0.05)

    def test_index_at_time_clamps(self):
        tr = _trace(10, 100.0)
        assert tr.index_at_time(-5.0) == 0
        assert tr.index_at_time(100.0) == 9
        assert tr.index_at_time(0.05) == 5


class TestConcatenate:
    def test_joins_payloads(self):
        a, b = _trace(10), _trace(20)
        joined = IMUTrace.concatenate([a, b])
        assert joined.n_samples == 30
        assert np.array_equal(joined.linear_acceleration[:10], a.linear_acceleration)

    def test_keeps_first_start_time(self):
        a = _trace(10, start=5.0)
        b = _trace(10, start=99.0)
        assert IMUTrace.concatenate([a, b]).start_time == 5.0

    def test_rejects_rate_mismatch(self):
        a = _trace(10, 100.0)
        b = _trace(10, 50.0)
        with pytest.raises(SignalError):
            IMUTrace.concatenate([a, b])

    def test_rejects_empty_list(self):
        with pytest.raises(SignalError):
            IMUTrace.concatenate([])

    def test_single_trace(self):
        a = _trace(7)
        assert IMUTrace.concatenate([a]).n_samples == 7


class TestWithAcceleration:
    def test_replaces_payload(self):
        tr = _trace(10)
        new = tr.with_acceleration(np.ones((4, 3)))
        assert new.n_samples == 4
        assert new.sample_rate_hz == tr.sample_rate_hz
        assert new.start_time == tr.start_time
