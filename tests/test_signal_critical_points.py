"""Unit tests for repro.signal.critical_points."""

import numpy as np
import pytest

from repro.exceptions import SignalError
from repro.signal.critical_points import (
    CriticalPoint,
    CriticalPointKind,
    critical_points,
    turning_points,
    zero_crossings,
)


def _sine(n=200, periods=2.0):
    t = np.linspace(0, periods, n, endpoint=False)
    return np.sin(2 * np.pi * t)


class TestKinds:
    def test_turning_property(self):
        assert CriticalPointKind.PEAK.is_turning
        assert CriticalPointKind.VALLEY.is_turning
        assert not CriticalPointKind.CROSSING.is_turning

    def test_ordering_by_index(self):
        a = CriticalPoint(5, CriticalPointKind.PEAK)
        b = CriticalPoint(3, CriticalPointKind.CROSSING)
        assert sorted([a, b])[0] is b


class TestTurningPoints:
    def test_sine_has_alternating_extrema(self):
        pts = turning_points(_sine(), min_prominence=0.5)
        kinds = [p.kind for p in pts]
        assert len(pts) == 4  # 2 peaks + 2 valleys over 2 periods
        for first, second in zip(kinds, kinds[1:]):
            assert first != second

    def test_time_ordered(self):
        pts = turning_points(_sine(), min_prominence=0.1)
        idx = [p.index for p in pts]
        assert idx == sorted(idx)

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            turning_points(np.zeros((3, 3)))


class TestZeroCrossings:
    def test_sine_crossings(self):
        pts = zero_crossings(_sine())
        # 2 periods -> 3 interior crossings after the first arm.
        assert len(pts) == 3

    def test_hysteresis_suppresses_chatter(self):
        x = np.concatenate([np.full(10, 1.0), 0.001 * np.array([1, -1, 1, -1, 1.0]), np.full(10, -1.0)])
        loose = zero_crossings(x, hysteresis=0.0)
        tight = zero_crossings(x, hysteresis=0.1)
        assert len(tight) == 1
        assert len(loose) >= len(tight)

    def test_no_crossing_for_positive_signal(self):
        assert zero_crossings(np.ones(10) + _sine(10) * 0.1) == []

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(SignalError):
            zero_crossings(_sine(), hysteresis=-0.1)


class TestCriticalPoints:
    def test_union_of_kinds(self):
        pts = critical_points(_sine(), min_prominence=0.5)
        kinds = {p.kind for p in pts}
        assert CriticalPointKind.PEAK in kinds
        assert CriticalPointKind.VALLEY in kinds
        assert CriticalPointKind.CROSSING in kinds

    def test_duplicate_indices_keep_turning(self):
        # A signal whose crossing coincides with an extremum index is
        # unusual; emulate by checking no duplicate indices appear.
        pts = critical_points(_sine(), min_prominence=0.1)
        idx = [p.index for p in pts]
        assert len(idx) == len(set(idx))

    def test_time_ordering(self):
        pts = critical_points(_sine(400, 3.0), min_prominence=0.2)
        idx = [p.index for p in pts]
        assert idx == sorted(idx)

    def test_constant_signal_has_no_points(self):
        assert critical_points(np.zeros(50)) == []
