"""Unit tests for repro.core.{config,offset}."""

import numpy as np
import pytest

from repro.core.config import PTrackConfig
from repro.core.offset import (
    critical_points_for_offset,
    cycle_offset,
    offset_from_points,
)
from repro.exceptions import ConfigurationError, SignalError
from repro.signal.critical_points import CriticalPoint, CriticalPointKind


class TestPTrackConfig:
    def test_paper_defaults(self):
        cfg = PTrackConfig()
        assert cfg.offset_threshold == 0.0325
        assert cfg.stepping_consecutive == 3
        assert cfg.phase_difference_target == 0.25
        assert cfg.steps_per_cycle == 2

    def test_with_overrides(self):
        cfg = PTrackConfig().with_overrides(offset_threshold=0.05)
        assert cfg.offset_threshold == 0.05
        assert cfg.stepping_consecutive == 3

    @pytest.mark.parametrize(
        "field,value",
        [
            ("lowpass_cutoff_hz", 0.0),
            ("lowpass_order", 0),
            ("min_step_rate_hz", 5.0),
            ("min_peak_prominence", -1.0),
            ("min_vertical_std", -0.1),
            ("offset_threshold", -0.1),
            ("critical_point_prominence", -1.0),
            ("crossing_hysteresis", -1.0),
            ("matching_prominence_factor", 0.0),
            ("max_point_weight", 1.5),
            ("stepping_consecutive", 0),
            ("phase_difference_target", 1.5),
            ("phase_difference_tolerance", 0.6),
            ("max_normalized_offset", 0.0),
            ("steps_per_cycle", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            PTrackConfig(**{field: value})


def _pt(idx, kind=CriticalPointKind.PEAK):
    return CriticalPoint(idx, kind)


class TestOffsetFromPoints:
    def test_perfect_match_zero(self):
        v = [_pt(10), _pt(30), _pt(50)]
        a = [_pt(10), _pt(30), _pt(50)]
        assert offset_from_points(v, a, 100) == 0.0

    def test_shift_increases_offset(self):
        v = [_pt(10), _pt(30), _pt(50)]
        small = offset_from_points(v, [_pt(12), _pt(32), _pt(52)], 100)
        large = offset_from_points(v, [_pt(20), _pt(40), _pt(60)], 100)
        assert 0 < small < large

    def test_empty_vertical_is_zero(self):
        assert offset_from_points([], [_pt(5)], 100) == 0.0

    def test_silent_anterior_is_zero(self):
        # Fewer than two anterior points = no two-source evidence.
        assert offset_from_points([_pt(10)], [], 100) == 0.0
        assert offset_from_points([_pt(10)], [_pt(50)], 100) == 0.0

    def test_mismatch_capped(self):
        cfg = PTrackConfig()
        v = [_pt(50)]
        far = offset_from_points(v, [_pt(0), _pt(99)], 100, cfg)
        # Cap: weight(<=0.3) * cap(0.25 * 100)/100
        assert far <= 0.3 * 0.25 + 1e-12

    def test_weight_cap_limits_first_point(self):
        cfg = PTrackConfig(max_point_weight=0.3)
        v = [_pt(90)]  # gap 90/100 = 0.9 would dominate without the cap
        a = [_pt(80), _pt(99)]
        capped = offset_from_points(v, a, 100, cfg)
        uncapped = offset_from_points(
            v, a, 100, PTrackConfig(max_point_weight=1.0)
        )
        assert capped < uncapped

    def test_rejects_tiny_cycle(self):
        with pytest.raises(SignalError):
            offset_from_points([_pt(0)], [_pt(0)], 1)


class TestCriticalPointsForOffset:
    def test_detrends_before_detection(self, config):
        t = np.linspace(0, 1, 100, endpoint=False)
        x = 10.0 + 2.0 * np.sin(2 * np.pi * 2 * t)
        pts = critical_points_for_offset(x, config)
        kinds = {p.kind for p in pts}
        assert CriticalPointKind.CROSSING in kinds  # crossings of the midline

    def test_constant_signal_empty(self, config):
        assert critical_points_for_offset(np.full(50, 3.0), config) == []

    def test_rejects_short(self, config):
        with pytest.raises(SignalError):
            critical_points_for_offset(np.zeros(3), config)


class TestCycleOffset:
    def _two_source(self, phase_shift, n=100):
        """Vertical at 2f, anterior at f with a controllable extra 2f
        component shifted by ``phase_shift`` — mimics arm+body mixing."""
        t = np.linspace(0, 1, n, endpoint=False)
        vertical = 3.0 * np.cos(4 * np.pi * t)
        anterior = 5.0 * np.sin(2 * np.pi * t) + 2.0 * np.cos(
            4 * np.pi * t + phase_shift
        )
        return vertical, anterior

    def test_aligned_sources_low_offset(self, config):
        v, a = self._two_source(0.0)
        assert cycle_offset(v, a, config) < config.offset_threshold

    def test_shifted_sources_higher_offset(self, config):
        v, a0 = self._two_source(0.0)
        _, a1 = self._two_source(1.2)
        assert cycle_offset(v, a1, config) > cycle_offset(v, a0, config)

    def test_rejects_length_mismatch(self, config):
        with pytest.raises(SignalError):
            cycle_offset(np.zeros(50), np.zeros(60), config)

    def test_walking_vs_rigid_separation(self, config, walk_trace, swinging_trace):
        """The headline property: walking cycles sit above delta,
        pure arm swinging below."""
        from repro.experiments.fig3 import cycle_offsets

        walking = cycle_offsets(walk_trace[0], config)
        swinging = cycle_offsets(swinging_trace, config)
        assert np.median(walking) > config.offset_threshold
        assert np.median(swinging) < config.offset_threshold
