"""Unit/integration tests for repro.core.streaming."""

import numpy as np
import pytest

from repro.core.pipeline import PTrack
from repro.core.streaming import StreamingPTrack
from repro.exceptions import ConfigurationError, SignalError
from repro.simulation.walker import simulate_walk


class TestConstruction:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            StreamingPTrack(0.0)

    def test_rejects_short_settle(self):
        with pytest.raises(ConfigurationError):
            StreamingPTrack(100.0, settle_s=0.5)

    def test_rejects_small_buffer(self):
        with pytest.raises(ConfigurationError):
            StreamingPTrack(100.0, settle_s=2.5, max_buffer_s=5.0)

    def test_latency_property(self):
        assert StreamingPTrack(100.0, settle_s=3.0).latency_s == 3.0


class TestStreamingEquivalence:
    @pytest.mark.parametrize("batch", [64, 256, 1024])
    def test_steps_match_batch_pipeline(self, user, batch):
        trace, truth = simulate_walk(user, 40.0, rng=np.random.default_rng(batch))
        expected = PTrack(profile=user.profile).track(trace)

        streamer = StreamingPTrack(100.0, profile=user.profile)
        data = trace.linear_acceleration
        for i in range(0, data.shape[0], batch):
            streamer.append(data[i : i + batch])
        streamer.flush()
        assert abs(streamer.step_count - expected.step_count) <= 2
        assert streamer.distance_m == pytest.approx(expected.distance_m, rel=0.08)

    def test_interference_stays_silent(self, eating_trace):
        streamer = StreamingPTrack(100.0)
        data = eating_trace.linear_acceleration
        for i in range(0, data.shape[0], 200):
            streamer.append(data[i : i + 200])
        streamer.flush()
        assert streamer.step_count <= 2

    def test_events_monotone_and_unique(self, user):
        trace, _ = simulate_walk(user, 30.0, rng=np.random.default_rng(3))
        streamer = StreamingPTrack(100.0, profile=user.profile)
        events = []
        for i in range(0, trace.n_samples, 150):
            steps, _ = streamer.append(trace.linear_acceleration[i : i + 150])
            events.extend(steps)
        steps, _ = streamer.flush()
        events.extend(steps)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert len(times) == len(set(times))

    def test_strides_lockstep_with_steps(self, user):
        trace, _ = simulate_walk(user, 30.0, rng=np.random.default_rng(4))
        streamer = StreamingPTrack(100.0, profile=user.profile)
        n_steps = n_strides = 0
        for i in range(0, trace.n_samples, 90):
            steps, strides = streamer.append(trace.linear_acceleration[i : i + 90])
            n_steps += len(steps)
            n_strides += len(strides)
        steps, strides = streamer.flush()
        n_steps += len(steps)
        n_strides += len(strides)
        assert n_strides <= n_steps
        assert n_strides >= 0.8 * n_steps


class TestStreamingBehaviour:
    def test_no_profile_no_strides(self, user):
        trace, _ = simulate_walk(user, 20.0, rng=np.random.default_rng(5))
        streamer = StreamingPTrack(100.0)
        _, strides = streamer.append(trace.linear_acceleration)
        _, tail = streamer.flush()
        assert strides == [] and tail == []
        assert streamer.distance_m == 0.0

    def test_settle_window_delays_crediting(self, user):
        trace, _ = simulate_walk(user, 10.0, rng=np.random.default_rng(6))
        streamer = StreamingPTrack(100.0, settle_s=5.0, max_buffer_s=30.0)
        steps, _ = streamer.append(trace.linear_acceleration[:600])  # 6 s
        # Only the first ~1 s can be settled with a 5 s horizon.
        assert len(steps) <= 4

    def test_empty_append(self):
        streamer = StreamingPTrack(100.0)
        assert streamer.append(np.empty((0, 3))) == ([], [])

    def test_rejects_bad_shape(self):
        streamer = StreamingPTrack(100.0)
        with pytest.raises(SignalError):
            streamer.append(np.zeros((10, 2)))

    def test_rejects_nan(self):
        streamer = StreamingPTrack(100.0)
        bad = np.zeros((10, 3))
        bad[0, 0] = np.nan
        with pytest.raises(SignalError):
            streamer.append(bad)

    def test_long_stream_bounded_memory(self, user):
        streamer = StreamingPTrack(100.0, max_buffer_s=12.0)
        trace, truth = simulate_walk(user, 60.0, rng=np.random.default_rng(7))
        for i in range(0, trace.n_samples, 100):
            streamer.append(trace.linear_acceleration[i : i + 100])
        assert streamer._size <= 12.0 * 100
        streamer.flush()
        assert streamer.step_count == pytest.approx(truth.step_count, abs=4)

    def test_long_stream_capacity_stays_bounded(self, user):
        # The rolling buffer must amortise growth: streaming minutes of
        # data through small batches may double the capacity array a few
        # times but never lets it track the total history length.
        streamer = StreamingPTrack(100.0, max_buffer_s=15.0)
        trace, _ = simulate_walk(user, 120.0, rng=np.random.default_rng(11))
        for i in range(0, trace.n_samples, 50):
            streamer.append(trace.linear_acceleration[i : i + 50])
        assert streamer._data.shape[0] <= 4 * streamer._max_buffer
        assert streamer._size <= streamer._max_buffer

    def test_long_stream_matches_batch_results(self, user):
        # Trims and in-place tail copies must not perturb the counted
        # steps or credited distance relative to the batch pipeline.
        trace, truth = simulate_walk(user, 120.0, rng=np.random.default_rng(12))
        expected = PTrack(profile=user.profile).track(trace)

        streamer = StreamingPTrack(100.0, profile=user.profile, max_buffer_s=15.0)
        for i in range(0, trace.n_samples, 128):
            streamer.append(trace.linear_acceleration[i : i + 128])
        streamer.flush()
        assert abs(streamer.step_count - expected.step_count) <= 4
        assert streamer.step_count == pytest.approx(truth.step_count, abs=6)
        assert streamer.distance_m == pytest.approx(expected.distance_m, rel=0.08)
