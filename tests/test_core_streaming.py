"""Unit/integration tests for repro.core.streaming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import PTrack
from repro.core.streaming import ReprocessingStreamingPTrack, StreamingPTrack
from repro.exceptions import ConfigurationError, SignalError
from repro.simulation.walker import simulate_walk


class TestConstruction:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            StreamingPTrack(0.0)

    def test_rejects_short_settle(self):
        with pytest.raises(ConfigurationError):
            StreamingPTrack(100.0, settle_s=0.5)

    def test_rejects_small_buffer(self):
        with pytest.raises(ConfigurationError):
            StreamingPTrack(100.0, settle_s=2.5, max_buffer_s=5.0)

    def test_latency_property(self):
        assert StreamingPTrack(100.0, settle_s=3.0).latency_s == 3.0


class TestStreamingEquivalence:
    @pytest.mark.parametrize("batch", [64, 256, 1024])
    def test_steps_match_batch_pipeline(self, user, batch):
        trace, truth = simulate_walk(user, 40.0, rng=np.random.default_rng(batch))
        expected = PTrack(profile=user.profile).track(trace)

        streamer = StreamingPTrack(100.0, profile=user.profile)
        data = trace.linear_acceleration
        for i in range(0, data.shape[0], batch):
            streamer.append(data[i : i + batch])
        streamer.flush()
        assert abs(streamer.step_count - expected.step_count) <= 2
        assert streamer.distance_m == pytest.approx(expected.distance_m, rel=0.08)

    def test_interference_stays_silent(self, eating_trace):
        streamer = StreamingPTrack(100.0)
        data = eating_trace.linear_acceleration
        for i in range(0, data.shape[0], 200):
            streamer.append(data[i : i + 200])
        streamer.flush()
        assert streamer.step_count <= 2

    def test_events_monotone_and_unique(self, user):
        trace, _ = simulate_walk(user, 30.0, rng=np.random.default_rng(3))
        streamer = StreamingPTrack(100.0, profile=user.profile)
        events = []
        for i in range(0, trace.n_samples, 150):
            steps, _ = streamer.append(trace.linear_acceleration[i : i + 150])
            events.extend(steps)
        steps, _ = streamer.flush()
        events.extend(steps)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert len(times) == len(set(times))

    def test_strides_lockstep_with_steps(self, user):
        trace, _ = simulate_walk(user, 30.0, rng=np.random.default_rng(4))
        streamer = StreamingPTrack(100.0, profile=user.profile)
        n_steps = n_strides = 0
        for i in range(0, trace.n_samples, 90):
            steps, strides = streamer.append(trace.linear_acceleration[i : i + 90])
            n_steps += len(steps)
            n_strides += len(strides)
        steps, strides = streamer.flush()
        n_steps += len(steps)
        n_strides += len(strides)
        assert n_strides <= n_steps
        assert n_strides >= 0.8 * n_steps


class TestStreamingBehaviour:
    def test_no_profile_no_strides(self, user):
        trace, _ = simulate_walk(user, 20.0, rng=np.random.default_rng(5))
        streamer = StreamingPTrack(100.0)
        _, strides = streamer.append(trace.linear_acceleration)
        _, tail = streamer.flush()
        assert strides == [] and tail == []
        assert streamer.distance_m == 0.0

    def test_settle_window_delays_crediting(self, user):
        trace, _ = simulate_walk(user, 10.0, rng=np.random.default_rng(6))
        streamer = StreamingPTrack(100.0, settle_s=5.0, max_buffer_s=30.0)
        steps, _ = streamer.append(trace.linear_acceleration[:600])  # 6 s
        # Only the first ~1 s can be settled with a 5 s horizon.
        assert len(steps) <= 4

    def test_empty_append(self):
        streamer = StreamingPTrack(100.0)
        assert streamer.append(np.empty((0, 3))) == ([], [])

    def test_rejects_bad_shape(self):
        streamer = StreamingPTrack(100.0)
        with pytest.raises(SignalError):
            streamer.append(np.zeros((10, 2)))

    def test_rejects_nan(self):
        streamer = StreamingPTrack(100.0)
        bad = np.zeros((10, 3))
        bad[0, 0] = np.nan
        with pytest.raises(SignalError):
            streamer.append(bad)

    def test_long_stream_bounded_memory(self, user):
        streamer = StreamingPTrack(100.0, max_buffer_s=12.0)
        trace, truth = simulate_walk(user, 60.0, rng=np.random.default_rng(7))
        for i in range(0, trace.n_samples, 100):
            streamer.append(trace.linear_acceleration[i : i + 100])
        assert streamer._size <= 12.0 * 100
        streamer.flush()
        assert streamer.step_count == pytest.approx(truth.step_count, abs=4)

    def test_long_stream_capacity_stays_bounded(self, user):
        # The rolling buffer must amortise growth: streaming minutes of
        # data through small batches may double the capacity array a few
        # times but never lets it track the total history length.
        streamer = StreamingPTrack(100.0, max_buffer_s=15.0)
        trace, _ = simulate_walk(user, 120.0, rng=np.random.default_rng(11))
        for i in range(0, trace.n_samples, 50):
            streamer.append(trace.linear_acceleration[i : i + 50])
        assert streamer._data.shape[0] <= 4 * streamer._max_buffer
        assert streamer._size <= streamer._max_buffer

    def test_rejects_non_float64(self):
        # Anything but float64 would force a silent conversion copy on
        # every append; the contract is to fail loudly instead.
        streamer = StreamingPTrack(100.0)
        with pytest.raises(SignalError, match="float64"):
            streamer.append(np.zeros((10, 3), dtype=np.float32))

    def test_rejects_non_array(self):
        streamer = StreamingPTrack(100.0)
        with pytest.raises(SignalError, match="asarray"):
            streamer.append([[0.0, 0.0, 9.8]])

    def test_reset_replays_identically_without_reallocating(self, user):
        trace, _ = simulate_walk(user, 20.0, rng=np.random.default_rng(21))
        streamer = StreamingPTrack(100.0, profile=user.profile)
        data = trace.linear_acceleration
        for i in range(0, data.shape[0], 70):
            streamer.append(data[i : i + 70])
        streamer.flush()
        first_steps = streamer.step_count
        first_dist = streamer.distance_m
        buf, filt = streamer._data, streamer._filt

        streamer.reset()
        assert streamer.step_count == 0 and streamer.distance_m == 0.0
        assert streamer.op_stats.samples_in == 0
        assert streamer._data is buf and streamer._filt is filt
        for i in range(0, data.shape[0], 70):
            streamer.append(data[i : i + 70])
        streamer.flush()
        assert streamer.step_count == first_steps
        assert streamer.distance_m == first_dist

    def test_long_stream_matches_batch_results(self, user):
        # Trims and in-place tail copies must not perturb the counted
        # steps or credited distance relative to the batch pipeline.
        trace, truth = simulate_walk(user, 120.0, rng=np.random.default_rng(12))
        expected = PTrack(profile=user.profile).track(trace)

        streamer = StreamingPTrack(100.0, profile=user.profile, max_buffer_s=15.0)
        for i in range(0, trace.n_samples, 128):
            streamer.append(trace.linear_acceleration[i : i + 128])
        streamer.flush()
        assert abs(streamer.step_count - expected.step_count) <= 4
        assert streamer.step_count == pytest.approx(truth.step_count, abs=6)
        assert streamer.distance_m == pytest.approx(expected.distance_m, rel=0.08)


def _stream(streamer, data, chunks):
    """Drive ``data`` through ``streamer`` in the given chunk sizes."""
    steps, strides = [], []
    pos = 0
    for size in chunks:
        st, sr = streamer.append(data[pos : pos + size])
        steps.extend(st)
        strides.extend(sr)
        pos += size
    if pos < data.shape[0]:
        st, sr = streamer.append(data[pos:])
        steps.extend(st)
        strides.extend(sr)
    st, sr = streamer.flush()
    steps.extend(st)
    strides.extend(sr)
    return steps, strides


class TestChunkInvariance:
    """Credited output is a pure function of the sample stream.

    The incremental core only does work at absolute hop boundaries, so
    how the stream is sliced into append calls — sample by sample,
    uneven bursts, or one giant chunk — must not change a single
    credited step or stride.
    """

    @pytest.fixture(scope="class")
    def stream_case(self, user):
        trace, _ = simulate_walk(user, 20.0, rng=np.random.default_rng(31))
        data = np.ascontiguousarray(trace.linear_acceleration)

        def run(chunks):
            streamer = StreamingPTrack(100.0, profile=user.profile)
            steps, strides = _stream(streamer, data, chunks)
            return (
                [(e.index, e.time) for e in steps],
                [(e.time, e.length_m) for e in strides],
            )

        reference = run([data.shape[0]])  # one giant chunk
        assert len(reference[0]) > 20
        return data, run, reference

    def test_single_sample_appends(self, stream_case):
        data, run, reference = stream_case
        assert run([1] * data.shape[0]) == reference

    @pytest.mark.parametrize("batch", [7, 33, 100, 256, 1999])
    def test_fixed_batches(self, stream_case, batch):
        data, run, reference = stream_case
        n = data.shape[0]
        assert run([batch] * (n // batch)) == reference

    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=500), max_size=60))
    def test_arbitrary_chunkings(self, stream_case, chunks):
        data, run, reference = stream_case
        assert run(chunks) == reference


class TestBoundedPerAppendWork:
    """Regression guard for the amortised-O(1) append claim."""

    def test_work_counters_linear_in_input(self, user):
        trace, _ = simulate_walk(user, 60.0, rng=np.random.default_rng(41))
        data = trace.linear_acceleration
        streamer = StreamingPTrack(100.0, profile=user.profile)
        for i in range(0, data.shape[0], 50):
            streamer.append(data[i : i + 50])
        ops = streamer.op_stats
        assert ops.samples_in == data.shape[0]
        # Filtering touches each sample once plus bounded block context.
        assert ops.samples_filtered <= 4 * ops.samples_in
        # Segmentation rescans a bounded retained window per pass.
        assert ops.segmentation_samples <= 8 * ops.samples_in
        # Every staged cycle is classified exactly once.
        assert ops.offset_evaluations <= ops.cycles_staged
        assert ops.stepping_tests <= ops.cycles_staged

    def test_work_independent_of_append_cadence(self, user):
        # The defining O(1) property: slicing the same stream into 8x
        # more append calls must not change how much signal work is
        # done (the pre-PR driver's work scaled with the drain count).
        trace, _ = simulate_walk(user, 40.0, rng=np.random.default_rng(42))
        data = trace.linear_acceleration
        ops = {}
        for batch in (25, 200):
            streamer = StreamingPTrack(100.0, profile=user.profile)
            for i in range(0, data.shape[0], batch):
                streamer.append(data[i : i + batch])
            ops[batch] = streamer.op_stats
        assert ops[25].samples_filtered == ops[200].samples_filtered
        assert ops[25].segmentation_samples == ops[200].segmentation_samples
        assert ops[25].cycles_staged == ops[200].cycles_staged
        assert ops[25].appends == 8 * ops[200].appends

    def test_op_stats_snapshot_is_a_copy(self):
        streamer = StreamingPTrack(100.0)
        snap = streamer.op_stats
        streamer.append(np.zeros((300, 3)))
        assert snap.samples_in == 0
        assert streamer.op_stats.samples_in == 300
        assert set(snap.as_dict()) == {
            "samples_in", "appends", "passes", "samples_filtered",
            "segmentation_samples", "cycles_staged",
            "offset_evaluations", "stepping_tests",
            "samples_repaired", "samples_rejected", "gaps_reset",
        }


class TestReprocessingReference:
    """The pre-PR rolling-buffer driver stays as the behaviour oracle."""

    def test_incremental_matches_reprocessing(self, user):
        trace, _ = simulate_walk(user, 40.0, rng=np.random.default_rng(51))
        data = trace.linear_acceleration
        fast = StreamingPTrack(100.0, profile=user.profile)
        slow = ReprocessingStreamingPTrack(100.0, profile=user.profile)
        for i in range(0, data.shape[0], 100):
            fast.append(data[i : i + 100])
            slow.append(data[i : i + 100])
        fast.flush()
        slow.flush()
        assert abs(fast.step_count - slow.step_count) <= 2
        assert fast.distance_m == pytest.approx(slow.distance_m, rel=0.05)
