"""Unit tests for repro.simulation.walker."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sensing.device import WearableDevice
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk


class TestSimulateWalk:
    def test_trace_shape_and_rate(self, user):
        trace, _ = simulate_walk(user, 10.0, sample_rate_hz=50.0,
                                 device=WearableDevice.ideal(50.0))
        assert trace.sample_rate_hz == 50.0
        assert trace.n_samples == 500

    def test_step_count_matches_cadence(self, user):
        _, truth = simulate_walk(user, 30.0, rng=None)
        expected = 30.0 * user.cadence_hz * 2
        assert truth.step_count == pytest.approx(expected, abs=2)

    def test_distance_matches_stride(self, user):
        _, truth = simulate_walk(user, 30.0, rng=None)
        assert truth.total_distance_m == pytest.approx(
            truth.step_count * user.stride_m, rel=0.05
        )

    def test_step_times_increasing(self, walk_trace):
        _, truth = walk_trace
        assert np.all(np.diff(truth.step_times) > 0)

    def test_stride_truth_aligned_with_steps(self, walk_trace):
        _, truth = walk_trace
        assert truth.stride_lengths_m.shape == truth.step_times.shape
        assert truth.bounce_m.shape == truth.step_times.shape

    def test_heading_rotates_path(self, user):
        _, truth = simulate_walk(user, 10.0, rng=None, heading_rad=np.pi / 2)
        end = truth.body_positions_m[-1, :2] - truth.body_positions_m[0, :2]
        # Walking north: y displacement dominates.
        assert abs(end[1]) > 5 * abs(end[0])

    def test_heading_array_accepted(self, user):
        n = 1000
        headings = np.linspace(0, np.pi / 2, n)
        trace, truth = simulate_walk(user, 10.0, rng=None, heading_rad=headings)
        assert truth.headings_rad.shape == (n,)

    def test_rigid_mode_has_weaker_horizontal(self, user):
        swing, _ = simulate_walk(user, 20.0, rng=None, arm_mode="swing")
        rigid, _ = simulate_walk(user, 20.0, rng=None, arm_mode="rigid")
        assert np.std(rigid.horizontal) < 0.7 * np.std(swing.horizontal)

    def test_swinging_only_no_steps(self, user):
        _, truth = simulate_walk(user, 15.0, rng=None, body=False)
        assert truth.step_count == 0
        assert truth.total_distance_m == 0.0

    def test_noise_changes_trace(self, user):
        clean, _ = simulate_walk(user, 5.0, rng=None)
        noisy, _ = simulate_walk(user, 5.0, rng=np.random.default_rng(0))
        assert not np.allclose(
            clean.linear_acceleration, noisy.linear_acceleration
        )

    def test_deterministic_for_seed(self, user):
        a, ta = simulate_walk(user, 5.0, rng=np.random.default_rng(3))
        b, tb = simulate_walk(user, 5.0, rng=np.random.default_rng(3))
        assert np.array_equal(a.linear_acceleration, b.linear_acceleration)
        assert np.array_equal(ta.step_times, tb.step_times)

    def test_start_time_propagates(self, user):
        trace, truth = simulate_walk(user, 5.0, rng=None, start_time=100.0)
        assert trace.start_time == 100.0
        assert truth.step_times[0] >= 100.0

    def test_vertical_acceleration_realistic_scale(self, walk_trace):
        trace, _ = walk_trace
        std = np.std(trace.vertical)
        assert 0.5 < std < 6.0  # human-gait band, not silly

    def test_rejects_bad_mode(self, user):
        with pytest.raises(SimulationError):
            simulate_walk(user, 5.0, arm_mode="jazz")

    def test_rejects_body_false_with_rigid(self, user):
        with pytest.raises(SimulationError):
            simulate_walk(user, 5.0, arm_mode="rigid", body=False)

    def test_rejects_nonpositive_duration(self, user):
        with pytest.raises(SimulationError):
            simulate_walk(user, 0.0)

    def test_rejects_wrong_heading_shape(self, user):
        with pytest.raises(SimulationError):
            simulate_walk(user, 5.0, heading_rad=np.zeros(3))

    def test_rejects_rate_mismatch_with_device(self, user):
        with pytest.raises(SimulationError):
            simulate_walk(
                user, 5.0, sample_rate_hz=100.0, device=WearableDevice.ideal(50.0)
            )
