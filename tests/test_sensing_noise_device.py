"""Unit tests for repro.sensing.noise and repro.sensing.device."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensing.device import WearableDevice
from repro.sensing.imu import IMUTrace
from repro.sensing.noise import NoiseModel


class TestNoiseModel:
    def test_ideal_is_identity(self):
        rng = np.random.default_rng(0)
        acc = np.random.default_rng(1).normal(size=(50, 3))
        out = NoiseModel.ideal().apply(acc, rng)
        assert np.array_equal(out, acc)

    def test_white_noise_level(self):
        rng = np.random.default_rng(0)
        model = NoiseModel(white_sigma=0.1, bias_sigma=0.0)
        out = model.apply(np.zeros((20000, 3)), rng)
        assert np.std(out) == pytest.approx(0.1, rel=0.05)

    def test_bias_constant_per_trace(self):
        rng = np.random.default_rng(0)
        model = NoiseModel(white_sigma=0.0, bias_sigma=0.05)
        out = model.apply(np.zeros((100, 3)), rng)
        # Same offset on every sample of an axis.
        assert np.allclose(out, out[0:1, :])
        assert not np.allclose(out, 0.0)

    def test_bias_walk_grows(self):
        rng = np.random.default_rng(0)
        model = NoiseModel(white_sigma=0.0, bias_sigma=0.0, bias_walk_sigma=0.01)
        out = model.apply(np.zeros((5000, 3)), rng)
        assert np.std(out[-100:]) > np.std(out[:100])

    def test_quantization(self):
        rng = np.random.default_rng(0)
        model = NoiseModel(white_sigma=0.0, bias_sigma=0.0, quantization_step=0.5)
        acc = np.full((10, 3), 0.3)
        out = model.apply(acc, rng)
        assert np.allclose(out, 0.5)

    def test_does_not_mutate_input(self):
        rng = np.random.default_rng(0)
        acc = np.zeros((10, 3))
        NoiseModel.consumer_wrist().apply(acc, rng)
        assert np.all(acc == 0.0)

    def test_rejects_negative_params(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(white_sigma=-0.1)

    def test_rejects_bad_shape(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            NoiseModel().apply(np.zeros((10, 2)), rng)


class TestWearableDevice:
    def test_ideal_observe_is_exact(self):
        dev = WearableDevice.ideal()
        acc = np.random.default_rng(0).normal(size=(100, 3))
        trace = dev.observe(acc, rng=np.random.default_rng(1))
        assert np.allclose(trace.linear_acceleration, acc)

    def test_observe_without_rng_is_noiseless(self):
        dev = WearableDevice()
        acc = np.ones((50, 3))
        trace = dev.observe(acc, rng=None)
        assert np.allclose(trace.linear_acceleration, acc)

    def test_observe_with_rng_adds_noise(self):
        dev = WearableDevice()
        acc = np.zeros((500, 3))
        trace = dev.observe(acc, rng=np.random.default_rng(2))
        assert np.std(trace.linear_acceleration) > 0.01

    def test_observe_returns_imutrace_with_metadata(self):
        dev = WearableDevice(sample_rate_hz=50.0)
        trace = dev.observe(np.zeros((10, 3)), start_time=3.0)
        assert isinstance(trace, IMUTrace)
        assert trace.sample_rate_hz == 50.0
        assert trace.start_time == 3.0

    def test_attitude_error_mixes_axes(self):
        dev = WearableDevice(
            noise=NoiseModel.ideal(), attitude_error_rad=0.2
        )
        acc = np.zeros((100, 3))
        acc[:, 2] = 1.0  # pure vertical
        trace = dev.observe(acc, rng=np.random.default_rng(3))
        assert np.abs(trace.horizontal).max() > 0.01

    def test_deterministic_given_seed(self):
        dev = WearableDevice()
        acc = np.zeros((100, 3))
        t1 = dev.observe(acc, rng=np.random.default_rng(7))
        t2 = dev.observe(acc, rng=np.random.default_rng(7))
        assert np.array_equal(t1.linear_acceleration, t2.linear_acceleration)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            WearableDevice(sample_rate_hz=0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            WearableDevice().observe(np.zeros((10, 4)))
