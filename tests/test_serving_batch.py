"""Tests for the fleet-batched serving path.

Three layers:

* kernel differentials — every batched signal/measurement kernel
  against its scalar reference, bit for bit, on ragged inputs
  (hypothesis-driven where the input space is wide);
* pool equivalence — :class:`BatchedSessionPool` against serial
  sessions and the lockstep pool: credits, op-stats, chunk invariance,
  sessions joining/leaving mid-stream, failed-session exclusion;
* scratch-buffer mechanics — :class:`FleetBatchBuffer` growth/reuse.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import (
    batched_cycle_solutions,
    batched_stage_measurements,
)
from repro.core.config import PTrackConfig
from repro.core.offset import cycle_offset
from repro.core.streaming import StreamingPTrack
from repro.core.stride import PTrackStrideEstimator
from repro.exceptions import SignalError
from repro.runtime.backends import get_backend
from repro.serving import (
    BatchedSessionPool,
    FleetBatchBuffer,
    SessionPool,
    synthesize_workload,
)
from repro.signal.batched import (
    batched_crossing_indices,
    batched_segment_windows,
    crossing_indices,
    multi_window_extrema,
    pack_windows,
)
from repro.signal.peaks import detect_peaks, detect_valleys
from repro.signal.projection import anterior_direction, project_horizontal
from repro.signal.segmentation import segment_gait_cycles
from repro.types import GaitType, UserProfile

RATE = 100.0


def _walky(n, seed, freq=1.8, noise=0.25):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / RATE
    return np.sin(2 * np.pi * freq * t) + noise * rng.standard_normal(n)


# ----------------------------------------------------------------------
# Kernel differentials
# ----------------------------------------------------------------------

ragged_windows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=160),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=40, deadline=None)
@given(ragged_windows, st.floats(0.05, 1.0), st.integers(1, 12))
def test_multi_window_extrema_matches_scalar(specs, prom, dist):
    windows = [_walky(n, seed) for n, seed in specs]
    for negate, scalar in ((False, detect_peaks), (True, detect_valleys)):
        got = multi_window_extrema(windows, prom, dist, negate=negate)
        assert len(got) == len(windows)
        for w, g in zip(windows, got):
            np.testing.assert_array_equal(
                g, scalar(w, min_prominence=prom, min_distance=dist)
            )


def test_multi_window_extrema_per_window_params():
    windows = [_walky(120, 3), _walky(80, 4), _walky(50, 5)]
    proms = [0.2, 0.5, 0.9]
    dists = [1, 5, 9]
    got = multi_window_extrema(windows, proms, dists)
    for w, p, d, g in zip(windows, proms, dists, got):
        np.testing.assert_array_equal(
            g, detect_peaks(w, min_prominence=p, min_distance=d)
        )


@settings(max_examples=40, deadline=None)
@given(ragged_windows, st.floats(0.01, 0.8))
def test_batched_crossing_indices_matches_scalar(specs, hyst):
    windows = [_walky(n, seed, noise=0.4) for n, seed in specs]
    got = batched_crossing_indices(windows, hyst)
    assert len(got) == len(windows)
    for w, g in zip(windows, got):
        np.testing.assert_array_equal(g, crossing_indices(w, hyst))


@settings(max_examples=25, deadline=None)
@given(ragged_windows)
def test_batched_segment_windows_matches_scalar(specs):
    windows = [_walky(max(n, 0), seed) for n, seed in specs]
    got = batched_segment_windows(windows, RATE)
    for w, g in zip(windows, got):
        assert g == segment_gait_cycles(w, RATE)


def test_batched_segment_windows_poisoned_window_in_place():
    good = _walky(200, 7)
    bad = good.copy()
    bad[50] = np.nan
    results = batched_segment_windows([good, bad, good], RATE)
    assert results[0] == segment_gait_cycles(good, RATE) == results[2]
    assert isinstance(results[1], SignalError)


def test_pack_windows_separators_and_negation():
    windows = [_walky(9, 0), np.empty(0), _walky(4, 1)]
    concat, starts, lens = pack_windows(windows)
    assert concat.size == sum(w.size for w in windows) + len(windows)
    for s, n, w in zip(starts, lens, windows):
        np.testing.assert_array_equal(concat[s : s + n], w)
        assert concat[s + n] == np.inf
    neg, starts2, _ = pack_windows(windows, negate=True, fill=0.0)
    np.testing.assert_array_equal(starts, starts2)
    for s, n, w in zip(starts2, lens, windows):
        np.testing.assert_array_equal(neg[s : s + n], -w)
        assert neg[s + n] == 0.0


def _scalar_stage(v_seg, h_seg, cfg):
    """The measurement half of StreamingPTrack._stage, verbatim."""
    anterior_ok = True
    try:
        direction = anterior_direction(h_seg)
        a_seg = project_horizontal(h_seg, direction)
    except SignalError:
        a_seg = np.zeros_like(v_seg)
        anterior_ok = False
    motion_ok = float(np.std(v_seg - v_seg.mean())) >= cfg.min_vertical_std
    offset = cycle_offset(v_seg, a_seg, cfg) if motion_ok else 0.0
    return a_seg, anterior_ok, motion_ok, offset


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=4, max_value=140),
            st.integers(min_value=0, max_value=10_000),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_batched_stage_measurements_matches_scalar(specs):
    cfg = PTrackConfig()
    v_segs = [_walky(n, seed) for n, seed in specs]
    h_segs = [
        np.column_stack([_walky(n, seed + 1), _walky(n, seed + 2, freq=0.9)])
        for n, seed in specs
    ]
    got = batched_stage_measurements(v_segs, h_segs, cfg)
    assert len(got) == len(specs)
    for v, h, m in zip(v_segs, h_segs, got):
        a_ref, ant_ref, mot_ref, off_ref = _scalar_stage(v, h, cfg)
        a_seg, anterior_ok, motion_ok, offset = m
        assert anterior_ok == ant_ref
        assert motion_ok == mot_ref
        assert offset == off_ref  # bitwise
        np.testing.assert_array_equal(a_seg, a_ref)


def test_batched_stage_measurements_short_moving_cycle_errors_in_place():
    cfg = PTrackConfig()
    # 3-sample cycle with enough variance to pass the motion gate: the
    # scalar path raises out of the offset extraction.
    v = np.asarray([0.0, 5.0, -5.0])
    h = np.column_stack([v, v * 0.5])
    ok_v = _walky(80, 1)
    ok_h = np.column_stack([_walky(80, 2), _walky(80, 3)])
    got = batched_stage_measurements([ok_v, v], [ok_h, h], cfg)
    assert isinstance(got[1], SignalError)
    a_ref, ant_ref, mot_ref, off_ref = _scalar_stage(ok_v, ok_h, cfg)
    assert got[0][1] == ant_ref and got[0][2] == mot_ref
    assert got[0][3] == off_ref


@pytest.mark.parametrize("gait", [GaitType.STEPPING, GaitType.WALKING])
def test_batched_cycle_solutions_matches_scalar(gait):
    profile = UserProfile(arm_length_m=0.7, leg_length_m=0.9, calibration_k=2.0)
    estimator = PTrackStrideEstimator(profile)
    dt = 1.0 / RATE
    items = []
    for seed in range(6):
        n = 60 + 7 * seed
        v = _walky(n, seed)
        h = np.column_stack([_walky(n, seed + 50), _walky(n, seed + 90)])
        a = _walky(n, seed + 130)
        items.append((v, h, a, gait, profile))
    got = batched_cycle_solutions(items, dt)
    for (v, h, a, g, _p), solved in zip(items, got):
        assert solved == estimator.cycle_stride(v, h, dt, g, a)


def test_batched_cycle_solutions_skips_unsolvable():
    profile = UserProfile(arm_length_m=0.7, leg_length_m=0.9, calibration_k=2.0)
    v = _walky(8, 0)  # too short for a WALKING solve
    h = np.column_stack([v, v])
    got = batched_cycle_solutions(
        [(v, h, None, GaitType.WALKING, profile)], 1.0 / RATE
    )
    assert got == [None]


# ----------------------------------------------------------------------
# Pool equivalence
# ----------------------------------------------------------------------


def _serve_serially(workloads, batch):
    results = []
    for w in workloads:
        sess = StreamingPTrack(RATE, profile=w.profile)
        steps, strides = [], []
        for off in range(0, w.samples.shape[0], batch):
            st_, sr = sess.append(w.samples[off : off + batch])
            steps.extend(st_)
            strides.extend(sr)
        st_, sr = sess.flush()
        steps.extend(st_)
        strides.extend(sr)
        results.append((steps, strides, sess.op_stats.as_dict()))
    return results


def _serve_batched(workloads, batch, pool_cls=BatchedSessionPool, **kw):
    if pool_cls is BatchedSessionPool:
        # Test fleets are small; force the packed path unless a test
        # opts into the small-fleet scalar fast path explicitly.
        kw.setdefault("small_fleet_cutoff", 0)
    pool = pool_cls(RATE, **kw)
    sids = pool.add_sessions([w.profile for w in workloads])
    results = [([], []) for _ in sids]
    longest = max(w.samples.shape[0] for w in workloads)
    for off in range(0, longest, batch):
        live = [k for k, w in enumerate(workloads) if off < w.samples.shape[0]]
        out = pool.append(
            [sids[k] for k in live],
            [workloads[k].samples[off : off + batch] for k in live],
        )
        for k, (st_, sr) in zip(live, out):
            results[k][0].extend(st_)
            results[k][1].extend(sr)
    for k, (st_, sr) in enumerate(pool.flush(sids)):
        results[k][0].extend(st_)
        results[k][1].extend(sr)
    return [
        (steps, strides, pool.session(sids[k]).op_stats.as_dict())
        for k, (steps, strides) in enumerate(results)
    ], pool


def _assert_credits_identical(got, ref):
    assert len(got) == len(ref)
    for (s1, r1, o1), (s2, r2, o2) in zip(got, ref):
        assert [(e.index, e.time, e.gait_type) for e in s1] == [
            (e.index, e.time, e.gait_type) for e in s2
        ]
        assert [(e.time, e.length_m, e.bounce_m) for e in r1] == [
            (e.time, e.length_m, e.bounce_m) for e in r2
        ]
        assert o1 == o2


def test_batched_pool_bit_identical_to_serial_and_lockstep():
    workloads = synthesize_workload(6, 16.0, seed=21)
    serial = _serve_serially(workloads, batch=64)
    batched, _ = _serve_batched(workloads, batch=64)
    lockstep, _ = _serve_batched(workloads, batch=64, pool_cls=SessionPool)
    _assert_credits_identical(batched, serial)
    _assert_credits_identical(lockstep, serial)


def test_batched_pool_ragged_session_lengths():
    # Sessions leave mid-stream: shorter traces stop receiving batches
    # while the rest keep going.
    import dataclasses

    workloads = [
        dataclasses.replace(w, samples=w.samples[: (k + 2) * 300])
        for k, w in enumerate(synthesize_workload(5, 20.0, seed=22))
    ]
    serial = _serve_serially(workloads, batch=96)
    batched, _ = _serve_batched(workloads, batch=96)
    _assert_credits_identical(batched, serial)


def test_batched_pool_session_joins_mid_round():
    workloads = synthesize_workload(3, 14.0, seed=23)
    late = workloads[2]
    pool = BatchedSessionPool(RATE, small_fleet_cutoff=0)
    sids = pool.add_sessions([w.profile for w in workloads[:2]])
    acc = {sid: ([], []) for sid in sids}
    batch = 128
    n = workloads[0].samples.shape[0]
    late_sid = None
    for off in range(0, n, batch):
        ids = list(sids)
        data = [w.samples[off : off + batch] for w in workloads[:2]]
        if off >= 512:
            if late_sid is None:
                (late_sid,) = pool.add_sessions([late.profile])
                acc[late_sid] = ([], [])
            ids.append(late_sid)
            data.append(late.samples[off - 512 : off - 512 + batch])
        for sid, (st_, sr) in zip(ids, pool.append(ids, data)):
            acc[sid][0].extend(st_)
            acc[sid][1].extend(sr)
    for sid, (st_, sr) in zip(
        list(sids) + [late_sid], pool.flush(list(sids) + [late_sid])
    ):
        acc[sid][0].extend(st_)
        acc[sid][1].extend(sr)
    # Serial references: the two originals see the full trace, the
    # late joiner sees its suffix-aligned stream.
    refs = _serve_serially(workloads[:2], batch=batch)
    for sid, (steps, strides, _ops) in zip(sids, refs):
        assert [e.index for e in acc[sid][0]] == [e.index for e in steps]
        assert [e.length_m for e in acc[sid][1]] == [
            e.length_m for e in strides
        ]
    sess = StreamingPTrack(RATE, profile=late.profile)
    ref_steps, ref_strides = [], []
    for off in range(0, n - 512, batch):
        st_, sr = sess.append(late.samples[off : off + batch])
        ref_steps.extend(st_)
        ref_strides.extend(sr)
    st_, sr = sess.flush()
    ref_steps.extend(st_)
    ref_strides.extend(sr)
    assert [e.index for e in acc[late_sid][0]] == [e.index for e in ref_steps]
    assert [e.length_m for e in acc[late_sid][1]] == [
        e.length_m for e in ref_strides
    ]


def test_batched_pool_failed_session_excluded_from_pack():
    workloads = synthesize_workload(4, 12.0, seed=24)
    pool = BatchedSessionPool(RATE, small_fleet_cutoff=0)
    sids = pool.add_sessions([w.profile for w in workloads])
    batch = 128
    # Poison session 1 on the second append with a wrong-dtype batch.
    out = pool.append(sids, [w.samples[:batch] for w in workloads])
    assert all(isinstance(o, tuple) for o in out)
    bad = workloads[1].samples[batch : 2 * batch].astype(np.float32)
    data = [w.samples[batch : 2 * batch] for w in workloads]
    data[1] = bad
    pool.append(sids, data)
    assert sids[1] in pool.failed_sessions
    # The survivors keep crediting bit-identically to serial sessions.
    acc = {sid: ([], []) for sid in sids}
    n = workloads[0].samples.shape[0]
    for off in range(2 * batch, n, batch):
        out = pool.append(sids, [w.samples[off : off + batch] for w in workloads])
        for sid, (st_, sr) in zip(sids, out):
            acc[sid][0].extend(st_)
            acc[sid][1].extend(sr)
    for sid, (st_, sr) in zip(sids, pool.flush(sids)):
        acc[sid][0].extend(st_)
        acc[sid][1].extend(sr)
    assert acc[sids[1]] == ([], [])
    serial = _serve_serially(
        [w for k, w in enumerate(workloads) if k != 1], batch=batch
    )
    for (steps, strides, _), sid in zip(serial, [sids[0], sids[2], sids[3]]):
        # Credits delivered before the poisoning are not in acc; match
        # on the suffix the serial trace credits after that point.
        got = [e.index for e in acc[sid][0]]
        ref = [e.index for e in steps]
        assert got == ref[len(ref) - len(got) :]


def test_batched_pool_chunk_invariant_credits():
    workloads = synthesize_workload(4, 15.0, seed=25)
    a, _ = _serve_batched(workloads, batch=64)
    b, _ = _serve_batched(workloads, batch=512)
    for (s1, r1, _o1), (s2, r2, _o2) in zip(a, b):
        assert [(e.index, e.time) for e in s1] == [(e.index, e.time) for e in s2]
        assert [(e.time, e.length_m) for e in r1] == [
            (e.time, e.length_m) for e in r2
        ]


def test_batched_pool_small_fleet_fast_path_bit_identical():
    # With the cutoff raised above the fleet size every round takes the
    # scalar lockstep fast path; credits must stay bit-identical to
    # serial and to the packed path.
    workloads = synthesize_workload(4, 14.0, seed=28)
    serial = _serve_serially(workloads, batch=128)
    fast, _ = _serve_batched(workloads, batch=128, small_fleet_cutoff=16)
    packed, _ = _serve_batched(workloads, batch=128, small_fleet_cutoff=0)
    _assert_credits_identical(fast, serial)
    _assert_credits_identical(packed, serial)


def test_batched_pool_fast_path_skipped_on_tolerance_backend():
    # float32 is not bit-identical, so the fast path (which computes in
    # float64) must never trigger: a huge cutoff and a zero cutoff must
    # produce identical float32 credits.
    workloads = synthesize_workload(3, 12.0, seed=29)
    a, _ = _serve_batched(
        workloads, batch=128, backend="float32", small_fleet_cutoff=10**9
    )
    b, _ = _serve_batched(
        workloads, batch=128, backend="float32", small_fleet_cutoff=0
    )
    _assert_credits_identical(a, b)


def test_batched_pool_float32_backend_close_totals():
    workloads = synthesize_workload(5, 15.0, seed=26)
    ref, _ = _serve_batched(workloads, batch=128)
    f32, pool = _serve_batched(workloads, batch=128, backend="float32")
    assert pool.backend.name == "float32"
    tot_ref = sum(len(s) for s, _, _ in ref)
    tot_f32 = sum(len(s) for s, _, _ in f32)
    assert abs(tot_f32 - tot_ref) <= max(2, round(0.02 * tot_ref))


def test_batched_pool_backend_instance_passthrough():
    be = get_backend("numpy")
    pool = BatchedSessionPool(RATE, backend=be)
    assert pool.backend is be


def test_batched_pool_telemetry_instruments():
    from repro.telemetry.registry import MetricsRegistry

    reg = MetricsRegistry()
    workloads = synthesize_workload(3, 10.0, seed=27)
    pool = BatchedSessionPool(RATE, telemetry=reg)
    sids = pool.add_sessions([w.profile for w in workloads])
    for off in range(0, workloads[0].samples.shape[0], 256):
        pool.append(sids, [w.samples[off : off + 256] for w in workloads])
    pool.flush(sids)
    snap = reg.snapshot()
    assert snap["counters"]["serving_batch_appends_total"] > 0
    assert snap["counters"]["serving_batch_rounds_total"] > 0
    assert snap["gauges"]["serving_batch_occupancy"] >= 1
    assert snap["gauges"]["serving_batch_sessions"] == 3
    assert snap["histograms"]["serving_batch_round_seconds"]["count"] > 0


# ----------------------------------------------------------------------
# FleetBatchBuffer
# ----------------------------------------------------------------------


def test_fleet_batch_buffer_growth_and_reuse():
    buf = FleetBatchBuffer()
    a = buf.request("x", 16)
    assert a.shape == (16,) and a.dtype == np.float64
    b = buf.request("x", 8)
    assert b.base is a.base or b.base is a  # same backing storage
    c = buf.request("x", (4, 8))
    assert c.shape == (4, 8)
    big = buf.request("x", 1024)
    assert big.size == 1024
    assert buf.nbytes >= 1024 * 8
    d = buf.request("ints", 10, dtype=np.intp)
    assert d.dtype == np.intp
    buf.clear()
    assert buf.nbytes == 0
