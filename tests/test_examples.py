"""Smoke tests: every shipped example must run and print its story.

Examples are documentation that executes; letting them rot would be
worse than not having them. Each test imports the example module and
runs its ``main()`` with output captured.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"

EXPECTED_MARKERS = {
    "quickstart": "PTrack quickstart",
    "interference_robustness": "error rate",
    "indoor_navigation": "141.5",
    "self_training": "Self-trained",
    "fitness_day": "Daily report",
    "streaming_tracking": "streaming",
    "fleet_serving": "real time",
    "raw_device_pipeline": "raw device stream",
    "gps_duty_cycling": "GPS fix every",
    "adaptive_threshold": "Adaptive threshold",
}


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert EXPECTED_MARKERS[name] in out
    assert len(out.splitlines()) >= 5


def test_every_example_has_a_smoke_test():
    shipped = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXPECTED_MARKERS), (
        "examples and smoke tests out of sync"
    )
