"""Unit tests for repro.signal.correlation."""

import numpy as np
import pytest

from repro.exceptions import SignalError
from repro.signal.correlation import (
    autocorrelation,
    best_lag,
    half_cycle_correlation,
    normalized_cross_correlation,
    phase_difference_fraction,
)


def _cycle(n=100):
    """One gait-like cycle: anterior acceleration repeating per step."""
    t = np.linspace(0, 1, n, endpoint=False)
    return np.sin(2 * np.pi * 2 * t)  # two identical step patterns


class TestAutocorrelation:
    def test_periodic_signal_full_lag(self):
        x = np.tile(_cycle(50), 4)
        assert autocorrelation(x, 50) == pytest.approx(1.0, abs=0.01)

    def test_sine_half_period_negative(self):
        t = np.arange(400) / 100.0
        x = np.sin(2 * np.pi * 1.0 * t)
        assert autocorrelation(x, 50) == pytest.approx(-1.0, abs=0.02)

    def test_constant_signal_returns_zero(self):
        assert autocorrelation(np.ones(50), 10) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=300)
        for lag in (1, 10, 100):
            assert -1.0 <= autocorrelation(x, lag) <= 1.0

    def test_rejects_bad_lag(self):
        with pytest.raises(SignalError):
            autocorrelation(np.arange(10.0), 10)
        with pytest.raises(SignalError):
            autocorrelation(np.arange(10.0), 0)


class TestHalfCycleCorrelation:
    def test_stepping_like_cycle_positive(self):
        # Two steps per cycle -> repetition at the half-cycle lag.
        assert half_cycle_correlation(_cycle()) > 0.9

    def test_single_sine_cycle_negative(self):
        # An arm gesture: one back-and-forth per cycle flips sign.
        t = np.linspace(0, 1, 100, endpoint=False)
        x = np.sin(2 * np.pi * t)
        assert half_cycle_correlation(x) < -0.9

    def test_rejects_tiny_cycle(self):
        with pytest.raises(SignalError):
            half_cycle_correlation(np.array([1.0, 2.0, 1.0]))


class TestNormalizedCrossCorrelation:
    def test_identical_signals(self):
        x = _cycle()
        assert normalized_cross_correlation(x, x, 0) == pytest.approx(1.0)

    def test_shifted_signal_realigns_at_delay(self):
        # roll(x, 10) delays y by 10 samples; comparing x[t] with
        # y[t + 10] realigns the signals perfectly.
        x = np.tile(_cycle(100), 3)
        y = np.roll(x, 10)
        assert normalized_cross_correlation(x, y, 10) == pytest.approx(1.0, abs=1e-6)
        assert normalized_cross_correlation(x, y, -10) < 0.95

    def test_anticorrelated(self):
        x = _cycle()
        assert normalized_cross_correlation(x, -x, 0) == pytest.approx(-1.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(SignalError):
            normalized_cross_correlation(np.zeros(10), np.zeros(11), 0)

    def test_rejects_excess_lag(self):
        with pytest.raises(SignalError):
            normalized_cross_correlation(np.arange(5.0), np.arange(5.0), 10)


class TestBestLag:
    def test_finds_known_shift(self):
        x = np.tile(_cycle(100), 3)
        y = np.roll(x, -7)  # y leads x by 7
        lag = best_lag(x, y, max_lag=20)
        assert lag in (7, -7) or abs(lag) == 7

    def test_zero_shift(self):
        x = _cycle(200)
        assert best_lag(x, x, max_lag=30) == 0

    def test_prefers_smallest_magnitude_on_ties(self):
        x = np.tile(_cycle(40), 5)  # period 40 -> lags 0 and 40 tie
        assert best_lag(x, x, max_lag=45) == 0


class TestPhaseDifferenceFraction:
    def test_quarter_period(self):
        n = 200
        t = np.arange(n) / n
        v = np.cos(2 * np.pi * 4 * t)  # per-step period = 50 samples
        a = np.cos(2 * np.pi * 4 * t + np.pi / 2)
        frac = phase_difference_fraction(v, a, period_samples=50)
        assert min(abs(frac - 0.25), abs(frac - 0.75)) < 0.06

    def test_in_phase(self):
        n = 200
        t = np.arange(n) / n
        v = np.cos(2 * np.pi * 4 * t)
        frac = phase_difference_fraction(v, v, period_samples=50)
        assert frac == pytest.approx(0.0, abs=0.02)

    def test_output_range(self):
        rng = np.random.default_rng(1)
        v, a = rng.normal(size=100), rng.normal(size=100)
        frac = phase_difference_fraction(v, a)
        assert 0.0 <= frac < 1.0

    def test_rejects_mismatch(self):
        with pytest.raises(SignalError):
            phase_difference_fraction(np.zeros(10), np.zeros(12))
