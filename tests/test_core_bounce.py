"""Unit tests for repro.core.bounce (Eqs. (3)-(5))."""

import numpy as np
import pytest

from repro.core.bounce import (
    bounce_from_half_cycle,
    direct_bounce,
    extract_cycle_moments,
    solve_bounce,
)
from repro.exceptions import GeometryError, SignalError
from repro.simulation.gait import bounce_from_stride


class TestSolveBounce:
    def _forward(self, b, r1, r2, m):
        """Build exact (h1, h2, d) from a known geometry (r in (0, m))."""
        h1, h2 = r1 - b, r2 - b
        d = np.sqrt(m**2 - (m - r1) ** 2) + np.sqrt(m**2 - (m - r2) ** 2)
        return h1, h2, d

    @pytest.mark.parametrize("b", [0.02, 0.05, 0.08])
    def test_round_trip(self, b):
        m = 0.6
        h1, h2, d = self._forward(b, 0.03, 0.10, m)
        assert solve_bounce(h1, h2, d, m) == pytest.approx(b, abs=1e-6)

    def test_symmetric_in_h1_h2(self):
        m = 0.6
        h1, h2, d = self._forward(0.06, 0.02, 0.09, m)
        assert solve_bounce(h1, h2, d, m) == pytest.approx(
            solve_bounce(h2, h1, d, m)
        )

    def test_monotone_decreasing_in_arm_length(self):
        h1, h2, d = self._forward(0.06, 0.02, 0.09, 0.6)
        solutions = [solve_bounce(h1, h2, d, m) for m in (0.5, 0.6, 0.7)]
        assert solutions[0] > solutions[1] > solutions[2]

    def test_small_d_clips_to_floor(self):
        # d smaller than even zero bounce explains -> floor (~0).
        assert solve_bounce(0.05, 0.05, 0.05, 0.6) < 0.01

    def test_excess_d_clips_to_cap(self):
        b = solve_bounce(-0.02, -0.02, 1.1, 0.6)
        assert b <= 0.30

    def test_rejects_impossible_d(self):
        with pytest.raises(GeometryError):
            solve_bounce(0.0, 0.0, 2.0, 0.6)
        with pytest.raises(GeometryError):
            solve_bounce(0.0, 0.0, -0.1, 0.6)

    def test_rejects_bad_arm(self):
        with pytest.raises(GeometryError):
            solve_bounce(0.0, 0.0, 0.1, 0.0)

    def test_rejects_empty_bracket(self):
        with pytest.raises(GeometryError):
            solve_bounce(0.65, 0.65, 0.5, 0.6)  # h >= m leaves no room


class TestBounceFromHalfCycle:
    def test_closed_form_inverse(self):
        m, b, r = 0.6, 0.05, 0.09
        h = r - b
        d_half = np.sqrt(m**2 - (m - r) ** 2)
        assert bounce_from_half_cycle(h, d_half, m) == pytest.approx(b)

    def test_rejects_excess_travel(self):
        with pytest.raises(GeometryError):
            bounce_from_half_cycle(0.0, 0.7, 0.6)

    def test_rejects_negative_travel(self):
        with pytest.raises(GeometryError):
            bounce_from_half_cycle(0.0, -0.1, 0.6)


class TestDirectBounce:
    def test_recovers_oscillation_amplitude(self):
        amp, freq = 0.035, 1.9
        t = np.arange(int(100 / freq)) / 100.0
        omega = 2 * np.pi * freq
        accel = -amp * omega**2 * np.sin(omega * t)
        assert direct_bounce(accel, 0.01) == pytest.approx(2 * amp, abs=0.005)

    def test_rejects_too_short(self):
        with pytest.raises(SignalError):
            direct_bounce(np.zeros(1), 0.01)


class TestExtractCycleMoments:
    def _cycle_axes(self, clean_walk_trace, config, index=5):
        from repro.core.step_counter import PTrackStepCounter
        from repro.signal.filters import butter_lowpass
        from repro.signal.projection import anterior_direction, project_horizontal

        trace, _ = clean_walk_trace
        counter = PTrackStepCounter(config)
        _, classifications = counter.process(trace)
        c = classifications[index]
        filtered = butter_lowpass(
            trace.linear_acceleration, config.lowpass_cutoff_hz, trace.sample_rate_hz
        )
        v = filtered[c.start_index : c.end_index, 2]
        h = filtered[c.start_index : c.end_index, :2]
        a = project_horizontal(h, anterior_direction(h))
        return v, a, trace.dt

    def test_moment_ordering(self, clean_walk_trace, config):
        v, a, dt = self._cycle_axes(clean_walk_trace, config)
        m = extract_cycle_moments(v, a, dt)
        assert m.backmost_index < m.vertical_index < m.foremost_index

    def test_d_splits_add_up(self, clean_walk_trace, config):
        v, a, dt = self._cycle_axes(clean_walk_trace, config)
        m = extract_cycle_moments(v, a, dt)
        assert m.d1_m + m.d2_m == pytest.approx(m.d_m, rel=0.01)

    def test_d_matches_arm_geometry(self, clean_walk_trace, config, user):
        v, a, dt = self._cycle_axes(clean_walk_trace, config)
        m = extract_cycle_moments(v, a, dt)
        t1 = abs(user.arm_swing_forward_bias_rad - user.arm_swing_amplitude_rad)
        t2 = user.arm_swing_forward_bias_rad + user.arm_swing_amplitude_rad
        expected = user.arm_length_m * (np.sin(t1) + np.sin(t2))
        assert m.d_m == pytest.approx(expected, rel=0.1)

    def test_end_to_end_bounce_close_to_truth(self, clean_walk_trace, config, user):
        v, a, dt = self._cycle_axes(clean_walk_trace, config)
        m = extract_cycle_moments(v, a, dt)
        b = solve_bounce(m.h1_m, m.h2_m, m.d_m, user.arm_length_m)
        truth = bounce_from_stride(user.stride_m, user.leg_length_m)
        assert b == pytest.approx(truth, abs=0.015)

    def test_rejects_short_cycle(self):
        with pytest.raises(SignalError):
            extract_cycle_moments(np.zeros(8), np.zeros(8), 0.01)

    def test_rejects_no_arm_sweep(self):
        # A flat anterior axis has no arm sweep: its displacement
        # extremes collapse together and the geometry is rejected.
        t = np.linspace(0, 1, 100, endpoint=False)
        v = np.cos(4 * np.pi * t)
        flat = np.zeros_like(v)
        flat[50] = 1e-9  # break exact degeneracy without creating a sweep
        with pytest.raises(GeometryError):
            extract_cycle_moments(v, flat, 0.01)
