"""Property-based end-to-end invariants over the user population.

These sample users from constrained hypothesis strategies and assert
the system-level invariants that every figure rests on. Examples are
kept small (short traces, few examples) to bound runtime.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import PTrack
from repro.core.step_counter import PTrackStepCounter
from repro.simulation.activities import simulate_interference
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind

users = st.builds(
    SimulatedUser,
    arm_length_m=st.floats(min_value=0.5, max_value=0.7),
    leg_length_m=st.floats(min_value=0.8, max_value=1.0),
    cadence_hz=st.floats(min_value=0.85, max_value=1.05),
    stride_m=st.floats(min_value=0.6, max_value=0.85),
    arm_swing_amplitude_rad=st.floats(min_value=0.34, max_value=0.48),
    arm_swing_forward_bias_rad=st.floats(min_value=0.06, max_value=0.15),
    arm_phase_lag=st.floats(min_value=0.04, max_value=0.07),
)

_counter = PTrackStepCounter()

slow_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@slow_settings
@given(users, st.integers(min_value=0, max_value=10_000))
def test_walking_counted_for_any_user(user, seed):
    trace, truth = simulate_walk(user, 25.0, rng=np.random.default_rng(seed))
    counted = _counter.count_steps(trace)
    assert abs(counted - truth.step_count) <= max(3, 0.1 * truth.step_count)


@slow_settings
@given(users, st.integers(min_value=0, max_value=10_000))
def test_stepping_counted_for_any_user(user, seed):
    trace, truth = simulate_walk(
        user, 25.0, rng=np.random.default_rng(seed), arm_mode="rigid"
    )
    counted = _counter.count_steps(trace)
    assert abs(counted - truth.step_count) <= max(4, 0.12 * truth.step_count)


@slow_settings
@given(users, st.integers(min_value=0, max_value=10_000))
def test_swinging_rejected_for_any_user(user, seed):
    trace, _ = simulate_walk(
        user, 25.0, rng=np.random.default_rng(seed), body=False
    )
    assert _counter.count_steps(trace) <= 2


@slow_settings
@given(
    st.sampled_from(
        [
            ActivityKind.EATING,
            ActivityKind.POKER,
            ActivityKind.GAME,
            ActivityKind.WATCH_GLANCE,
        ]
    ),
    st.integers(min_value=0, max_value=10_000),
)
def test_interference_bounded_for_any_seed(kind, seed):
    trace = simulate_interference(kind, 60.0, rng=np.random.default_rng(seed))
    assert _counter.count_steps(trace) <= 6


@slow_settings
@given(users, st.integers(min_value=0, max_value=10_000))
def test_distance_tracks_truth_for_any_user(user, seed):
    trace, truth = simulate_walk(user, 25.0, rng=np.random.default_rng(seed))
    result = PTrack(profile=user.profile).track(trace)
    if truth.total_distance_m > 5:
        assert result.distance_m == pytest.approx(
            truth.total_distance_m, rel=0.15
        )
