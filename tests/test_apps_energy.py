"""Tests for repro.apps.energy (GPS duty-cycling trade)."""

import numpy as np
import pytest

from repro.apps.energy import EnergyModel, evaluate_duty_cycle
from repro.core.pipeline import PTrack
from repro.exceptions import ConfigurationError
from repro.simulation.walker import simulate_walk


@pytest.fixture(scope="module")
def straight_walk(user):
    return simulate_walk(user, 60.0, rng=np.random.default_rng(12))


class TestEnergyModel:
    def test_defaults_valid(self):
        model = EnergyModel()
        assert model.gps_fix_j > 0

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(gps_fix_j=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(imu_w=-1.0)


class TestEvaluateDutyCycle:
    def test_hold_error_grows_with_interval(self, user, straight_walk):
        trace, truth = straight_walk
        tracker = PTrack(profile=user.profile)
        hold_short, _ = evaluate_duty_cycle(
            tracker, trace, truth, 5.0, rng=np.random.default_rng(1)
        )
        hold_long, _ = evaluate_duty_cycle(
            tracker, trace, truth, 30.0, rng=np.random.default_rng(1)
        )
        assert hold_long.mean_error_m > 2 * hold_short.mean_error_m

    def test_dead_reckoning_flattens_error(self, user, straight_walk):
        trace, truth = straight_walk
        tracker = PTrack(profile=user.profile)
        _, dr_short = evaluate_duty_cycle(
            tracker, trace, truth, 5.0, rng=np.random.default_rng(2)
        )
        hold_long, dr_long = evaluate_duty_cycle(
            tracker, trace, truth, 30.0, rng=np.random.default_rng(2)
        )
        assert dr_long.mean_error_m < 0.5 * hold_long.mean_error_m
        assert dr_long.mean_error_m < dr_short.mean_error_m + 4.0

    def test_energy_accounting(self, user, straight_walk):
        trace, truth = straight_walk
        tracker = PTrack(profile=user.profile)
        model = EnergyModel(gps_fix_j=2.0, imu_w=0.05)
        hold, dr = evaluate_duty_cycle(
            tracker, trace, truth, 10.0, energy=model, rng=None
        )
        n_fixes = len(np.arange(0.0, trace.duration_s, 10.0))
        assert hold.energy_j == pytest.approx(n_fixes * 2.0)
        assert dr.energy_j == pytest.approx(
            n_fixes * 2.0 + 0.05 * trace.duration_s
        )
        assert dr.energy_mw > hold.energy_mw

    def test_gps_noise_bounds_hold_error_floor(self, user, straight_walk):
        trace, truth = straight_walk
        tracker = PTrack(profile=user.profile)
        model = EnergyModel(gps_position_sigma_m=0.0)
        hold, _ = evaluate_duty_cycle(
            tracker, trace, truth, 1.0, energy=model, rng=None
        )
        # With 1 s perfect fixes the hold error is just intra-second
        # motion (~ one stride).
        assert hold.mean_error_m < 1.5

    def test_rejects_bad_interval(self, user, straight_walk):
        trace, truth = straight_walk
        with pytest.raises(ConfigurationError):
            evaluate_duty_cycle(
                PTrack(profile=user.profile), trace, truth, 0.0
            )
