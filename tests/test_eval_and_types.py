"""Unit tests for repro.eval.{metrics,reporting} and repro.types."""

import numpy as np
import pytest

from repro.eval.metrics import (
    cdf_points,
    count_accuracy,
    count_error_rate,
    stride_errors,
    summarize,
)
from repro.eval.reporting import Table, format_table
from repro.exceptions import SignalError
from repro.types import (
    ActivityKind,
    GaitType,
    StepEvent,
    StrideEstimate,
    TrackingResult,
    UserProfile,
)


class TestMetrics:
    def test_accuracy_perfect(self):
        assert count_accuracy(100, 100) == 1.0

    def test_accuracy_symmetric(self):
        assert count_accuracy(90, 100) == count_accuracy(110, 100)

    def test_accuracy_floor(self):
        assert count_accuracy(500, 100) == 0.0

    def test_error_rate(self):
        assert count_error_rate(102, 100) == pytest.approx(0.02)

    def test_error_rate_rejects_zero_truth(self):
        with pytest.raises(SignalError):
            count_error_rate(5, 0)

    def test_stride_errors_prefix_alignment(self):
        errs = stride_errors([0.7, 0.8, 0.9], [0.7, 0.7])
        assert errs.shape == (2,)
        assert errs[1] == pytest.approx(0.1)

    def test_stride_errors_empty(self):
        assert stride_errors([], [0.7]).size == 0

    def test_cdf_points(self):
        values, probs = cdf_points([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probs.tolist() == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_cdf_empty(self):
        values, probs = cdf_points([])
        assert values.size == 0 and probs.size == 0

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.maximum == 4.0
        assert s.n == 4

    def test_summarize_rejects_empty(self):
        with pytest.raises(SignalError):
            summarize([])

    def test_summarize_rejects_nan(self):
        with pytest.raises(SignalError):
            summarize([1.0, np.nan])


class TestReporting:
    def test_format_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.123]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.123" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_table_builder(self):
        t = Table("demo", ["k", "v"]).add_row("a", 1).add_row("b", 2)
        assert len(t.rows) == 2
        assert "demo" in t.render()

    def test_table_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            Table("t", ["a"]).add_row(1, 2)


class TestTypes:
    def test_activity_pedestrian_flags(self):
        assert ActivityKind.WALKING.is_pedestrian
        assert ActivityKind.STEPPING.is_pedestrian
        assert not ActivityKind.EATING.is_pedestrian
        assert not ActivityKind.SPOOFING.is_pedestrian

    def test_user_profile_validation(self):
        with pytest.raises(ValueError):
            UserProfile(arm_length_m=0.0, leg_length_m=0.9)
        with pytest.raises(ValueError):
            UserProfile(arm_length_m=0.6, leg_length_m=-1.0)
        with pytest.raises(ValueError):
            UserProfile(arm_length_m=0.6, leg_length_m=0.9, calibration_k=0.0)

    def test_tracking_result_aggregates(self):
        steps = tuple(
            StepEvent(time=float(i), index=i, gait_type=GaitType.WALKING, cycle_id=i // 2)
            for i in range(4)
        )
        strides = tuple(
            StrideEstimate(
                time=float(i),
                length_m=0.7,
                bounce_m=0.05,
                cycle_id=i // 2,
                gait_type=GaitType.WALKING,
            )
            for i in range(4)
        )
        result = TrackingResult(steps=steps, strides=strides)
        assert result.step_count == 4
        assert result.distance_m == pytest.approx(2.8)

    def test_step_event_immutable(self):
        e = StepEvent(0.0, 0, GaitType.WALKING, 0)
        with pytest.raises(AttributeError):
            e.time = 1.0
