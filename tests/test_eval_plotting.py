"""Tests for repro.eval.plotting (terminal sparklines)."""

import numpy as np
import pytest

from repro.eval.plotting import histogram, sparkline, timeline
from repro.exceptions import SignalError


class TestSparkline:
    def test_width_respected(self):
        assert len(sparkline(np.sin(np.linspace(0, 10, 500)), width=40)) == 40

    def test_short_sample_kept_as_is(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=60)) == 3

    def test_monotone_ramp_monotone_blocks(self):
        line = sparkline(np.linspace(0, 1, 30), width=30)
        assert line[0] <= line[-1]
        assert line == "".join(sorted(line))

    def test_constant_signal(self):
        line = sparkline(np.full(20, 5.0), width=20)
        assert len(set(line)) == 1

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            sparkline([])

    def test_rejects_nan(self):
        with pytest.raises(SignalError):
            sparkline([1.0, np.nan])

    def test_rejects_bad_width(self):
        with pytest.raises(SignalError):
            sparkline([1.0], width=0)


class TestHistogram:
    def test_row_per_bin(self):
        text = histogram(np.random.default_rng(0).normal(size=400), bins=8)
        assert len(text.splitlines()) == 8

    def test_label_line(self):
        text = histogram([1.0, 2.0, 3.0], bins=3, label="demo")
        assert text.splitlines()[0] == "demo"

    def test_counts_sum(self):
        values = np.random.default_rng(1).normal(size=123)
        text = histogram(values, bins=5)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
        assert sum(counts) == 123

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            histogram([])


class TestTimeline:
    def test_contains_duration_and_range(self):
        line = timeline(np.zeros(300), 100.0, label="flat", unit="m/s^2")
        assert "flat" in line
        assert "over 3 s" in line
        assert "m/s^2" in line

    def test_rejects_bad_rate(self):
        with pytest.raises(SignalError):
            timeline([1.0, 2.0], 0.0)
