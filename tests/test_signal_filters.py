"""Unit tests for repro.signal.filters."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SignalError
from repro.signal.filters import (
    butter_lowpass,
    detrend_mean,
    gravity_component,
    moving_average,
)


def _tone(freq_hz: float, rate: float = 100.0, duration: float = 4.0) -> np.ndarray:
    t = np.arange(int(duration * rate)) / rate
    return np.sin(2 * np.pi * freq_hz * t)


class TestButterLowpass:
    def test_passes_low_frequency(self):
        x = _tone(1.0)
        y = butter_lowpass(x, 5.0, 100.0)
        assert np.std(y) == pytest.approx(np.std(x), rel=0.05)

    def test_attenuates_high_frequency(self):
        x = _tone(20.0)
        y = butter_lowpass(x, 5.0, 100.0)
        # Judge the interior: forward-backward filtering rings at the
        # very edges, which would mask the stop-band attenuation.
        assert np.std(y[100:-100]) < 0.02 * np.std(x)

    def test_mixture_keeps_only_low_band(self):
        x = _tone(1.0) + _tone(30.0)
        y = butter_lowpass(x, 5.0, 100.0)
        # After filtering, the 1 Hz component should dominate.
        spectrum = np.abs(np.fft.rfft(y))
        freqs = np.fft.rfftfreq(y.size, 0.01)
        assert freqs[np.argmax(spectrum)] == pytest.approx(1.0, abs=0.3)

    def test_zero_phase(self):
        # Zero-phase filtering must not delay the peak of a low tone.
        x = _tone(1.0)
        y = butter_lowpass(x, 5.0, 100.0)
        assert abs(int(np.argmax(x[:100])) - int(np.argmax(y[:100]))) <= 1

    def test_filters_2d_along_axis0(self):
        x = np.column_stack([_tone(1.0), _tone(30.0), _tone(2.0)])
        y = butter_lowpass(x, 5.0, 100.0)
        assert y.shape == x.shape
        assert np.std(y[100:-100, 1]) < 0.02 * np.std(x[:, 1])

    def test_short_signal_falls_back_to_smoothing(self):
        x = np.ones(10)
        y = butter_lowpass(x, 5.0, 100.0)
        assert y.shape == x.shape
        assert np.all(np.isfinite(y))

    def test_rejects_cutoff_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            butter_lowpass(_tone(1.0), 60.0, 100.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            butter_lowpass(_tone(1.0), 5.0, 0.0)

    def test_rejects_bad_order(self):
        with pytest.raises(ConfigurationError):
            butter_lowpass(_tone(1.0), 5.0, 100.0, order=0)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            butter_lowpass(np.empty(0), 5.0, 100.0)


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        x = np.full(50, 3.0)
        assert np.allclose(moving_average(x, 5), 3.0)

    def test_width_one_is_copy(self):
        x = np.arange(10.0)
        y = moving_average(x, 1)
        assert np.array_equal(x, y)
        assert y is not x

    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=2000)
        y = moving_average(x, 9)
        assert np.std(y) < 0.5 * np.std(x)

    def test_width_larger_than_signal_clamped(self):
        x = np.arange(5.0)
        y = moving_average(x, 100)
        assert y.shape == x.shape
        assert np.all(np.isfinite(y))

    def test_edges_unbiased_for_constant(self):
        x = np.full(20, 7.0)
        y = moving_average(x, 7)
        assert y[0] == pytest.approx(7.0)
        assert y[-1] == pytest.approx(7.0)

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            moving_average(np.zeros((3, 3)), 2)

    def test_rejects_nan(self):
        with pytest.raises(SignalError):
            moving_average(np.array([1.0, np.nan]), 2)


class TestDetrendMean:
    def test_removes_mean(self):
        x = np.array([1.0, 2.0, 3.0])
        assert detrend_mean(x).mean() == pytest.approx(0.0)

    def test_preserves_shape_of_oscillation(self):
        x = _tone(2.0) + 5.0
        y = detrend_mean(x)
        assert np.allclose(y, _tone(2.0), atol=1e-9)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            detrend_mean(np.empty(0))


class TestGravityComponent:
    def test_static_signal_recovered(self):
        x = np.full(400, 9.81)
        g = gravity_component(x, 100.0)
        assert np.allclose(g, 9.81, atol=1e-6)

    def test_motion_removed_from_estimate(self):
        x = 9.81 + _tone(2.0)
        g = gravity_component(x, 100.0)
        assert np.allclose(g[50:-50], 9.81, atol=0.15)

    def test_short_signal_returns_mean(self):
        x = np.array([1.0, 2.0, 3.0])
        g = gravity_component(x, 100.0)
        assert np.allclose(g, 2.0)
