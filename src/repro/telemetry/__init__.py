"""Telemetry for the streaming + fleet-serving stack.

Long-horizon wearable deployments live or die on continuous
per-subject visibility — signal quality, detection statistics, repair
activity — across heterogeneous populations. This package gives the
PTrack serving stack that instrumented, queryable view:

* :mod:`repro.telemetry.registry` — a process-local
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket
  histograms) with picklable snapshots and cross-process merging;
* :mod:`repro.telemetry.tracing` — :class:`trace_span` monotonic
  spans with parent/child nesting in a bounded ring buffer;
* :mod:`repro.telemetry.export` — JSON and Prometheus text-format
  exporters over the one snapshot schema.

Instrumented layers (``StreamingPTrack``, ``SessionPool``,
``serve_fleet``, ``TraceCache``, ``parallel_map``) take an explicit
``telemetry=`` registry or fall back to the process gate
(:func:`enable` / :func:`disable`); with the gate closed every
instrumented path reduces to one ``is not None`` check and clean-trace
streaming stays bit-identical to the uninstrumented build. See
``docs/observability.md`` for the metric catalog and overhead numbers.
"""

from repro.telemetry.export import from_json, to_json, to_prometheus
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    get_registry,
    merge_snapshots,
)
from repro.telemetry.tracing import (
    SpanBuffer,
    SpanRecord,
    get_span_buffer,
    set_span_capacity,
    trace_span,
)

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanBuffer",
    "SpanRecord",
    "disable",
    "enable",
    "from_json",
    "get_registry",
    "get_span_buffer",
    "merge_snapshots",
    "set_span_capacity",
    "to_json",
    "to_prometheus",
    "trace_span",
]
