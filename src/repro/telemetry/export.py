"""Snapshot exporters: JSON and Prometheus text exposition format.

A snapshot (:meth:`repro.telemetry.MetricsRegistry.snapshot`) is the
single source of truth; both exporters are pure functions of it, so
anything a dashboard can scrape is also exactly what the JSON artifact
records. The round-trip tests pin the snapshot key set — an exporter
schema cannot drift without a test telling on it.

Prometheus rendering follows the text exposition format: counters get
a ``_total`` suffix, histograms emit cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count``, and every metric carries its
``# TYPE`` line. Metric names are validated rather than rewritten —
instrumented code owns its names and a silent rewrite would detach
dashboards from the source.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List

from repro.exceptions import ConfigurationError

__all__ = ["to_json", "from_json", "to_prometheus"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Render a snapshot as deterministic (sorted-key) JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def from_json(text: str) -> Dict[str, Any]:
    """Parse a snapshot back from :func:`to_json` output."""
    snapshot = json.loads(text)
    if not isinstance(snapshot, dict) or "schema" not in snapshot:
        raise ConfigurationError(
            "not a telemetry snapshot: missing 'schema' key"
        )
    return snapshot


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"metric name {name!r} is not a valid Prometheus name"
        )
    return name


def _fmt(value: Any) -> str:
    """Prometheus sample value formatting (integers stay integral)."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def to_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Args:
        snapshot: A :meth:`MetricsRegistry.snapshot` dict (possibly
            merged across shards).

    Returns:
        The exposition text, one ``# TYPE`` block per metric, ending
        with a newline.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        base = _check_name(name)
        if not base.endswith("_total"):
            base += "_total"
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        _check_name(name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for name, spec in snapshot.get("histograms", {}).items():
        _check_name(name)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for upper, count in zip(spec["buckets"], spec["counts"]):
            cumulative += int(count)
            lines.append(
                f'{name}_bucket{{le="{_fmt(upper)}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {int(spec["count"])}')
        lines.append(f"{name}_sum {_fmt(spec['sum'])}")
        lines.append(f"{name}_count {int(spec['count'])}")
    return "\n".join(lines) + "\n"
