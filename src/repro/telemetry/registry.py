"""Process-local metrics: counters, gauges, histograms, one registry.

The serving stack runs millions of appends per minute; the only
instrumentation it can afford is the kind that costs a dict lookup and
an integer add when enabled — and *nothing* when disabled. This module
provides that primitive layer:

* :class:`Counter` — a monotonically increasing total (steps credited,
  samples repaired, cache hits). Float increments are allowed so
  additive quantities like distance can ride the same rail.
* :class:`Gauge` — a point-in-time level (sessions live in a pool).
* :class:`Histogram` — a fixed-bucket-layout distribution (append
  latency). Bucket layouts are frozen at creation so histograms from
  different processes merge bucket-for-bucket.
* :class:`MetricsRegistry` — the named collection of all three, with a
  picklable :meth:`~MetricsRegistry.snapshot` and a
  :meth:`~MetricsRegistry.merge` that folds shard snapshots from other
  processes into a fleet-wide view.

Determinism contract: counters and gauges derived from the pipeline's
operation counters are pure functions of the input streams, so fleet
snapshots merged across any shard layout agree total-for-total; only
wall-clock histograms (latencies) vary run to run. The telemetry
determinism tests assert exactly this split.

The module-level gate (:func:`enable` / :func:`disable` /
:func:`get_registry`) is how instrumented layers find the registry
without threading it through every call: components take an explicit
``telemetry=`` argument, and ``None`` falls back to the gate. With the
gate closed the instrumented code paths reduce to a single ``is not
None`` check — the <5% overhead budget in the tracked telemetry
benchmark is measured with the gate *open*.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "enable",
    "disable",
    "get_registry",
]

#: Stamped into every snapshot so exporters can detect drift.
SNAPSHOT_SCHEMA = "ptrack-telemetry-v1"

#: Default histogram layout for sub-second latencies (seconds). The
#: top finite bucket is 2.5 s; anything slower lands in +Inf.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

Number = Union[int, float]


class Counter:
    """A monotonically increasing total.

    Counters only go up; resetting is done by building a fresh
    registry (a serving process restarts with clean totals).
    """

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0

    @property
    def value(self) -> Number:
        """The current total."""
        return self._value

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount


class Gauge:
    """A point-in-time level that can move both ways."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def set(self, value: Number) -> None:
        """Set the level."""
        self._value = float(value)

    def inc(self, amount: Number = 1) -> None:
        """Move the level up by ``amount``."""
        self._value += float(amount)

    def dec(self, amount: Number = 1) -> None:
        """Move the level down by ``amount``."""
        self._value -= float(amount)


class Histogram:
    """A fixed-bucket distribution (cumulative on export).

    Args:
        name: Metric name.
        buckets: Strictly increasing finite upper bounds; an implicit
            ``+Inf`` bucket is always appended. The layout is frozen at
            creation — histograms only merge with an identical layout.
    """

    __slots__ = ("name", "_uppers", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        uppers = [float(b) for b in buckets]
        if not uppers or any(
            b2 <= b1 for b1, b2 in zip(uppers, uppers[1:])
        ):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty and "
                f"strictly increasing, got {list(buckets)!r}"
            )
        self.name = name
        self._uppers = uppers
        self._counts = [0] * (len(uppers) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    @property
    def buckets(self) -> List[float]:
        """The finite upper bounds (a copy)."""
        return list(self._uppers)

    @property
    def count(self) -> int:
        """Observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: Number) -> None:
        """Record one observation."""
        v = float(value)
        self._counts[bisect.bisect_left(self._uppers, v)] += 1
        self._sum += v
        self._count += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket layout.

        Returns the upper bound of the bucket holding the ``q``-th
        observation (the top finite bound for the +Inf bucket), or
        ``0.0`` when empty — good enough for health summaries, not for
        SLO math.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        running = 0
        for upper, count in zip(self._uppers, self._counts):
            running += count
            if running >= rank:
                return upper
        return self._uppers[-1]


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first use and looked up by name after
    that; asking for an existing name with a different instrument kind
    (or a different histogram layout) raises — silent aliasing is how
    dashboards end up lying.

    The registry itself is thread-safe for instrument *creation*;
    individual updates are plain attribute arithmetic, matching the
    single-writer-per-process model of the serving stack (each worker
    process owns its registry and snapshots are merged after the fact).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        inst = self._counters.get(name)
        if inst is not None:
            return inst
        with self._lock:
            self._check_free(name, "counter")
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        inst = self._gauges.get(name)
        if inst is not None:
            return inst
        with self._lock:
            self._check_free(name, "gauge")
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get or create the histogram ``name`` with a fixed layout."""
        inst = self._histograms.get(name)
        if inst is not None:
            if inst.buckets != [float(b) for b in buckets]:
                raise ConfigurationError(
                    f"histogram {name!r} already exists with a different "
                    "bucket layout"
                )
            return inst
        with self._lock:
            self._check_free(name, "histogram")
            return self._histograms.setdefault(
                name, Histogram(name, buckets)
            )

    def _check_free(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a "
                    f"{other_kind}; cannot re-register as a {kind}"
                )

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A picklable, JSON-serialisable copy of every instrument.

        The shape is the exporter contract (see
        ``docs/observability.md``); the round-trip tests pin the key
        set so it cannot drift silently.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": h.buckets,
                    "counts": list(h._counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold one snapshot (e.g. from a worker shard) into this registry.

        Merge semantics: counters and histograms are additive across
        processes; gauges keep the *maximum* level seen (a fleet's
        "sessions live" is the high-water mark across shards, and max
        is the only order-independent choice that is also idempotent
        for equal shards).

        Raises:
            ConfigurationError: On a schema mismatch or a histogram
                bucket-layout conflict.
        """
        schema = snapshot.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ConfigurationError(
                f"cannot merge snapshot with schema {schema!r} "
                f"(expected {SNAPSHOT_SCHEMA!r})"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, float(value)))
        for name, spec in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, spec["buckets"])
            if hist.buckets != [float(b) for b in spec["buckets"]]:
                raise ConfigurationError(
                    f"histogram {name!r} bucket layouts differ; "
                    "snapshots only merge with identical layouts"
                )
            for i, c in enumerate(spec["counts"]):
                hist._counts[i] += int(c)
            hist._sum += float(spec["sum"])
            hist._count += int(spec["count"])


def merge_snapshots(
    snapshots: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Merge shard snapshots into one fleet snapshot.

    Args:
        snapshots: Snapshot dicts from :meth:`MetricsRegistry.snapshot`
            (typically one per worker shard, shipped across the process
            boundary by ``parallel_map``).

    Returns:
        The merged snapshot (an empty registry's snapshot when the
        sequence is empty).
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()


# ----------------------------------------------------------------------
# The process-wide gate
# ----------------------------------------------------------------------
_global_registry: Optional[MetricsRegistry] = None
_global_lock = threading.Lock()


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Open the telemetry gate; return the active registry.

    Args:
        registry: The registry to install; ``None`` creates a fresh one.

    Components constructed *after* this call (sessions, pools, caches)
    pick the registry up automatically unless given an explicit
    ``telemetry=`` argument.
    """
    global _global_registry
    with _global_lock:
        _global_registry = registry if registry is not None else MetricsRegistry()
        return _global_registry


def disable() -> None:
    """Close the telemetry gate (instrumented paths become no-ops)."""
    global _global_registry
    with _global_lock:
        _global_registry = None


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` while the gate is closed."""
    return _global_registry
