"""Span-based tracing: monotonic timing with parent/child nesting.

Metrics say *how much*; traces say *where the time went*. A
:class:`trace_span` wraps any region in a monotonic-clock span, spans
nest (a span opened inside another records its parent and depth), and
finished spans land in a bounded in-memory ring buffer — the newest
``capacity`` spans are kept, older ones fall off, so a long-lived
serving process cannot leak memory through its own instrumentation.

The same gate as the metrics registry applies: with telemetry disabled
and no explicit buffer, ``with trace_span("x"):`` costs two attribute
checks and records nothing. ``trace_span`` is a plain class (not a
``@contextmanager`` generator) precisely to keep that disabled path
free of generator-frame overhead.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.exceptions import ConfigurationError
from repro.telemetry.registry import get_registry

__all__ = [
    "SpanRecord",
    "SpanBuffer",
    "trace_span",
    "get_span_buffer",
    "set_span_capacity",
]

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_SPAN_CAPACITY = 4096


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes:
        name: Span name.
        start_s: Monotonic-clock start time (comparable only within
            the process that recorded it).
        duration_s: Wall-clock duration.
        parent: Name of the enclosing span, or ``None`` at the root.
        depth: Nesting depth (0 at the root).
        error: ``"ExcType"`` when the region exited by exception.
    """

    name: str
    start_s: float
    duration_s: float
    parent: Optional[str] = None
    depth: int = 0
    error: Optional[str] = None


class SpanBuffer:
    """A bounded ring of finished spans plus the live nesting stack.

    The ring keeps the newest ``capacity`` finished spans; the nesting
    stack is thread-local, so spans opened on different threads nest
    independently while landing in the same ring.

    Args:
        capacity: Finished spans retained (older spans fall off).
    """

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"span capacity must be >= 1, got {capacity}"
            )
        self._ring: Deque[SpanRecord] = deque(maxlen=capacity)
        self._local = threading.local()

    @property
    def capacity(self) -> int:
        """Maximum finished spans retained."""
        return self._ring.maxlen or 0

    def __len__(self) -> int:
        return len(self._ring)

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def spans(self) -> List[SpanRecord]:
        """The retained finished spans, oldest first (a copy)."""
        return list(self._ring)

    def clear(self) -> None:
        """Drop every retained span (live spans are unaffected)."""
        self._ring.clear()

    def record(self, record: SpanRecord) -> None:
        """Append one finished span (oldest falls off when full)."""
        self._ring.append(record)


class trace_span:
    """Context manager timing one region as a span.

    Example::

        with trace_span("serve_fleet"):
            with trace_span("healing_round"):
                ...

    Args:
        name: Span name.
        buffer: Where finished spans land; ``None`` uses the process
            buffer when the telemetry gate is open, and records
            nothing when it is closed.
    """

    __slots__ = ("name", "_explicit", "_active", "_t0", "_parent", "_depth")

    def __init__(
        self, name: str, buffer: Optional[SpanBuffer] = None
    ) -> None:
        self.name = name
        self._explicit = buffer
        self._active: Optional[SpanBuffer] = None

    def __enter__(self) -> "trace_span":
        buffer = self._explicit
        if buffer is None:
            if get_registry() is None:
                return self  # gate closed: record nothing
            buffer = get_span_buffer()
        self._active = buffer
        stack = buffer._stack()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self.name)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        buffer = self._active
        if buffer is None:
            return
        self._active = None  # re-resolve on reuse (the gate may move)
        duration = time.monotonic() - self._t0
        stack = buffer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        buffer.record(
            SpanRecord(
                name=self.name,
                start_s=self._t0,
                duration_s=duration,
                parent=self._parent,
                depth=self._depth,
                error=exc_type.__name__ if exc_type is not None else None,
            )
        )


_process_buffer = SpanBuffer()
_buffer_lock = threading.Lock()


def get_span_buffer() -> SpanBuffer:
    """The process-wide span ring buffer."""
    return _process_buffer


def set_span_capacity(capacity: int) -> SpanBuffer:
    """Replace the process buffer with a fresh one of ``capacity``.

    Returns the new (empty) buffer; previously retained spans are
    dropped with the old one.
    """
    global _process_buffer
    with _buffer_lock:
        _process_buffer = SpanBuffer(capacity)
        return _process_buffer
