"""Mean-removal integration (displacement from acceleration).

A naive double integral of accelerometer data drifts quadratically with
any bias. The paper adopts the *mean-removal* technique of Wang et al.
(MOLE, MobiCom'15) [26]: when a segment is known to start and end at
zero velocity, the true acceleration integrates to exactly zero over
the segment, so the sample mean *is* the bias — removing it cancels the
drift and brings displacement accuracy to the millimetre level.

The PTrack stride estimator uses this on three quantities per gait
cycle — ``h1``, ``h2`` (vertical device displacements) and ``d``
(anterior arm travel) — all of which satisfy the zero-velocity-endpoint
requirement by construction (SIII-C1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import IntegrationError, SignalError

__all__ = [
    "cumulative_trapezoid",
    "integrate_mean_removal",
    "double_integrate_mean_removal",
    "peak_to_peak_displacement",
]


def _validate(x: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise SignalError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size < 2:
        raise IntegrationError(f"{name} needs at least 2 samples, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise SignalError(f"{name} contains non-finite values")
    return arr


def cumulative_trapezoid(x: np.ndarray, dt: float) -> np.ndarray:
    """Cumulative trapezoidal integral with an initial zero sample.

    Args:
        x: 1-D integrand sampled uniformly.
        dt: Sample period in seconds.

    Returns:
        Array of the same length as ``x``; element ``i`` is the
        integral from sample 0 to sample ``i`` (element 0 is 0).
    """
    arr = _validate(x, "integrand")
    if dt <= 0:
        raise IntegrationError(f"dt must be positive, got {dt}")
    out = np.empty_like(arr)
    out[0] = 0.0
    np.cumsum((arr[1:] + arr[:-1]) * (dt / 2.0), out=out[1:])
    return out


def integrate_mean_removal(x: np.ndarray, dt: float) -> np.ndarray:
    """Single integral of a zero-endpoint-velocity segment.

    The integrand's mean is removed first, which forces the integral to
    return to zero at the segment end — exactly the physical constraint
    ("the object's velocity equals zero at both ends") that justifies
    the removal.

    Args:
        x: 1-D acceleration (or velocity) segment.
        dt: Sample period in seconds.

    Returns:
        The integrated signal (velocity, or displacement), same length.
        Its final sample is exactly zero: the removed constant is the
        *trapezoid-consistent* mean (endpoint samples weighted by 1/2),
        so the discrete integral of the residual vanishes identically
        rather than only up to discretisation error.
    """
    arr = _validate(x, "segment")
    trapezoid_mean = (arr.sum() - 0.5 * (arr[0] + arr[-1])) / (arr.size - 1)
    return cumulative_trapezoid(arr - trapezoid_mean, dt)


def double_integrate_mean_removal(x: np.ndarray, dt: float) -> np.ndarray:
    """Displacement from acceleration with per-stage mean removal.

    Stage 1 removes the acceleration mean and integrates to velocity;
    stage 2 removes the *velocity* mean and integrates to displacement.
    The second removal maps the displacement into its oscillatory
    component around the segment trend — for wrist signals this strips
    the constant forward-walking baseline ``v0`` that the paper notes
    cannot be recovered from integration anyway (SII, "Stride estimation
    with mixed signals").

    Args:
        x: 1-D acceleration segment with zero velocity at both ends.
        dt: Sample period in seconds.

    Returns:
        Detrended displacement, same length as ``x``.
    """
    velocity = integrate_mean_removal(x, dt)
    return cumulative_trapezoid(velocity - velocity.mean(), dt)


def peak_to_peak_displacement(x: np.ndarray, dt: float) -> float:
    """Peak-to-peak displacement of a zero-endpoint-velocity segment.

    Convenience wrapper used for the direct bounce measurement in the
    stepping case (device rigid w.r.t. the body): the body's vertical
    oscillation amplitude is the peak-to-peak excursion of the doubly
    integrated vertical acceleration.

    Args:
        x: 1-D acceleration segment.
        dt: Sample period in seconds.

    Returns:
        ``max - min`` of the displacement, in the integrand's distance
        unit (metres for m/s^2 input).
    """
    disp = double_integrate_mean_removal(x, dt)
    return float(disp.max() - disp.min())


def displacement_between(
    x: np.ndarray,
    dt: float,
    start: int,
    end: int,
) -> Tuple[float, np.ndarray]:
    """Displacement between two sample indices of a segment.

    Args:
        x: 1-D acceleration segment with zero velocity at both ends.
        dt: Sample period in seconds.
        start: Index of the first moment (inclusive).
        end: Index of the second moment (inclusive).

    Returns:
        Tuple of (signed displacement from ``start`` to ``end``, the
        full displacement curve for diagnostics).

    Raises:
        IntegrationError: If the indices fall outside the segment.
    """
    disp = double_integrate_mean_removal(x, dt)
    n = disp.size
    if not (0 <= start < n and 0 <= end < n):
        raise IntegrationError(
            f"moment indices ({start}, {end}) outside segment of {n} samples"
        )
    return float(disp[end] - disp[start]), disp
