"""Acceleration projection onto vertical and anterior directions.

SIII-B2 of the paper: the vertical axis comes from the platform's
attitude-aware motion APIs [25]; the anterior (walking) direction is
*recovered from the data* — during gait the arm swings back and forth
along the anterior direction, so the horizontal acceleration samples
scatter along a dominant line whose orientation a least-squares fit
reveals.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import SignalError

__all__ = ["split_vertical_horizontal", "anterior_direction", "project_horizontal"]


def split_vertical_horizontal(
    acceleration: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split an Nx3 world-frame acceleration into vertical and horizontal.

    Args:
        acceleration: Array of shape (N, 3) with columns (x, y, z) in a
            gravity-aligned world frame (z up), as produced by attitude
            APIs on Android/iOS [25] or by :mod:`repro.sensing`.

    Returns:
        Tuple ``(vertical, horizontal)`` where ``vertical`` has shape
        (N,) — the z column — and ``horizontal`` has shape (N, 2).

    Raises:
        SignalError: On wrong shape or non-finite values.
    """
    arr = np.asarray(acceleration, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise SignalError(f"acceleration must have shape (N, 3), got {arr.shape}")
    if arr.shape[0] == 0:
        raise SignalError("acceleration must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise SignalError("acceleration contains non-finite values")
    return arr[:, 2].copy(), arr[:, :2].copy()


def anterior_direction(horizontal: np.ndarray) -> np.ndarray:
    """Dominant horizontal direction of motion via total least squares.

    The horizontal acceleration cloud of a swinging arm (or a stepping
    body) is elongated along the anterior axis. Ordinary least squares
    of y-on-x degenerates for near-vertical orientations, so the fit is
    total least squares — the principal eigenvector of the 2x2 scatter
    matrix — which treats both axes symmetrically.

    The returned unit vector's sign is chosen so its first nonzero
    component is positive; the offset metric and the half-cycle test
    are both sign-invariant, so the 180-degree ambiguity (which the
    paper resolves only for heading purposes) is harmless here.

    Args:
        horizontal: Array of shape (N, 2) of horizontal accelerations.

    Returns:
        Unit vector of shape (2,) along the anterior direction.

    Raises:
        SignalError: If fewer than 3 samples or a degenerate (isotropic
            zero-variance) cloud is supplied.
    """
    arr = np.asarray(horizontal, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise SignalError(f"horizontal must have shape (N, 2), got {arr.shape}")
    if arr.shape[0] < 3:
        raise SignalError(f"need at least 3 samples, got {arr.shape[0]}")
    centred = arr - arr.mean(axis=0)
    scatter = centred.T @ centred
    if not np.all(np.isfinite(scatter)):
        raise SignalError("horizontal contains non-finite values")
    if np.allclose(scatter, 0.0):
        raise SignalError("horizontal acceleration has no variance; no direction")
    eigvals, eigvecs = np.linalg.eigh(scatter)
    direction = eigvecs[:, int(np.argmax(eigvals))]
    # Canonical sign: first component positive (or second if first ~ 0).
    if abs(direction[0]) > 1e-12:
        if direction[0] < 0:
            direction = -direction
    elif direction[1] < 0:
        direction = -direction
    return direction / np.linalg.norm(direction)


def project_horizontal(
    horizontal: np.ndarray,
    direction: np.ndarray,
) -> np.ndarray:
    """Project horizontal accelerations onto a unit direction.

    Args:
        horizontal: Array of shape (N, 2).
        direction: Unit vector of shape (2,) (e.g. from
            :func:`anterior_direction`).

    Returns:
        1-D array of shape (N,): the anterior acceleration.
    """
    arr = np.asarray(horizontal, dtype=float)
    d = np.asarray(direction, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise SignalError(f"horizontal must have shape (N, 2), got {arr.shape}")
    if d.shape != (2,):
        raise SignalError(f"direction must have shape (2,), got {d.shape}")
    norm = np.linalg.norm(d)
    if not np.isfinite(norm) or norm < 1e-12:
        raise SignalError("direction must be a nonzero finite vector")
    return arr @ (d / norm)
