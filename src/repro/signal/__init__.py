"""Digital signal processing substrate for pedestrian tracking.

This package contains every low-level signal primitive that the
pipelines in :mod:`repro.core` and :mod:`repro.baselines` are composed
from: filtering, peak detection, gait-cycle segmentation, mean-removal
integration, correlation utilities, axis projection, critical-point
extraction, windowing and activity features.

All functions operate on plain :class:`numpy.ndarray` inputs so the
substrate is reusable outside the PTrack pipeline.
"""

from repro.signal.correlation import (
    autocorrelation,
    best_lag,
    half_cycle_correlation,
    normalized_cross_correlation,
    phase_difference_fraction,
)
from repro.signal.critical_points import (
    CriticalPoint,
    CriticalPointKind,
    critical_points,
    turning_points,
    zero_crossings,
)
from repro.signal.features import FEATURE_NAMES, activity_features
from repro.signal.filters import (
    butter_lowpass,
    detrend_mean,
    gravity_component,
    moving_average,
)
from repro.signal.integration import (
    cumulative_trapezoid,
    double_integrate_mean_removal,
    integrate_mean_removal,
    peak_to_peak_displacement,
)
from repro.signal.peaks import detect_peaks, detect_valleys, peak_prominences
from repro.signal.projection import (
    anterior_direction,
    project_horizontal,
    split_vertical_horizontal,
)
from repro.signal.resample import resample_trace, split_on_gaps
from repro.signal.segmentation import (
    Segment,
    segment_gait_cycles,
    segment_by_valleys,
    sliding_windows,
)

__all__ = [
    "autocorrelation",
    "best_lag",
    "half_cycle_correlation",
    "normalized_cross_correlation",
    "phase_difference_fraction",
    "CriticalPoint",
    "CriticalPointKind",
    "critical_points",
    "turning_points",
    "zero_crossings",
    "FEATURE_NAMES",
    "activity_features",
    "butter_lowpass",
    "detrend_mean",
    "gravity_component",
    "moving_average",
    "cumulative_trapezoid",
    "double_integrate_mean_removal",
    "integrate_mean_removal",
    "peak_to_peak_displacement",
    "detect_peaks",
    "detect_valleys",
    "peak_prominences",
    "anterior_direction",
    "project_horizontal",
    "split_vertical_horizontal",
    "Segment",
    "resample_trace",
    "segment_gait_cycles",
    "split_on_gaps",
    "segment_by_valleys",
    "sliding_windows",
]
