"""Fleet-batched signal kernels: many windows per C-kernel dispatch.

The scalar pipeline pays one scipy dispatch per window per primitive
(peaks, valleys, prominences) — microseconds of Python/marshalling
around nanoseconds of scanning. When a serving fleet stages hundreds of
windows per ingest round, that overhead dominates. The kernels here
amortise it: all windows are packed into **one** concatenated signal
with ``+inf`` separator samples and scanned by a single backend call.

The separator trick preserves bit-identical semantics per window:

* a ``+inf`` sample is taller than any finite neighbour, so no window
  sample adjacent to it can start a rise or end a fall — exactly the
  border behaviour of an isolated window (edge samples are never
  peaks);
* the prominence scan stops at the first sample *higher* than the
  peak, so an ``+inf`` wall bounds the scan to the window interior —
  the same sample set an isolated scan covers.

Spacing enforcement and cycle pairing cannot cross separators either:
they run per window through the exact helpers the scalar detectors use
(:func:`repro.signal.peaks._enforce_min_distance`,
:func:`repro.signal.segmentation._pair_cycles`), so every decision is
shared code, not a re-implementation. The differential tests assert
window-for-window identity against :func:`repro.signal.peaks.detect_peaks`
and :func:`repro.signal.segmentation.segment_gait_cycles`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, SignalError
from repro.runtime.backends import ComputeBackend, get_backend
from repro.signal.peaks import _enforce_min_distance
from repro.signal.segmentation import Segment, _pair_cycles

__all__ = [
    "pack_windows",
    "multi_window_extrema",
    "multi_window_extrema_pair",
    "batched_segment_windows",
    "crossing_indices",
    "batched_crossing_indices",
]

Windows = Union[np.ndarray, Sequence[np.ndarray]]


def pack_windows(
    windows: Windows,
    negate: bool = False,
    out: Optional[np.ndarray] = None,
    fill: float = np.inf,
) -> tuple:
    """Concatenate windows with separator samples (``+inf`` by default).

    Args:
        windows: A sequence of 1-D float64 windows (ragged lengths
            allowed), or a 2-D array treated as equal-length rows.
        negate: Pack the negated samples (for valley detection);
            separators keep their ``fill`` value.
        out: Optional preallocated 1-D scratch of at least the packed
            size (e.g. from a
            :class:`repro.serving.batch.FleetBatchBuffer`); a fresh
            array is allocated when absent or too small.
        fill: Separator sample value. ``+inf`` isolates extremum and
            prominence scans; ``0.0`` isolates hysteresis crossing
            scans (a zero sample is never armed).

    Returns:
        Tuple ``(concat, starts, lens)``: the packed signal (one
        separator after every window, including the last), each
        window's start offset, and each window's length.
    """
    if isinstance(windows, np.ndarray) and windows.ndim == 2:
        g, n = windows.shape
        total = g * (n + 1)
        if out is not None and out.size >= total:
            packed = out[:total].reshape(g, n + 1)
        else:
            packed = np.empty((g, n + 1))
        np.multiply(windows, -1.0, out=packed[:, :n]) if negate else np.copyto(
            packed[:, :n], windows
        )
        packed[:, n] = fill
        lens = np.full(g, n, dtype=np.intp)
        starts = np.arange(g, dtype=np.intp) * (n + 1)
        return packed.reshape(total), starts, lens
    lens = np.asarray([w.size for w in windows], dtype=np.intp)
    starts = np.zeros(lens.size, dtype=np.intp)
    if lens.size:
        np.cumsum(lens[:-1] + 1, out=starts[1:])
    total = int(lens.sum()) + lens.size
    if out is not None and out.size >= total:
        concat = out[:total]
    else:
        concat = np.empty(total)
    # One C-level concatenate (windows interleaved with a shared
    # one-sample separator) beats a per-window Python copy loop. The
    # negated variant negates the whole packed signal, then restores
    # the separators (negation of a copy is bitwise-exact).
    if lens.size:
        sep = np.empty(1)
        sep[0] = fill
        parts: list = []
        for w in windows:
            parts.append(w)
            parts.append(sep)
        np.concatenate(parts, out=concat)
        if negate:
            np.negative(concat, out=concat)
            concat[starts + lens] = fill
    return concat, starts, lens


def multi_window_extrema(
    windows: Windows,
    min_prominences: Union[float, Sequence[float]],
    min_distances: Union[int, Sequence[int]],
    backend: Optional[ComputeBackend] = None,
    negate: bool = False,
    scratch: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Per-window peak (or valley) detection in one backend dispatch.

    Semantically ``[detect_peaks(w, p, d) for w, p, d in zip(...)]``
    (or ``detect_valleys`` with ``negate=True``), evaluated with a
    single local-maxima scan and a single prominence scan over the
    packed signal. Windows must already be finite 1-D float64 — the
    callers own validation, mirroring where the scalar detectors
    validate.

    Args:
        windows: Windows to scan (sequence of 1-D arrays or 2-D rows).
        min_prominences: Prominence floor, scalar or one per window.
        min_distances: Spacing gate, scalar or one per window.
        backend: Compute backend; ``None`` resolves the default.
        negate: Detect valleys instead of peaks.
        scratch: Optional packing scratch (see :func:`pack_windows`).

    Returns:
        One sorted window-local index array per window.
    """
    be = backend if backend is not None else get_backend()
    concat, starts, lens = pack_windows(windows, negate=negate, out=scratch)
    return _extrema_from_packed(
        be, concat, starts, lens, min_prominences, min_distances
    )


def multi_window_extrema_pair(
    windows: Windows,
    peak_prominences: Union[float, Sequence[float]],
    valley_prominences: Union[float, Sequence[float]],
    min_distances: Union[int, Sequence[int]],
    backend: Optional[ComputeBackend] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Peaks *and* valleys of the same windows from one packing.

    Semantically the ``multi_window_extrema(...)`` /
    ``multi_window_extrema(..., negate=True)`` pair, but the windows
    are packed once: the valley pass negates the packed signal in
    place and restores the ``+inf`` separators, which is bitwise
    identical to packing the negated windows (float64 negation is
    exact), then reuses the same buffer.

    Args:
        windows: Windows to scan (sequence of 1-D arrays or 2-D rows).
        peak_prominences: Peak-prominence floor, scalar or per window.
        valley_prominences: Valley-prominence floor, scalar or per
            window.
        min_distances: Spacing gate, scalar or one per window.
        backend: Compute backend; ``None`` resolves the default.
        scratch: Optional packing scratch (see :func:`pack_windows`).

    Returns:
        Tuple ``(peaks_per, valleys_per)`` of per-window sorted
        window-local index arrays.
    """
    be = backend if backend is not None else get_backend()
    concat, starts, lens = pack_windows(windows, out=scratch)
    peaks_per = _extrema_from_packed(
        be, concat, starts, lens, peak_prominences, min_distances
    )
    if lens.size:
        np.negative(concat, out=concat)
        concat[starts + lens] = np.inf
    valleys_per = _extrema_from_packed(
        be, concat, starts, lens, valley_prominences, min_distances
    )
    return peaks_per, valleys_per


def _extrema_from_packed(
    be: ComputeBackend,
    concat: np.ndarray,
    starts: np.ndarray,
    lens: np.ndarray,
    min_prominences: Union[float, Sequence[float]],
    min_distances: Union[int, Sequence[int]],
) -> List[np.ndarray]:
    """Shared post-packing half of the multi-window extrema scans."""
    n_windows = lens.size
    empty = np.empty(0, dtype=int)
    results: List[np.ndarray] = [empty] * n_windows
    if n_windows == 0:
        return results
    proms_floor = np.broadcast_to(
        np.asarray(min_prominences, dtype=float), (n_windows,)
    )
    distances = np.broadcast_to(
        np.asarray(min_distances, dtype=np.intp), (n_windows,)
    )
    # One fused kernel call replaces the local_maxima + prominence
    # pair. extrema_block drops non-finite candidates, which here is
    # exactly the old interior filter: the separators are the only
    # non-finite samples in the packed signal (callers validate window
    # samples finite), and every separator index is a window's
    # one-past-the-end position.
    candidates, proms = be.extrema_block(concat)
    candidates = np.asarray(candidates, dtype=np.intp)
    if candidates.size == 0:
        return results
    win_ids = np.searchsorted(starts, candidates, side="right") - 1
    local = candidates - starts[win_ids]
    proms = np.asarray(proms, dtype=float)
    keep = proms >= proms_floor[win_ids]
    win_ids, local, proms = win_ids[keep], local[keep], proms[keep]
    m = win_ids.size
    if m == 0:
        return results
    # Candidates arrive in ascending packed order, so searchsorted cuts
    # recover each window's (still sorted) slice without np.split.
    bounds = np.empty(n_windows + 1, dtype=np.intp)
    bounds[0] = 0
    bounds[-1] = m
    if n_windows > 1:
        bounds[1:-1] = win_ids.searchsorted(np.arange(1, n_windows))
    # Spacing fast path: when a window's surviving candidates are
    # already >= min_distance apart, the greedy enforcement cannot
    # reject anything — accept the slice wholesale and run the scalar
    # greedy loop only for the (rare) crowded windows.
    if m > 1:
        tight = (win_ids[1:] == win_ids[:-1]) & (
            local[1:] - local[:-1] < distances[win_ids[1:]]
        )
        crowded = set(win_ids[1:][tight].tolist())
    else:
        crowded = set()
    bl = bounds.tolist()
    for w in range(n_windows):
        lo, hi = bl[w], bl[w + 1]
        if lo == hi:
            continue
        cand = local[lo:hi]
        if hi - lo == 1 or w not in crowded or int(distances[w]) == 1:
            results[w] = cand
            continue
        results[w] = _enforce_min_distance(
            cand, proms[lo:hi], int(distances[w]), int(lens[w])
        )
    return results


def batched_segment_windows(
    windows: Sequence[np.ndarray],
    sample_rate_hz: float,
    min_step_rate_hz: float = 1.2,
    max_step_rate_hz: float = 3.2,
    min_prominence: float = 0.6,
    backend: Optional[ComputeBackend] = None,
    scratch: Optional[np.ndarray] = None,
) -> List[Union[List[Segment], Exception]]:
    """Gait-cycle segmentation of many windows per kernel dispatch.

    Semantically ``[segment_gait_cycles(w, ...) for w in windows]``
    with the peak/valley scans batched across all windows. A window
    that the scalar segmenter would reject (non-finite samples) yields
    its exception *in place* instead of raising, so one poisoned
    session cannot take down a fleet round — the caller decides the
    isolation policy.

    Args:
        windows: Vertical-acceleration windows, one per session.
        sample_rate_hz: Shared sampling rate.
        min_step_rate_hz: Slowest admissible stepping rate.
        max_step_rate_hz: Fastest admissible stepping rate.
        min_prominence: Step-peak prominence floor.
        backend: Compute backend; ``None`` resolves the default.
        scratch: Optional packing scratch.

    Returns:
        Per window, either the cycle list or the exception the scalar
        segmenter would have raised.

    Raises:
        ConfigurationError: On an invalid rate band (a caller mistake,
            not a per-session condition).
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError(
            f"sample_rate_hz must be positive, got {sample_rate_hz}"
        )
    if not 0 < min_step_rate_hz < max_step_rate_hz:
        raise ConfigurationError(
            f"need 0 < min_step_rate_hz < max_step_rate_hz, got "
            f"({min_step_rate_hz}, {max_step_rate_hz})"
        )
    n_windows = len(windows)
    results: List[Union[List[Segment], Exception]] = [[] for _ in range(n_windows)]
    if n_windows == 0:
        return results
    min_gap = max(1, int(round(sample_rate_hz / max_step_rate_hz)))
    max_gap = int(round(sample_rate_hz / min_step_rate_hz))
    live = []
    for i, w in enumerate(windows):
        if w.ndim != 1:
            results[i] = SignalError(
                f"vertical must be 1-D, got shape {w.shape}"
            )
        elif w.size == 0:
            results[i] = []
        elif not np.isfinite(w).all():
            results[i] = SignalError("vertical contains non-finite values")
        else:
            live.append(i)
    if not live:
        return results
    live_windows = [windows[i] for i in live]
    peaks_per, valleys_per = multi_window_extrema_pair(
        live_windows,
        min_prominence,
        min_prominence * 0.5,
        min_gap,
        backend,
        scratch=scratch,
    )
    for i, peaks, valleys in zip(live, peaks_per, valleys_per):
        if peaks.size < 2:
            continue
        results[i] = _pair_cycles(
            windows[i].size, peaks, valleys, min_gap, max_gap
        )
    return results


def crossing_indices(x: np.ndarray, hysteresis: float) -> np.ndarray:
    """Zero-crossing sample indices with amplitude hysteresis.

    The index-array core of
    :func:`repro.signal.critical_points.zero_crossings` (same armed-sign
    state machine, vectorised), returned without the
    :class:`~repro.signal.critical_points.CriticalPoint` wrappers the
    batched offset kernel would immediately unwrap.
    """
    arr = np.asarray(x, dtype=float)
    if arr.size < 2:
        return np.empty(0, dtype=np.intp)
    signs = np.zeros(arr.size, dtype=np.int8)
    signs[arr > hysteresis] = 1
    signs[arr < -hysteresis] = -1
    armed = np.flatnonzero(signs)
    if armed.size < 2:
        return np.empty(0, dtype=np.intp)
    armed_signs = signs[armed]
    flips = np.flatnonzero(armed_signs[1:] != armed_signs[:-1]) + 1
    return armed[flips]


def batched_crossing_indices(
    windows: Sequence[np.ndarray],
    hysteresis: float,
    scratch: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Per-window :func:`crossing_indices` in one packed state machine.

    Windows are packed with ``0.0`` separators — a zero sample sits
    inside the hysteresis band, is never armed, and therefore cannot
    form a flip pair — and flips are additionally required to pair two
    armed samples of the *same* window, so the first armed sample of a
    window never reports the last armed sample of the previous window
    as a crossing. Per window the armed subsequence and its flips are
    exactly the scalar machine's.
    """
    n_windows = len(windows)
    empty = np.empty(0, dtype=np.intp)
    results: List[np.ndarray] = [empty] * n_windows
    if n_windows == 0:
        return results
    concat, starts, _lens = pack_windows(windows, out=scratch, fill=0.0)
    signs = np.zeros(concat.size, dtype=np.int8)
    signs[concat > hysteresis] = 1
    signs[concat < -hysteresis] = -1
    armed = np.flatnonzero(signs)
    if armed.size < 2:
        return results
    owners = starts.searchsorted(armed, side="right") - 1
    armed_signs = signs[armed]
    flips = (armed_signs[1:] != armed_signs[:-1]) & (
        owners[1:] == owners[:-1]
    )
    hits = armed[1:][flips]
    if hits.size == 0:
        return results
    win_ids = owners[1:][flips]
    local = hits - starts[win_ids]
    bounds = np.empty(n_windows + 1, dtype=np.intp)
    bounds[0] = 0
    bounds[-1] = hits.size
    if n_windows > 1:
        bounds[1:-1] = win_ids.searchsorted(np.arange(1, n_windows))
    for w in range(n_windows):
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        if lo != hi:
            results[w] = local[lo:hi]
    return results
