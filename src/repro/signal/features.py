"""Windowed activity features for learned classifiers (SCAR baseline).

Dernbach et al. [18] classify simple/complex activities from short
accelerometer windows using time- and frequency-domain statistics.
This module computes a comparable feature vector; it is used only by
the SCAR baseline — PTrack itself is training-free by design.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import SignalError

__all__ = ["FEATURE_NAMES", "activity_features"]

FEATURE_NAMES: Tuple[str, ...] = (
    "vert_mean",
    "vert_std",
    "vert_rms",
    "vert_energy",
    "vert_zero_cross_rate",
    "vert_dominant_freq_hz",
    "vert_spectral_entropy",
    "horiz_mean_mag",
    "horiz_std_mag",
    "horiz_dominant_freq_hz",
    "vert_horiz_correlation",
    "magnitude_mean",
    "magnitude_std",
    "magnitude_skew",
    "magnitude_kurtosis",
    "peak_rate_hz",
)
"""Names of the entries of a feature vector, in order."""


def _spectral(x: np.ndarray, sample_rate_hz: float) -> Tuple[float, float]:
    """(dominant frequency, spectral entropy) of a window."""
    centred = x - x.mean()
    spectrum = np.abs(np.fft.rfft(centred)) ** 2
    freqs = np.fft.rfftfreq(centred.size, d=1.0 / sample_rate_hz)
    if spectrum.size <= 1 or spectrum[1:].sum() <= 0:
        return 0.0, 0.0
    # Skip the DC bin for the dominant frequency.
    dom = float(freqs[1:][int(np.argmax(spectrum[1:]))])
    p = spectrum[1:] / spectrum[1:].sum()
    p = p[p > 0]
    entropy = float(-(p * np.log2(p)).sum() / np.log2(max(2, p.size)))
    return dom, entropy


def _zero_cross_rate(x: np.ndarray, sample_rate_hz: float) -> float:
    centred = x - x.mean()
    signs = np.sign(centred)
    signs = signs[signs != 0]
    if signs.size < 2:
        return 0.0
    crossings = int(np.count_nonzero(np.diff(signs)))
    duration_s = x.size / sample_rate_hz
    return crossings / duration_s


def _moments(x: np.ndarray) -> Tuple[float, float, float, float]:
    mean = float(x.mean())
    std = float(x.std())
    if std < 1e-12:
        return mean, std, 0.0, 0.0
    z = (x - mean) / std
    return mean, std, float(np.mean(z**3)), float(np.mean(z**4) - 3.0)


def activity_features(
    acceleration: np.ndarray,
    sample_rate_hz: float,
) -> np.ndarray:
    """Feature vector of one acceleration window.

    Args:
        acceleration: Array of shape (N, 3), world-frame linear
            acceleration (z vertical).
        sample_rate_hz: Sampling rate in Hz.

    Returns:
        1-D array of ``len(FEATURE_NAMES)`` floats.

    Raises:
        SignalError: On bad shape, fewer than 8 samples, or a
            non-positive sample rate.
    """
    arr = np.asarray(acceleration, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise SignalError(f"acceleration must have shape (N, 3), got {arr.shape}")
    if arr.shape[0] < 8:
        raise SignalError(f"need at least 8 samples, got {arr.shape[0]}")
    if sample_rate_hz <= 0:
        raise SignalError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
    if not np.all(np.isfinite(arr)):
        raise SignalError("acceleration contains non-finite values")

    vert = arr[:, 2]
    horiz_mag = np.linalg.norm(arr[:, :2], axis=1)
    mag = np.linalg.norm(arr, axis=1)

    vert_dom, vert_ent = _spectral(vert, sample_rate_hz)
    horiz_dom, _ = _spectral(horiz_mag, sample_rate_hz)
    m_mean, m_std, m_skew, m_kurt = _moments(mag)

    v_std = vert.std()
    h_std = horiz_mag.std()
    if v_std < 1e-12 or h_std < 1e-12:
        vh_corr = 0.0
    else:
        vh_corr = float(
            np.mean((vert - vert.mean()) * (horiz_mag - horiz_mag.mean()))
            / (v_std * h_std)
        )

    # Peak rate: zero-crossing rate of the centred vertical divided by 2
    # approximates oscillations per second without a prominence choice.
    zcr = _zero_cross_rate(vert, sample_rate_hz)

    return np.array(
        [
            float(vert.mean()),
            float(v_std),
            float(np.sqrt(np.mean(vert**2))),
            float(np.mean((vert - vert.mean()) ** 2)),
            zcr,
            vert_dom,
            vert_ent,
            float(horiz_mag.mean()),
            float(h_std),
            horiz_dom,
            vh_corr,
            m_mean,
            m_std,
            m_skew,
            m_kurt,
            zcr / 2.0,
        ],
        dtype=float,
    )
