"""Acceleration segmentation into gait-cycle candidates.

The existing step-counting stack reused by PTrack (Fig. 2, grayed
modules) ends with *acceleration segmentation*: the filtered vertical
acceleration is cut into candidate gait cycles, each spanning two
step peaks (left + right leg), delimited at valleys so that every
segment starts and ends near zero vertical velocity — the precondition
of the mean-removal integration used later by the stride estimator.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SignalError
from repro.signal.peaks import detect_peaks, detect_valleys

__all__ = ["Segment", "segment_gait_cycles", "segment_by_valleys", "sliding_windows"]


@dataclass(frozen=True)
class Segment:
    """A half-open sample range ``[start, end)`` within a trace.

    Attributes:
        start: First sample index (inclusive).
        end: One past the last sample index (exclusive).
        peak_indices: Step-peak indices falling inside the segment.
    """

    start: int
    end: int
    peak_indices: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid segment [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Number of samples covered by the segment."""
        return self.end - self.start

    def slice(self, x: np.ndarray) -> np.ndarray:
        """Extract this segment from an array (along axis 0)."""
        return np.asarray(x)[self.start : self.end]


def segment_by_valleys(
    vertical: np.ndarray,
    peaks: np.ndarray,
    valleys: np.ndarray,
) -> List[Segment]:
    """Cut a trace into per-step segments bounded by valleys around each peak.

    Each returned segment covers exactly one step peak and extends to
    the nearest valley on either side (or to the trace boundary).

    Args:
        vertical: The vertical acceleration the peaks were found on.
        peaks: Sorted step-peak indices.
        valleys: Sorted valley indices.

    Returns:
        One :class:`Segment` per peak, in time order.
    """
    v = np.asarray(vertical, dtype=float)
    segs: List[Segment] = []
    for p in np.asarray(peaks, dtype=int):
        left_candidates = valleys[valleys < p]
        right_candidates = valleys[valleys > p]
        start = int(left_candidates[-1]) if left_candidates.size else 0
        end = int(right_candidates[0]) + 1 if right_candidates.size else v.size
        if end - start >= 3:
            segs.append(Segment(start, end, (int(p),)))
    return segs


def segment_gait_cycles(
    vertical: np.ndarray,
    sample_rate_hz: float,
    min_step_rate_hz: float = 1.2,
    max_step_rate_hz: float = 3.2,
    min_prominence: float = 0.6,
) -> List[Segment]:
    """Segment vertical acceleration into two-step gait-cycle candidates.

    The detector finds step peaks whose spacing is plausible for human
    gait, then pairs consecutive peaks into cycles. Cycle boundaries are
    placed at the valley preceding the first peak and the valley
    following the second, so boundaries sit near zero vertical velocity.

    This stage is deliberately permissive: vigorous arm activities also
    produce qualifying peak trains and *will* appear as candidates.
    Rejecting them is the job of PTrack's gait-type identification, not
    of this module (the paper keeps the same split).

    Args:
        vertical: Filtered vertical (linear) acceleration, m/s^2.
        sample_rate_hz: Sampling rate in Hz.
        min_step_rate_hz: Slowest admissible stepping rate.
        max_step_rate_hz: Fastest admissible stepping rate.
        min_prominence: Peak prominence floor in m/s^2; suppresses
            micro-motions such as mouse moves or keystrokes, which the
            paper notes are eliminated before gait identification.

    Returns:
        List of candidate cycles; each carries its two step peaks.

    Raises:
        ConfigurationError: If the rate band is empty or negative.
        SignalError: If the input is not a finite 1-D signal.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
    if not 0 < min_step_rate_hz < max_step_rate_hz:
        raise ConfigurationError(
            f"need 0 < min_step_rate_hz < max_step_rate_hz, got "
            f"({min_step_rate_hz}, {max_step_rate_hz})"
        )
    v = np.asarray(vertical, dtype=float)
    if v.ndim != 1:
        raise SignalError(f"vertical must be 1-D, got shape {v.shape}")
    if v.size == 0:
        return []
    if not np.all(np.isfinite(v)):
        raise SignalError("vertical contains non-finite values")

    min_gap = max(1, int(round(sample_rate_hz / max_step_rate_hz)))
    max_gap = int(round(sample_rate_hz / min_step_rate_hz))
    peaks = detect_peaks(v, min_prominence=min_prominence, min_distance=min_gap)
    if peaks.size < 2:
        return []
    valleys = detect_valleys(v, min_prominence=min_prominence * 0.5, min_distance=min_gap)
    return _pair_cycles(v.size, peaks, valleys, min_gap, max_gap)


def _pair_cycles(
    n: int,
    peaks: np.ndarray,
    valleys: np.ndarray,
    min_gap: int,
    max_gap: int,
) -> List[Segment]:
    """Pair consecutive step peaks into cycle segments.

    The pairing walk of :func:`segment_gait_cycles`, shared with the
    fleet-batched segmenter (:mod:`repro.signal.batched`) so both paths
    make bit-identical pairing decisions from the same peak/valley sets.
    """
    cycles: List[Segment] = []
    # Pure-integer walk over Python lists: the valleys are sorted, so
    # the nearest-valley lookups are bisections rather than boolean
    # masks — this runs once per window fleet-wide and the array form
    # was a measurable share of the serving profile. Segments are
    # built via __new__/__setattr__ — the walk already guarantees
    # 0 <= start < end, so the validating constructor (which pays the
    # frozen-dataclass __init__ on every cycle fleet-wide) is skipped.
    seg_new = object.__new__
    seg_set = object.__setattr__
    plist = peaks.tolist()
    vlist = valleys.tolist()
    nv = len(vlist)
    i = 0
    while i + 1 < len(plist):
        p1, p2 = plist[i], plist[i + 1]
        if p2 - p1 > max_gap:
            # Gap too long to be two consecutive steps; slide forward.
            i += 1
            continue
        li = bisect.bisect_left(vlist, p1)
        ri = bisect.bisect_right(vlist, p2)
        start = vlist[li - 1] if li else max(0, p1 - min_gap)
        end = vlist[ri] + 1 if ri < nv else min(n, p2 + min_gap + 1)
        if end - start >= 4:
            seg = seg_new(Segment)
            seg_set(seg, "start", start)
            seg_set(seg, "end", end)
            seg_set(seg, "peak_indices", (p1, p2))
            cycles.append(seg)
        i += 2
    return cycles


def sliding_windows(
    n_samples: int,
    window: int,
    hop: int,
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, end)`` index pairs of a hopping window.

    Args:
        n_samples: Total number of samples available.
        window: Window length in samples.
        hop: Hop (stride) between window starts in samples.

    Yields:
        Half-open ranges fully contained in ``[0, n_samples)``.

    Raises:
        ConfigurationError: If window or hop are not positive.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if hop < 1:
        raise ConfigurationError(f"hop must be >= 1, got {hop}")
    start = 0
    while start + window <= n_samples:
        yield start, start + window
        start += hop
