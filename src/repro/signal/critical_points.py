"""Critical-point extraction: turning points and crossing points.

The heart of PTrack's gait-type identification (SIII-B1) is comparing
*where* each projected axis reaches its critical points:

* a **turning point** is a local extremum (peak or valley) of a signal;
* a **crossing point** is a zero crossing — the paper defines it as the
  moment one axis sits at a turning point while the perpendicular axis
  equals zero, which for the matching logic reduces to collecting the
  zero crossings of each axis.

For a rigid single-source motion the two projected axes are functions
of one underlying angle, so their critical points land at (almost) the
same sample indices; for walking — arm swing superposed on body bounce
— the combined signals shift their critical points apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import SignalError
from repro.signal.peaks import detect_peaks, detect_valleys

__all__ = [
    "CriticalPointKind",
    "CriticalPoint",
    "turning_points",
    "zero_crossings",
    "critical_points",
]


class CriticalPointKind(enum.Enum):
    """Kind of a critical point on one projected axis."""

    PEAK = "peak"
    VALLEY = "valley"
    CROSSING = "crossing"

    @property
    def is_turning(self) -> bool:
        """True for peaks and valleys."""
        return self is not CriticalPointKind.CROSSING


@dataclass(frozen=True, order=True)
class CriticalPoint:
    """A critical point located at a sample index.

    Ordering is by ``index`` so lists of critical points sort into time
    order naturally.

    Attributes:
        index: Sample index within the analysed segment.
        kind: Whether the point is a peak, valley or zero crossing.
    """

    index: int
    kind: CriticalPointKind


def turning_points(
    x: np.ndarray,
    min_prominence: float = 0.0,
    min_distance: int = 1,
) -> List[CriticalPoint]:
    """Peaks and valleys of a signal as :class:`CriticalPoint` objects.

    Args:
        x: 1-D signal segment.
        min_prominence: Prominence floor passed to the peak detector;
            filters out noise wiggles that would flood the matching.
        min_distance: Minimum spacing between same-kind extrema.

    Returns:
        Time-ordered list of PEAK/VALLEY points.
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise SignalError(f"signal must be 1-D, got shape {arr.shape}")
    pts = [
        CriticalPoint(int(i), CriticalPointKind.PEAK)
        for i in detect_peaks(arr, min_prominence, min_distance)
    ]
    pts += [
        CriticalPoint(int(i), CriticalPointKind.VALLEY)
        for i in detect_valleys(arr, min_prominence, min_distance)
    ]
    return sorted(pts)


def zero_crossings(x: np.ndarray, hysteresis: float = 0.0) -> List[CriticalPoint]:
    """Zero crossings of a signal, with optional amplitude hysteresis.

    A crossing is registered at the first sample on the far side of
    zero. With ``hysteresis > 0`` the signal must travel beyond
    ``±hysteresis`` on each side before another crossing can register,
    suppressing chatter when the signal hovers near zero.

    Hysteresis is a state machine over the *armed* samples only (those
    beyond ``±hysteresis``): samples inside the dead band never change
    the armed sign, so the crossings are exactly the sign changes of
    the armed subsequence — which is what the vectorised form below
    computes. ``_zero_crossings_scalar`` keeps the stateful reference
    implementation; the two are asserted identical by the property
    suite.

    Args:
        x: 1-D signal segment.
        hysteresis: Minimum excursion required between crossings.

    Returns:
        Time-ordered list of CROSSING points.
    """
    arr = _validate_crossing_args(x, hysteresis)
    if arr.size < 2:
        return []
    signs = np.zeros(arr.size, dtype=np.int8)
    signs[arr > hysteresis] = 1
    signs[arr < -hysteresis] = -1
    armed = np.flatnonzero(signs)
    if armed.size < 2:
        return []
    armed_signs = signs[armed]
    flips = np.flatnonzero(armed_signs[1:] != armed_signs[:-1]) + 1
    return [
        CriticalPoint(int(i), CriticalPointKind.CROSSING) for i in armed[flips]
    ]


def _validate_crossing_args(x: np.ndarray, hysteresis: float) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise SignalError(f"signal must be 1-D, got shape {arr.shape}")
    if hysteresis < 0:
        raise SignalError(f"hysteresis must be >= 0, got {hysteresis}")
    return arr


def _zero_crossings_scalar(
    x: np.ndarray, hysteresis: float = 0.0
) -> List[CriticalPoint]:
    """Per-sample reference implementation of :func:`zero_crossings`.

    Kept as the behavioural specification for the vectorised kernel
    (property-tested bit-identical) and as the baseline timed by
    ``scripts/bench.py``.
    """
    arr = _validate_crossing_args(x, hysteresis)
    points: List[CriticalPoint] = []
    if arr.size < 2:
        return points
    armed_sign = 0  # sign the signal most recently exceeded hysteresis at
    for i in range(arr.size):
        v = arr[i]
        if v > hysteresis:
            sign = 1
        elif v < -hysteresis:
            sign = -1
        else:
            continue
        if armed_sign == 0:
            armed_sign = sign
        elif sign != armed_sign:
            points.append(CriticalPoint(i, CriticalPointKind.CROSSING))
            armed_sign = sign
    return points


def critical_points(
    x: np.ndarray,
    min_prominence: float = 0.0,
    min_distance: int = 1,
    crossing_hysteresis: float = 0.0,
) -> List[CriticalPoint]:
    """All critical points of a signal: turning points plus zero crossings.

    Duplicate indices (a crossing coinciding with an extremum, possible
    on noisy plateaus) are collapsed, keeping the turning point, since
    turning points carry the stronger timing evidence.

    Args:
        x: 1-D signal segment; should be detrended (zero-mean) so that
            "zero" is the oscillation midline.
        min_prominence: Prominence floor for turning points.
        min_distance: Minimum spacing for turning points.
        crossing_hysteresis: Hysteresis for zero crossings.

    Returns:
        Time-ordered list of critical points.
    """
    turns = turning_points(x, min_prominence, min_distance)
    crossings = zero_crossings(x, crossing_hysteresis)
    taken = {p.index for p in turns}
    merged = turns + [p for p in crossings if p.index not in taken]
    return sorted(merged)
