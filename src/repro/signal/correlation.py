"""Correlation utilities: auto-correlation, half-cycle test, phase lag.

Two PTrack tests live on these primitives (SIII-B1):

* **Half-cycle auto-correlation ``C``** — within one gait cycle the
  user steps twice, so the anterior acceleration repeats at the
  half-cycle lag and its auto-correlation there is large and positive.
  Arm gestures are back-and-forth (sine turns into cosine at direction
  reversals), so their half-cycle correlation is not reliably positive.

* **Fixed phase difference** — for the body alone, vertical and
  anterior accelerations keep a fixed quarter-period phase offset
  (Kim et al. [22]); stepping inherits it, arbitrary gestures do not.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SignalError

__all__ = [
    "autocorrelation",
    "half_cycle_correlation",
    "batch_half_cycle_correlation",
    "normalized_cross_correlation",
    "best_lag",
    "phase_difference_fraction",
    "batch_phase_difference_fraction",
]


def _validate(x: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise SignalError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size < 2:
        raise SignalError(f"{name} needs at least 2 samples, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise SignalError(f"{name} contains non-finite values")
    return arr


def _degenerate(window_std: float, window: np.ndarray) -> bool:
    """Whether a correlation window carries no real variance.

    An exact ``std == 0.0`` check misses constant signals whose mean
    picks up a rounding residue (pairwise summation can be off by one
    ulp for some constants and window lengths); the residue then
    correlates with itself at 1.0. Variance below ``1e-12`` of the
    window's amplitude is indistinguishable from that rounding noise,
    so such windows carry no periodicity evidence and score 0.0.
    """
    scale = float(np.abs(window).max()) if window.size else 0.0
    return window_std <= 1e-12 * scale


def autocorrelation(x: np.ndarray, lag: int) -> float:
    """Normalised auto-correlation of ``x`` at one lag.

    Pearson correlation between ``x[:-lag]`` and ``x[lag:]`` — bounded
    in [-1, 1] and invariant to offset and scale, so thresholding at
    zero is meaningful across users and devices.

    Args:
        x: 1-D signal.
        lag: Positive lag in samples, strictly less than ``len(x)``.

    Returns:
        The correlation coefficient; 0.0 when either windowed half has
        no variance (a constant signal carries no periodicity evidence).
    """
    arr = _validate(x, "signal")
    if not 0 < lag < arr.size:
        raise SignalError(f"lag must be in (0, {arr.size}), got {lag}")
    a, b = arr[:-lag], arr[lag:]
    sa, sb = a.std(), b.std()
    if _degenerate(sa, a) or _degenerate(sb, b):
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def half_cycle_correlation(anterior: np.ndarray) -> float:
    """PTrack's ``C``: auto-correlation of one cycle at the half-cycle lag.

    Args:
        anterior: Anterior acceleration covering exactly one gait-cycle
            candidate (two steps when the candidate is genuine gait).

    Returns:
        The normalised auto-correlation at ``len(anterior) // 2``.
    """
    arr = _validate(anterior, "anterior")
    if arr.size < 4:
        raise SignalError(f"cycle too short for half-cycle test: {arr.size} samples")
    return autocorrelation(arr, arr.size // 2)


def batch_half_cycle_correlation(
    segments: Sequence[np.ndarray],
) -> np.ndarray:
    """``C`` of many candidate cycles, evaluated in length-grouped batches.

    The step counter classifies every candidate cycle of a trace;
    evaluating their half-cycle correlations one call at a time costs a
    Python round-trip per cycle. Here cycles of equal length are
    stacked into a matrix and their lagged Pearson correlations
    computed row-wise in one shot, which is where real traces
    concentrate (the segmenter cuts near-constant cycle lengths within
    a gait bout).

    Degenerate cycles — fewer than 4 samples, or zero variance in a
    lag window — score 0.0 instead of raising, mirroring how the
    decision flow treats a failed half-cycle test.

    Args:
        segments: 1-D cycle arrays (lengths may differ).

    Returns:
        Array of ``C`` values aligned with ``segments``.
    """
    out = np.zeros(len(segments))
    by_length: dict = {}
    arrays: List[np.ndarray] = []
    for i, seg in enumerate(segments):
        arr = np.asarray(seg, dtype=float)
        arrays.append(arr)
        if arr.ndim == 1 and arr.size >= 4 and np.all(np.isfinite(arr)):
            by_length.setdefault(arr.size, []).append(i)
    for size, indices in by_length.items():
        lag = size // 2
        mat = np.stack([arrays[i] for i in indices])
        a, b = mat[:, :-lag], mat[:, lag:]
        a_c = a - a.mean(axis=1, keepdims=True)
        b_c = b - b.mean(axis=1, keepdims=True)
        sa, sb = a.std(axis=1), b.std(axis=1)
        # Same relative-scale degeneracy rule as the scalar path (see
        # _degenerate), applied row-wise so the two stay equivalent.
        ok = (sa > 1e-12 * np.abs(a).max(axis=1)) & (
            sb > 1e-12 * np.abs(b).max(axis=1)
        )
        denom = sa * sb
        cov = (a_c * b_c).mean(axis=1)
        vals = np.zeros(len(indices))
        np.divide(cov, denom, out=vals, where=ok & (denom > 0.0))
        out[indices] = vals
    return out


def normalized_cross_correlation(x: np.ndarray, y: np.ndarray, lag: int) -> float:
    """Pearson correlation between ``x`` and ``y`` shifted by ``lag``.

    Positive ``lag`` compares ``x[t]`` with ``y[t + lag]`` (``y`` leads
    by ``lag`` samples); negative compares against ``y`` delayed.

    Returns:
        Correlation in [-1, 1]; 0.0 for degenerate (constant) overlap.
    """
    a = _validate(x, "x")
    b = _validate(y, "y")
    if a.size != b.size:
        raise SignalError(f"length mismatch: {a.size} vs {b.size}")
    n = a.size
    if abs(lag) >= n - 1:
        raise SignalError(f"|lag| must be < {n - 1}, got {lag}")
    if lag >= 0:
        aa, bb = a[: n - lag], b[lag:]
    else:
        aa, bb = a[-lag:], b[: n + lag]
    sa, sb = aa.std(), bb.std()
    if _degenerate(sa, aa) or _degenerate(sb, bb):
        return 0.0
    return float(np.mean((aa - aa.mean()) * (bb - bb.mean())) / (sa * sb))


def _sliding_pearson(
    a: np.ndarray,
    b: np.ndarray,
    lags: Sequence[int],
    return_conditioning: bool = False,
):
    """Pearson correlation of ``(x, y shifted by lag)`` for many lags at once.

    Evaluates :func:`normalized_cross_correlation` for every lag with a
    single batch of array operations instead of one Python call per
    lag. Each lag's overlap window is laid out as a masked row of an
    ``(n_lags, n)`` matrix and the two-pass mean/std/covariance formula
    runs row-wise, reproducing the per-lag computation to within
    floating-point summation order (≈1e-15 relative).

    Args:
        a: Reference signal, validated 1-D.
        b: Shifted signal of the same length.
        lags: Lags with ``|lag| < len(a) - 1``.
        return_conditioning: Also return whether every window carries
            enough variance for the values to be numerically meaningful.

    Returns:
        Array of correlation values, one per lag (degenerate
        zero-variance windows read 0.0); with ``return_conditioning``,
        a ``(values, well_conditioned)`` tuple.
    """
    n = a.size
    lag_arr = np.asarray(list(lags), dtype=np.int64)[:, None]  # (L, 1)
    j = np.arange(n)[None, :]  # (1, n)
    m = n - np.abs(lag_arr)  # overlap length per lag, (L, 1)
    valid = j < m
    a_idx = np.where(lag_arr >= 0, j, j - lag_arr)
    b_idx = np.where(lag_arr >= 0, j + lag_arr, j)
    aa = np.where(valid, a[np.clip(a_idx, 0, n - 1)], 0.0)
    bb = np.where(valid, b[np.clip(b_idx, 0, n - 1)], 0.0)
    mf = m.astype(float)
    aa_c = np.where(valid, aa - aa.sum(axis=1, keepdims=True) / mf, 0.0)
    bb_c = np.where(valid, bb - bb.sum(axis=1, keepdims=True) / mf, 0.0)
    var_a = np.einsum("ij,ij->i", aa_c, aa_c) / mf[:, 0]
    var_b = np.einsum("ij,ij->i", bb_c, bb_c) / mf[:, 0]
    cov = np.einsum("ij,ij->i", aa_c, bb_c) / mf[:, 0]
    denom = np.sqrt(var_a) * np.sqrt(var_b)
    out = np.zeros(lag_arr.shape[0])
    np.divide(cov, denom, out=out, where=denom > 0.0)
    if return_conditioning:
        # A window whose standard deviation sits below ~1e-6 of the
        # signal amplitude turns the Pearson quotient into an amplifier
        # of summation-order rounding: different (equally valid)
        # formulas then disagree by O(1). Callers needing scalar-exact
        # selection fall back to the reference on such inputs.
        scale_a = float(np.abs(a).max())
        scale_b = float(np.abs(b).max())
        well_conditioned = (
            scale_a > 0.0
            and scale_b > 0.0
            and bool(np.all(np.sqrt(var_a) > 1e-6 * scale_a))
            and bool(np.all(np.sqrt(var_b) > 1e-6 * scale_b))
        )
        return out, well_conditioned
    return out


def best_lag(x: np.ndarray, y: np.ndarray, max_lag: int) -> int:
    """Lag in ``[-max_lag, max_lag]`` maximising the cross-correlation.

    The correlation values for all candidate lags are computed in one
    vectorised batch (:func:`_sliding_pearson`); the selection then
    walks them in the scalar reference's order (ascending ``|lag|``)
    with the same 1e-12 improvement hysteresis, preserving its
    tie-breaking. ``_best_lag_scalar`` keeps the per-lag reference.

    Args:
        x: Reference signal.
        y: Signal whose shift is sought.
        max_lag: Symmetric lag search bound in samples.

    Returns:
        The maximising lag (ties resolve to the smallest magnitude).
    """
    a = _validate(x, "x")
    b = _validate(y, "y")
    if a.size != b.size:
        raise SignalError(f"length mismatch: {a.size} vs {b.size}")
    max_lag = min(max_lag, a.size - 2)
    if max_lag < 0:
        raise SignalError("signals too short for any lag search")
    lags = sorted(range(-max_lag, max_lag + 1), key=abs)
    vals, well_conditioned = _sliding_pearson(a, b, lags, return_conditioning=True)
    if not well_conditioned:
        # Near-constant windows make the Pearson values numerically
        # meaningless; reproduce the reference bit-for-bit instead.
        return _best_lag_scalar(a, b, max_lag)
    best = 0
    best_val = -np.inf
    for lag, val in zip(lags, vals):
        if val > best_val + 1e-12:
            best_val = float(val)
            best = lag
    return best


def _best_lag_scalar(x: np.ndarray, y: np.ndarray, max_lag: int) -> int:
    """Per-lag reference implementation of :func:`best_lag`.

    Kept as the behavioural specification for the vectorised search
    (property-tested equivalent) and as the baseline timed by
    ``scripts/bench.py``.
    """
    a = _validate(x, "x")
    b = _validate(y, "y")
    if a.size != b.size:
        raise SignalError(f"length mismatch: {a.size} vs {b.size}")
    max_lag = min(max_lag, a.size - 2)
    if max_lag < 0:
        raise SignalError("signals too short for any lag search")
    lags = sorted(range(-max_lag, max_lag + 1), key=abs)
    best = 0
    best_val = -np.inf
    for lag in lags:
        val = normalized_cross_correlation(a, b, lag)
        if val > best_val + 1e-12:
            best_val = val
            best = lag
    return best


def phase_difference_fraction(
    vertical: np.ndarray,
    anterior: np.ndarray,
    period_samples: Optional[int] = None,
) -> float:
    """Phase lead of ``anterior`` relative to ``vertical`` as a period fraction.

    The lag maximising the cross-correlation is folded into
    ``[0, period)`` and normalised by the period, so a fixed
    quarter-period offset reads as ~0.25 (or 0.75 for the mirrored
    direction convention) regardless of cadence.

    Args:
        vertical: Vertical acceleration of one gait cycle.
        anterior: Anterior acceleration of the same cycle.
        period_samples: Oscillation period; defaults to half the cycle
            length (the per-step period, which is the body's dominant
            period on both axes).

    Returns:
        Phase difference in ``[0, 1)`` of the per-step oscillation.
    """
    v = _validate(vertical, "vertical")
    a = _validate(anterior, "anterior")
    if v.size != a.size:
        raise SignalError(f"length mismatch: {v.size} vs {a.size}")
    period = period_samples if period_samples is not None else max(2, v.size // 2)
    if period < 2:
        raise SignalError(f"period_samples must be >= 2, got {period}")
    lag = best_lag(v, a, max_lag=period)
    return float(lag % period) / float(period)


def batch_phase_difference_fraction(
    pairs: Sequence[tuple],
) -> np.ndarray:
    """Phase fractions for many ``(vertical, anterior)`` cycle pairs.

    Each pair's lag search runs on the vectorised
    :func:`_sliding_pearson` kernel; degenerate pairs (shorter than 4
    samples, mismatched lengths, non-finite values) read ``nan``
    instead of raising, so the caller can batch a whole trace's cycles
    without pre-filtering.

    Args:
        pairs: Tuples of equal-length 1-D cycle axes.

    Returns:
        Array of phase fractions in ``[0, 1)`` (``nan`` for degenerate
        pairs), aligned with ``pairs``.
    """
    out = np.full(len(pairs), np.nan)
    for i, (vertical, anterior) in enumerate(pairs):
        v = np.asarray(vertical, dtype=float)
        a = np.asarray(anterior, dtype=float)
        if (
            v.ndim != 1
            or v.shape != a.shape
            or v.size < 4
            or not (np.all(np.isfinite(v)) and np.all(np.isfinite(a)))
        ):
            continue
        out[i] = phase_difference_fraction(v, a)
    return out
