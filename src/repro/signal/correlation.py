"""Correlation utilities: auto-correlation, half-cycle test, phase lag.

Two PTrack tests live on these primitives (SIII-B1):

* **Half-cycle auto-correlation ``C``** — within one gait cycle the
  user steps twice, so the anterior acceleration repeats at the
  half-cycle lag and its auto-correlation there is large and positive.
  Arm gestures are back-and-forth (sine turns into cosine at direction
  reversals), so their half-cycle correlation is not reliably positive.

* **Fixed phase difference** — for the body alone, vertical and
  anterior accelerations keep a fixed quarter-period phase offset
  (Kim et al. [22]); stepping inherits it, arbitrary gestures do not.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SignalError

__all__ = [
    "autocorrelation",
    "half_cycle_correlation",
    "normalized_cross_correlation",
    "best_lag",
    "phase_difference_fraction",
]


def _validate(x: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise SignalError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size < 2:
        raise SignalError(f"{name} needs at least 2 samples, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise SignalError(f"{name} contains non-finite values")
    return arr


def autocorrelation(x: np.ndarray, lag: int) -> float:
    """Normalised auto-correlation of ``x`` at one lag.

    Pearson correlation between ``x[:-lag]`` and ``x[lag:]`` — bounded
    in [-1, 1] and invariant to offset and scale, so thresholding at
    zero is meaningful across users and devices.

    Args:
        x: 1-D signal.
        lag: Positive lag in samples, strictly less than ``len(x)``.

    Returns:
        The correlation coefficient; 0.0 when either windowed half has
        no variance (a constant signal carries no periodicity evidence).
    """
    arr = _validate(x, "signal")
    if not 0 < lag < arr.size:
        raise SignalError(f"lag must be in (0, {arr.size}), got {lag}")
    a, b = arr[:-lag], arr[lag:]
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def half_cycle_correlation(anterior: np.ndarray) -> float:
    """PTrack's ``C``: auto-correlation of one cycle at the half-cycle lag.

    Args:
        anterior: Anterior acceleration covering exactly one gait-cycle
            candidate (two steps when the candidate is genuine gait).

    Returns:
        The normalised auto-correlation at ``len(anterior) // 2``.
    """
    arr = _validate(anterior, "anterior")
    if arr.size < 4:
        raise SignalError(f"cycle too short for half-cycle test: {arr.size} samples")
    return autocorrelation(arr, arr.size // 2)


def normalized_cross_correlation(x: np.ndarray, y: np.ndarray, lag: int) -> float:
    """Pearson correlation between ``x`` and ``y`` shifted by ``lag``.

    Positive ``lag`` compares ``x[t]`` with ``y[t + lag]`` (``y`` leads
    by ``lag`` samples); negative compares against ``y`` delayed.

    Returns:
        Correlation in [-1, 1]; 0.0 for degenerate (constant) overlap.
    """
    a = _validate(x, "x")
    b = _validate(y, "y")
    if a.size != b.size:
        raise SignalError(f"length mismatch: {a.size} vs {b.size}")
    n = a.size
    if abs(lag) >= n - 1:
        raise SignalError(f"|lag| must be < {n - 1}, got {lag}")
    if lag >= 0:
        aa, bb = a[: n - lag], b[lag:]
    else:
        aa, bb = a[-lag:], b[: n + lag]
    sa, sb = aa.std(), bb.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.mean((aa - aa.mean()) * (bb - bb.mean())) / (sa * sb))


def best_lag(x: np.ndarray, y: np.ndarray, max_lag: int) -> int:
    """Lag in ``[-max_lag, max_lag]`` maximising the cross-correlation.

    Args:
        x: Reference signal.
        y: Signal whose shift is sought.
        max_lag: Symmetric lag search bound in samples.

    Returns:
        The maximising lag (ties resolve to the smallest magnitude).
    """
    a = _validate(x, "x")
    b = _validate(y, "y")
    if a.size != b.size:
        raise SignalError(f"length mismatch: {a.size} vs {b.size}")
    max_lag = min(max_lag, a.size - 2)
    if max_lag < 0:
        raise SignalError("signals too short for any lag search")
    lags = sorted(range(-max_lag, max_lag + 1), key=abs)
    best = 0
    best_val = -np.inf
    for lag in lags:
        val = normalized_cross_correlation(a, b, lag)
        if val > best_val + 1e-12:
            best_val = val
            best = lag
    return best


def phase_difference_fraction(
    vertical: np.ndarray,
    anterior: np.ndarray,
    period_samples: Optional[int] = None,
) -> float:
    """Phase lead of ``anterior`` relative to ``vertical`` as a period fraction.

    The lag maximising the cross-correlation is folded into
    ``[0, period)`` and normalised by the period, so a fixed
    quarter-period offset reads as ~0.25 (or 0.75 for the mirrored
    direction convention) regardless of cadence.

    Args:
        vertical: Vertical acceleration of one gait cycle.
        anterior: Anterior acceleration of the same cycle.
        period_samples: Oscillation period; defaults to half the cycle
            length (the per-step period, which is the body's dominant
            period on both axes).

    Returns:
        Phase difference in ``[0, 1)`` of the per-step oscillation.
    """
    v = _validate(vertical, "vertical")
    a = _validate(anterior, "anterior")
    if v.size != a.size:
        raise SignalError(f"length mismatch: {v.size} vs {a.size}")
    period = period_samples if period_samples is not None else max(2, v.size // 2)
    if period < 2:
        raise SignalError(f"period_samples must be >= 2, got {period}")
    lag = best_lag(v, a, max_lag=period)
    return float(lag % period) / float(period)
