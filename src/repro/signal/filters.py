"""Filtering primitives: low-pass, moving average, gravity separation.

The first stage of every pedestrian-tracking pipeline in the paper
(Fig. 2) is a low-pass filter that strips sensor noise above the gait
band (human gait lives below ~5 Hz; wrist sensor noise does not).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import signal as sp_signal

from repro.exceptions import ConfigurationError, SignalError

__all__ = [
    "butter_lowpass",
    "moving_average",
    "detrend_mean",
    "gravity_component",
]


def _validate_1d(x: np.ndarray, name: str = "signal") -> np.ndarray:
    """Coerce ``x`` to a 1-D float array, rejecting empties and NaNs."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise SignalError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise SignalError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise SignalError(f"{name} contains non-finite values")
    return arr


@lru_cache(maxsize=64)
def _butter_sos(order: int, normalized_cutoff: float) -> np.ndarray:
    """Cached Butterworth SOS design.

    Filter design costs more than filtering a typical gait-cycle block;
    streaming callers re-filter small blocks with the same parameters
    thousands of times per minute, so the design is memoized on its
    exact parameter pair.
    """
    return sp_signal.butter(order, normalized_cutoff, btype="low", output="sos")


@lru_cache(maxsize=64)
def _sosfiltfilt_setup(
    order: int, normalized_cutoff: float
) -> tuple:
    """Cached (sos, steady-state zi, pad length) for zero-phase filtering.

    ``scipy.signal.sosfiltfilt`` recomputes the per-section steady-state
    initial conditions (a linear solve per section) on every call; for
    block-streaming callers that fixed cost dominates the actual
    filtering. The values depend only on the design, so they are
    memoized alongside it.
    """
    sos = _butter_sos(order, normalized_cutoff).copy()
    zi = sp_signal.sosfilt_zi(sos)
    n_sections = sos.shape[0]
    # scipy's default padlen for sosfiltfilt, reproduced exactly.
    ntaps = 2 * n_sections + 1
    ntaps -= min((sos[:, 2] == 0).sum(), (sos[:, 5] == 0).sum())
    return sos, zi, 3 * int(ntaps)


def _sosfiltfilt_cached(
    arr: np.ndarray,
    order: int,
    normalized_cutoff: float,
    contiguous: bool = True,
) -> np.ndarray:
    """``sosfiltfilt(sos, arr, axis=0)`` with the setup cost memoized.

    Reproduces scipy's odd extension, forward/backward passes and
    trimming operation-for-operation (bit-identical output; asserted by
    the differential tests), but reads the steady-state initial
    conditions from the cache instead of re-deriving them per call.
    """
    sos, zi0, edge = _sosfiltfilt_setup(order, normalized_cutoff)
    zi_shape = [sos.shape[0], 2] + [1] * (arr.ndim - 1)
    zi = zi0.reshape(zi_shape)
    ext = np.concatenate(
        (
            2.0 * arr[0:1] - arr[edge:0:-1],
            arr,
            2.0 * arr[-1:] - arr[-2 : -(edge + 2) : -1],
        ),
        axis=0,
    )
    y, _ = sp_signal.sosfilt(sos, ext, axis=0, zi=zi * ext[0:1])
    y, _ = sp_signal.sosfilt(sos, y[::-1], axis=0, zi=zi * y[-1:])
    out = y[::-1][edge:-edge]
    return np.ascontiguousarray(out) if contiguous else out


def butter_lowpass(
    x: np.ndarray,
    cutoff_hz: float,
    sample_rate_hz: float,
    order: int = 4,
    contiguous: bool = True,
) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter.

    Uses forward-backward filtering (``filtfilt``) so gait peaks are not
    delayed relative to the raw signal — peak timestamps feed the
    critical-point offset metric, so phase distortion would directly
    corrupt the step counter.

    Args:
        x: 1-D signal (or 2-D array filtered along axis 0).
        cutoff_hz: -3 dB cutoff frequency in Hz; must lie strictly
            below the Nyquist frequency.
        sample_rate_hz: Sampling rate of ``x`` in Hz.
        order: Filter order (of the underlying one-pass design).
        contiguous: When ``False``, the result may be a (bitwise
            identical) non-contiguous view into filter scratch —
            for hot callers that immediately copy slices out and
            would otherwise pay a redundant full-block copy.

    Returns:
        The filtered signal, same shape as ``x``.

    Raises:
        ConfigurationError: If the cutoff or rate are invalid.
        SignalError: If the signal is too short for the filter edges.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
    nyquist = sample_rate_hz / 2.0
    if not 0 < cutoff_hz < nyquist:
        raise ConfigurationError(
            f"cutoff_hz must be in (0, {nyquist}), got {cutoff_hz}"
        )
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")

    arr = np.asarray(x, dtype=float)
    if arr.size == 0:
        raise SignalError("cannot filter an empty signal")
    # filtfilt needs a minimum length related to the filter's impulse
    # response; fall back to a moving average for very short segments so
    # tiny gait-cycle tails do not crash the pipeline.
    min_len = 3 * (2 * order + 1)
    if arr.shape[0] <= min_len:
        width = max(1, arr.shape[0] // 4)
        if arr.ndim == 1:
            return moving_average(arr, width)
        return np.column_stack(
            [moving_average(arr[:, j], width) for j in range(arr.shape[1])]
        )
    return _sosfiltfilt_cached(arr, order, cutoff_hz / nyquist, contiguous)


def moving_average(x: np.ndarray, width: int) -> np.ndarray:
    """Centred moving average with edge truncation.

    Args:
        x: 1-D signal.
        width: Window width in samples; values < 2 return a copy.

    Returns:
        Smoothed signal of the same length; edges use the samples that
        actually fall inside the window, so no padding bias appears.
    """
    arr = _validate_1d(x)
    if width < 2:
        return arr.copy()
    if width > arr.size:
        width = arr.size
    kernel = np.ones(width)
    summed = np.convolve(arr, kernel, mode="same")
    counts = np.convolve(np.ones(arr.size), kernel, mode="same")
    return summed / counts


def detrend_mean(x: np.ndarray) -> np.ndarray:
    """Remove the mean of a signal (the 'mean-removal' primitive).

    This is the first half of the mean-removal integration technique of
    Wang et al. [26]: within a segment whose endpoints have zero
    velocity, the acceleration mean equals the integration drift per
    unit time, so subtracting it cancels the drift.
    """
    arr = _validate_1d(x)
    return arr - arr.mean()


def gravity_component(
    x: np.ndarray,
    sample_rate_hz: float,
    cutoff_hz: float = 0.3,
) -> np.ndarray:
    """Estimate the quasi-static (gravity) component of an accelerometer axis.

    Platform APIs expose linear acceleration by subtracting exactly this
    kind of slow component [25]; the sensing substrate uses it when a
    simulated device reports raw (gravity-inclusive) readings.

    Args:
        x: 1-D raw accelerometer axis.
        sample_rate_hz: Sampling rate in Hz.
        cutoff_hz: Cutoff separating posture/gravity from motion.

    Returns:
        The low-frequency component, same length as ``x``.
    """
    arr = _validate_1d(x)
    if arr.size < 8:
        return np.full_like(arr, arr.mean())
    return butter_lowpass(arr, cutoff_hz, sample_rate_hz, order=2)
