"""Peak and valley detection.

Peak detection over the (filtered) vertical acceleration is the
canonical step-counting primitive used by GFit-style pedometers,
Montage [6] and — as the *candidate generator* only — by PTrack itself.

The semantics are fully specified by the pure-Python reference
implementations in this module: a peak is a strict local maximum
(plateaus resolve to their centre) that clears a prominence floor and
a minimum spacing to the previously accepted peak. The hot paths
dispatch to the C kernels in :mod:`scipy.signal`, which implement the
same definitions; the differential tests assert bit-identical results
against the references.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np
from scipy import signal as sp_signal

from repro.exceptions import ConfigurationError, SignalError

__all__ = ["detect_peaks", "detect_valleys", "peak_prominences"]


def _local_maxima_reference(x: np.ndarray) -> np.ndarray:
    """Pure-Python specification of :func:`_local_maxima` (kept for tests)."""
    n = x.size
    if n < 3:
        return np.empty(0, dtype=int)
    maxima = []
    i = 1
    while i < n - 1:
        if x[i] > x[i - 1]:
            # Walk over a potential plateau.
            j = i
            while j < n - 1 and x[j + 1] == x[j]:
                j += 1
            if j < n - 1 and x[j + 1] < x[j]:
                maxima.append((i + j) // 2)
            i = j + 1
        else:
            i += 1
    return np.asarray(maxima, dtype=int)


def _local_maxima(x: np.ndarray) -> np.ndarray:
    """Indices of strict local maxima, resolving flat tops to their centre.

    ``scipy.signal.find_peaks`` without conditions returns exactly the
    plateau-centre local maxima of the reference implementation, via a
    C scan instead of a Python loop.
    """
    if x.size < 3:
        return np.empty(0, dtype=int)
    return sp_signal.find_peaks(x)[0]


def _peak_prominences_reference(x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
    """Pure-Python specification of :func:`peak_prominences` (kept for tests)."""
    arr = np.asarray(x, dtype=float)
    out = np.empty(len(peaks), dtype=float)
    for k, p in enumerate(peaks):
        height = arr[p]
        # Left search: lowest point until terrain exceeds the peak.
        left_min = height
        i = p - 1
        while i >= 0 and arr[i] <= height:
            left_min = min(left_min, arr[i])
            i -= 1
        # Right search symmetric.
        right_min = height
        i = p + 1
        while i < arr.size and arr[i] <= height:
            right_min = min(right_min, arr[i])
            i += 1
        out[k] = height - max(left_min, right_min)
    return out


def peak_prominences(x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
    """Topographic prominence of each peak.

    The prominence of a peak is its height above the higher of the two
    deepest valleys separating it from taller terrain on either side —
    the standard definition. The scipy C kernel performs the same
    bounded left/right scans as the reference implementation and
    produces bit-identical values.

    Args:
        x: 1-D signal.
        peaks: Indices of local maxima within ``x``.

    Returns:
        Array of prominences aligned with ``peaks``.
    """
    arr = np.asarray(x, dtype=float)
    idx = np.asarray(peaks, dtype=np.intp)
    if idx.size == 0:
        return np.empty(0, dtype=float)
    with warnings.catch_warnings():
        # scipy warns (and returns 0) for indices that are not local
        # maxima; the reference implementation returns 0 silently.
        warnings.simplefilter("ignore")
        return sp_signal.peak_prominences(arr, idx)[0]


def detect_peaks(
    x: np.ndarray,
    min_prominence: float = 0.0,
    min_distance: int = 1,
    min_height: Optional[float] = None,
) -> np.ndarray:
    """Detect peaks with prominence, spacing and height gates.

    Args:
        x: 1-D signal.
        min_prominence: Minimum topographic prominence a peak must have.
        min_distance: Minimum sample spacing between accepted peaks;
            when two candidates are closer, the more prominent survives.
        min_height: Optional absolute height floor.

    Returns:
        Sorted array of accepted peak indices.

    Raises:
        SignalError: If the signal is not a finite 1-D array.
        ConfigurationError: If gates are negative.
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise SignalError(f"signal must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        return np.empty(0, dtype=int)
    if not np.all(np.isfinite(arr)):
        raise SignalError("signal contains non-finite values")
    if min_prominence < 0:
        raise ConfigurationError(f"min_prominence must be >= 0, got {min_prominence}")
    if min_distance < 1:
        raise ConfigurationError(f"min_distance must be >= 1, got {min_distance}")

    candidates = _local_maxima(arr)
    if candidates.size == 0:
        return candidates
    if min_height is not None:
        candidates = candidates[arr[candidates] >= min_height]
        if candidates.size == 0:
            return candidates
    proms = peak_prominences(arr, candidates)
    keep = proms >= min_prominence
    candidates, proms = candidates[keep], proms[keep]
    if candidates.size == 0 or min_distance == 1:
        return candidates
    return _enforce_min_distance(candidates, proms, min_distance, arr.size)


def _enforce_min_distance(
    candidates: np.ndarray,
    proms: np.ndarray,
    min_distance: int,
    size: int,
) -> np.ndarray:
    """Greedy spacing enforcement shared by the scalar and batched paths.

    Visit candidates from most to least prominent (stable order, so
    equal prominences resolve left to right) and accept those not
    within ``min_distance`` of an already accepted peak. The occupancy
    array makes each acceptance check O(min_distance) instead of
    O(accepted); the accepted set is identical to the quadratic scan
    because acceptance depends only on the previously accepted indices.
    """
    order = np.argsort(-proms, kind="stable")
    taken = np.zeros(size, dtype=bool)
    accepted: list[int] = []
    for idx in candidates[order]:
        i = int(idx)
        lo = max(0, i - min_distance + 1)
        if taken[lo : i + min_distance].any():
            continue
        taken[i] = True
        accepted.append(i)
    return np.asarray(sorted(accepted), dtype=int)


def detect_valleys(
    x: np.ndarray,
    min_prominence: float = 0.0,
    min_distance: int = 1,
) -> np.ndarray:
    """Detect valleys (peaks of the negated signal)."""
    return detect_peaks(-np.asarray(x, dtype=float), min_prominence, min_distance)
