"""Sampling-rate conversion and dropout handling.

Real wearable streams are messier than the simulator's: different
devices sample at different rates (the rate ablation needs apples to
apples), and BLE links drop whole batches. This module provides the two
repairs a tracking front end needs:

* :func:`resample_trace` — linear-interpolation rate conversion;
* :func:`split_on_gaps` — cut a timestamped sample stream into
  contiguous :class:`~repro.sensing.imu.IMUTrace` chunks at dropouts
  (processing across a gap would corrupt every window that spans it).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import ConfigurationError, SignalError
from repro.sensing.imu import IMUTrace

__all__ = ["resample_trace", "split_on_gaps"]


def resample_trace(trace: IMUTrace, target_rate_hz: float) -> IMUTrace:
    """Convert a trace to another sampling rate by linear interpolation.

    Args:
        trace: The input trace.
        target_rate_hz: Desired output rate.

    Returns:
        A new trace covering the same time span at ``target_rate_hz``.
        Downsampling does not pre-filter; the tracking front end's own
        low-pass (5 Hz) makes aliasing moot for target rates >= 25 Hz,
        which the rate ablation verifies.

    Raises:
        ConfigurationError: For a non-positive target rate.
    """
    if target_rate_hz <= 0:
        raise ConfigurationError(
            f"target_rate_hz must be positive, got {target_rate_hz}"
        )
    if abs(target_rate_hz - trace.sample_rate_hz) < 1e-12:
        return trace
    old_times = trace.times
    duration = trace.duration_s
    n_new = max(2, int(round(duration * target_rate_hz)))
    new_times = trace.start_time + np.arange(n_new) / target_rate_hz
    new_times = new_times[new_times <= old_times[-1] + 1e-12]
    data = np.column_stack(
        [
            np.interp(new_times, old_times, trace.linear_acceleration[:, axis])
            for axis in range(3)
        ]
    )
    return IMUTrace(data, target_rate_hz, trace.start_time)


def split_on_gaps(
    samples: np.ndarray,
    timestamps: np.ndarray,
    sample_rate_hz: float,
    max_gap_s: float = 0.1,
    min_chunk_s: float = 2.0,
) -> List[IMUTrace]:
    """Cut a timestamped stream into contiguous traces at dropouts.

    Args:
        samples: Array of shape (N, 3), world-frame linear acceleration.
        timestamps: Per-sample timestamps, shape (N,), non-decreasing.
        sample_rate_hz: The stream's nominal rate.
        max_gap_s: Inter-sample gaps beyond this start a new chunk.
        min_chunk_s: Chunks shorter than this are dropped (too short
            for even one gait cycle).

    Returns:
        List of contiguous traces, in time order. Within each chunk the
        samples are re-timed to the nominal rate (jitter below the gap
        threshold is absorbed, as platform drivers do).

    Raises:
        SignalError: On malformed inputs.
    """
    arr = np.asarray(samples, dtype=float)
    ts = np.asarray(timestamps, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise SignalError(f"samples must have shape (N, 3), got {arr.shape}")
    if ts.shape != (arr.shape[0],):
        raise SignalError(
            f"timestamps shape {ts.shape} does not match samples {arr.shape}"
        )
    if arr.shape[0] == 0:
        return []
    if np.any(np.diff(ts) < 0):
        raise SignalError("timestamps must be non-decreasing")
    if max_gap_s <= 0 or min_chunk_s <= 0:
        raise SignalError("max_gap_s and min_chunk_s must be positive")

    boundaries = np.nonzero(np.diff(ts) > max_gap_s)[0] + 1
    chunks: List[IMUTrace] = []
    start = 0
    for end in list(boundaries) + [arr.shape[0]]:
        length = end - start
        if length / sample_rate_hz >= min_chunk_s and length >= 2:
            chunks.append(
                IMUTrace(arr[start:end], sample_rate_hz, float(ts[start]))
            )
        start = end
    return chunks
