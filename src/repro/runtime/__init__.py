"""Parallel/cached experiment runtime.

The runtime layer turns the experiment drivers from single-threaded
loops into fan-out studies:

* :mod:`repro.runtime.parallel` — an ordered process-pool map with
  deterministic per-task seeding (serial and parallel runs produce
  identical results);
* :mod:`repro.runtime.cache` — a content-keyed trace cache (in-memory
  LRU + optional on-disk store) so repeated experiments stop
  re-simulating identical walks.

* :mod:`repro.runtime.backends` — the pluggable compute-backend seam
  behind the fleet-batched serving kernels (NumPy float64 baseline,
  optional float32 and Numba variants selected via ``PTRACK_BACKEND``).

* :mod:`repro.runtime.buffers` — grow-on-demand keyed scratch arrays
  shared by the batched kernel layers and the fleet serving round.

* :mod:`repro.runtime.clock` — the clock seam for event-driven
  components (:class:`SystemClock` in production,
  :class:`ManualClock` in tests, so schedulers are testable without
  wall-clock sleeps).

See ``docs/performance.md`` for the workflow, worker-count resolution,
backend selection and cache invalidation rules.
"""

from repro.runtime.backends import (
    BACKEND_ENV_VAR,
    ComputeBackend,
    Float32Backend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    get_backend,
)
from repro.runtime.buffers import FleetBatchBuffer
from repro.runtime.clock import Clock, ManualClock, SystemClock
from repro.runtime.cache import (
    CACHE_SCHEMA,
    TraceCache,
    content_key,
    get_default_cache,
    set_default_cache,
    simulate_interference_cached,
    simulate_spoofer_cached,
    simulate_walk_cached,
)
from repro.runtime.parallel import (
    TaskOutcome,
    derive_rng,
    parallel_map,
    parallel_map_outcomes,
    resolve_workers,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "Clock",
    "ComputeBackend",
    "FleetBatchBuffer",
    "Float32Backend",
    "ManualClock",
    "NumbaBackend",
    "NumpyBackend",
    "SystemClock",
    "available_backends",
    "get_backend",
    "TaskOutcome",
    "CACHE_SCHEMA",
    "TraceCache",
    "content_key",
    "get_default_cache",
    "set_default_cache",
    "simulate_interference_cached",
    "simulate_spoofer_cached",
    "simulate_walk_cached",
    "derive_rng",
    "parallel_map",
    "parallel_map_outcomes",
    "resolve_workers",
]
