"""Process-parallel experiment fan-out with deterministic seeding.

The experiment drivers walk users x seeds x activities; every unit of
work is a pure function of an explicit seed, so replicates can fan out
across cores without changing results. This module provides the one
primitive they share — an *ordered* process-pool map — plus the seeding
discipline that makes serial and parallel execution bit-identical:
every task derives its own :class:`numpy.random.Generator` from the
experiment seed and the task's coordinates, never from a generator
threaded through a loop.

Worker-count resolution (``resolve_workers``):

* an explicit ``workers`` argument wins;
* otherwise the ``REPRO_WORKERS`` environment variable;
* otherwise 1 (serial — correct on any machine, no pool overhead).

``workers=0`` means "all available cores".
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["resolve_workers", "parallel_map", "derive_rng"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable read when ``workers`` is not given explicitly.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count from the argument or the environment.

    Args:
        workers: Explicit worker count; ``None`` falls back to the
            ``REPRO_WORKERS`` environment variable, then to 1 (serial).
            0 means "all available cores".

    Returns:
        A concrete worker count >= 1.

    Raises:
        ConfigurationError: On a negative or unparseable count.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from exc
        else:
            workers = 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Results come back in input order regardless of completion order, so
    callers aggregate identically whether the map ran serially or in
    parallel. With one worker (the default) this is a plain list
    comprehension — no pool, no pickling.

    Args:
        fn: The task function. For ``workers > 1`` it must be picklable
            (a module-level function or a :func:`functools.partial` of
            one), as must every item and result.
        items: Task inputs, one per task.
        workers: Worker-count request (see :func:`resolve_workers`).
        chunksize: Tasks handed to a worker per dispatch; raise it for
            very cheap tasks to amortise IPC.

    Returns:
        ``[fn(item) for item in items]``, computed serially or in
        parallel.
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(items))) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))


def derive_rng(seed: int, *coordinates: int) -> np.random.Generator:
    """A per-task generator derived from a seed and task coordinates.

    Seeding each task from ``(seed, *coordinates)`` (instead of
    threading one generator through a loop) is what makes fan-out
    order-independent: task *i* draws the same stream whether it runs
    first, last, or on another process.

    Args:
        seed: The experiment's top-level seed.
        coordinates: Integers locating the task in the sweep (user
            index, trial index, activity index, ...).

    Returns:
        A fresh :class:`numpy.random.Generator`.
    """
    return np.random.default_rng([int(seed), *[int(c) for c in coordinates]])
