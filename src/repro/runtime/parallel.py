"""Process-parallel experiment fan-out with deterministic seeding.

The experiment drivers walk users x seeds x activities; every unit of
work is a pure function of an explicit seed, so replicates can fan out
across cores without changing results. This module provides the one
primitive they share — an *ordered* process-pool map — plus the seeding
discipline that makes serial and parallel execution bit-identical:
every task derives its own :class:`numpy.random.Generator` from the
experiment seed and the task's coordinates, never from a generator
threaded through a loop.

Worker-count resolution (``resolve_workers``):

* an explicit ``workers`` argument wins;
* otherwise the ``REPRO_WORKERS`` environment variable;
* otherwise 1 (serial — correct on any machine, no pool overhead).

``workers=0`` means "all available cores".
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError
from repro.telemetry.registry import get_registry

#: Bucket layout for task/map wall times (seconds): wider than the
#: latency default because experiment fan-outs run for minutes.
_DURATION_BUCKETS_S = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)

__all__ = [
    "resolve_workers",
    "parallel_map",
    "parallel_map_outcomes",
    "TaskOutcome",
    "derive_rng",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable read when ``workers`` is not given explicitly.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count from the argument or the environment.

    Args:
        workers: Explicit worker count; ``None`` falls back to the
            ``REPRO_WORKERS`` environment variable, then to 1 (serial).
            0 means "all available cores".

    Returns:
        A concrete worker count >= 1.

    Raises:
        ConfigurationError: On a negative or unparseable count.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from exc
        else:
            workers = 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Results come back in input order regardless of completion order, so
    callers aggregate identically whether the map ran serially or in
    parallel. With one worker (the default) this is a plain list
    comprehension — no pool, no pickling.

    Args:
        fn: The task function. For ``workers > 1`` it must be picklable
            (a module-level function or a :func:`functools.partial` of
            one), as must every item and result.
        items: Task inputs, one per task.
        workers: Worker-count request (see :func:`resolve_workers`).
        chunksize: Tasks handed to a worker per dispatch; raise it for
            very cheap tasks to amortise IPC.

    Returns:
        ``[fn(item) for item in items]``, computed serially or in
        parallel.
    """
    n_workers = resolve_workers(workers)
    reg = get_registry()
    t0 = time.perf_counter() if reg is not None else 0.0
    if n_workers <= 1 or len(items) <= 1:
        if reg is None:
            return [fn(item) for item in items]
        h_task = reg.histogram(
            "runtime_parallel_task_seconds", buckets=_DURATION_BUCKETS_S
        )
        results: List[R] = []
        for item in items:
            t_task = time.perf_counter()
            results.append(fn(item))
            h_task.observe(time.perf_counter() - t_task)
        _record_map(reg, len(items), t0)
        return results
    with ProcessPoolExecutor(max_workers=min(n_workers, len(items))) as pool:
        if reg is None:
            return list(pool.map(fn, items, chunksize=max(1, chunksize)))
        h_task = reg.histogram(
            "runtime_parallel_task_seconds", buckets=_DURATION_BUCKETS_S
        )
        results = []
        for result in pool.map(fn, items, chunksize=max(1, chunksize)):
            # Turnaround since map start: per-task compute time is not
            # observable from the parent without extra IPC.
            h_task.observe(time.perf_counter() - t0)
            results.append(result)
        _record_map(reg, len(items), t0)
        return results


def _record_map(reg, n_tasks: int, t0: float) -> None:
    """Record map-level telemetry (one map, its task count, wall time)."""
    reg.counter("runtime_parallel_maps_total").inc()
    reg.counter("runtime_parallel_tasks_total").inc(n_tasks)
    reg.histogram(
        "runtime_parallel_map_seconds", buckets=_DURATION_BUCKETS_S
    ).observe(time.perf_counter() - t0)


@dataclass(frozen=True)
class TaskOutcome:
    """Result or failure of one task in :func:`parallel_map_outcomes`.

    Attributes:
        ok: Whether the task returned normally.
        value: The task's return value (``None`` on failure).
        error: ``"ExcType: message"`` on failure (empty on success);
            a worker lost mid-task reads ``BrokenProcessPool`` and a
            deadline overrun reads ``TimeoutError``.
    """

    ok: bool
    value: Any = None
    error: str = ""


def parallel_map_outcomes(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> List[TaskOutcome]:
    """Map ``fn`` over ``items``, containing per-task failures.

    The fault-tolerant sibling of :func:`parallel_map`: instead of one
    raising task poisoning the whole map, every task yields a
    :class:`TaskOutcome` in input order and the caller decides what to
    retry. A worker process dying mid-task (OOM-killed, segfault) is
    reported on its task as ``BrokenProcessPool`` — and, because a
    broken pool cannot run anything else, on the remaining unfinished
    tasks too; re-submitting those failures runs them in a fresh pool.

    Args:
        fn: The task function (picklable for ``workers > 1``).
        items: Task inputs, one per task.
        workers: Worker-count request (see :func:`resolve_workers`).
        timeout_s: Wall-clock budget for the *whole map*, enforced
            only with ``workers > 1`` (a serial map cannot interrupt a
            running task); tasks not finished by the deadline fail
            with ``TimeoutError`` and their workers are abandoned, not
            joined.

    Returns:
        One :class:`TaskOutcome` per item, in input order.

    Unlike :func:`parallel_map`, a single-item map with ``workers > 1``
    still runs in a subprocess: callers ask for outcomes because they
    want crash containment, which an in-process shortcut cannot give.
    """
    n_workers = resolve_workers(workers)
    reg = get_registry()
    t0 = time.perf_counter() if reg is not None else 0.0
    h_task = (
        reg.histogram(
            "runtime_parallel_task_seconds", buckets=_DURATION_BUCKETS_S
        )
        if reg is not None
        else None
    )
    if n_workers <= 1 or not items:
        outcomes: List[TaskOutcome] = []
        for item in items:
            t_task = time.perf_counter() if reg is not None else 0.0
            try:
                outcomes.append(TaskOutcome(ok=True, value=fn(item)))
            except Exception as exc:  # noqa: BLE001 — containment point
                outcomes.append(
                    TaskOutcome(
                        ok=False, error=f"{type(exc).__name__}: {exc}"
                    )
                )
            if h_task is not None:
                h_task.observe(time.perf_counter() - t_task)
        if reg is not None:
            _record_outcomes(reg, outcomes, t0)
        return outcomes
    pool = ProcessPoolExecutor(max_workers=min(n_workers, len(items)))
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    timed_out = False
    try:
        futures = [pool.submit(fn, item) for item in items]
        outcomes = []
        for fut in futures:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                outcomes.append(TaskOutcome(ok=True, value=fut.result(remaining)))
            except TimeoutError:
                fut.cancel()
                timed_out = True
                outcomes.append(
                    TaskOutcome(
                        ok=False,
                        error=f"TimeoutError: shard exceeded {timeout_s} s",
                    )
                )
            except Exception as exc:  # noqa: BLE001 — containment point
                outcomes.append(
                    TaskOutcome(
                        ok=False, error=f"{type(exc).__name__}: {exc}"
                    )
                )
                if isinstance(exc, BrokenProcessPool):
                    timed_out = True  # pool unusable: don't join it
            if h_task is not None:
                # Turnaround since map start: compute time stays in the
                # worker process.
                h_task.observe(time.perf_counter() - t0)
        if reg is not None:
            _record_outcomes(reg, outcomes, t0)
        return outcomes
    finally:
        pool.shutdown(wait=not timed_out, cancel_futures=True)


def _record_outcomes(reg, outcomes: List[TaskOutcome], t0: float) -> None:
    """Record map-level telemetry plus the per-map failure count."""
    _record_map(reg, len(outcomes), t0)
    failed = sum(1 for o in outcomes if not o.ok)
    if failed:
        reg.counter("runtime_parallel_task_failures_total").inc(failed)


def derive_rng(seed: int, *coordinates: int) -> np.random.Generator:
    """A per-task generator derived from a seed and task coordinates.

    Seeding each task from ``(seed, *coordinates)`` (instead of
    threading one generator through a loop) is what makes fan-out
    order-independent: task *i* draws the same stream whether it runs
    first, last, or on another process.

    Args:
        seed: The experiment's top-level seed.
        coordinates: Integers locating the task in the sweep (user
            index, trial index, activity index, ...).

    Returns:
        A fresh :class:`numpy.random.Generator`.
    """
    return np.random.default_rng([int(seed), *[int(c) for c in coordinates]])
