"""The clock seam: virtualisable time for event-driven serving.

The async ingest gateway (:mod:`repro.serving.gateway`) is an
event-driven component: it stamps tick latencies, ages mailboxes, and
paces its scheduler. Testing such a component against the wall clock
means sleeps and flaky latency assertions, so every time read goes
through a :class:`Clock` instead:

* :class:`SystemClock` — the production clock: a monotonic wall-time
  reading and a real ``sleep``.
* :class:`ManualClock` — the test clock: time is a number the test
  advances explicitly, ``sleep`` advances it instantly, and an
  optional auto-step makes successive readings distinct without any
  real waiting.

The crediting math of the serving stack never consults the clock —
credits are a pure function of the sample streams — so swapping clocks
can only change *telemetry* (latency histograms, stall ages), never
results. The gateway tests pin exactly that split.
"""

from __future__ import annotations

import time

from repro.exceptions import ConfigurationError

__all__ = ["Clock", "SystemClock", "ManualClock"]


class Clock:
    """Monotonic-time source: ``now()`` seconds and a ``sleep``.

    The base class defines the contract; use :class:`SystemClock` in
    production and :class:`ManualClock` in tests.
    """

    def now(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        raise NotImplementedError


class SystemClock(Clock):
    """The production clock: :func:`time.monotonic` + :func:`time.sleep`."""

    def now(self) -> float:
        """Current monotonic wall time in seconds."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Really sleep for ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ConfigurationError(
                f"cannot sleep a negative duration ({seconds!r} s)"
            )
        time.sleep(seconds)


class ManualClock(Clock):
    """A deterministic clock driven by the test, not the scheduler.

    Args:
        start: Initial reading in seconds.
        auto_step: Amount added to the reading *after* every ``now()``
            call. A small non-zero step makes latency spans strictly
            positive and fully reproducible without any sleeping;
            the default 0.0 freezes time entirely.
    """

    def __init__(self, start: float = 0.0, auto_step: float = 0.0) -> None:
        if auto_step < 0:
            raise ConfigurationError(
                f"auto_step must be >= 0, got {auto_step!r}"
            )
        self._now = float(start)
        self._auto_step = float(auto_step)

    def now(self) -> float:
        """The current simulated time (then auto-advance, if set)."""
        current = self._now
        self._now += self._auto_step
        return current

    def sleep(self, seconds: float) -> None:
        """Advance simulated time by ``seconds`` instantly."""
        if seconds < 0:
            raise ConfigurationError(
                f"cannot sleep a negative duration ({seconds!r} s)"
            )
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move simulated time forward by ``seconds``."""
        if seconds < 0:
            raise ConfigurationError(
                f"cannot advance time backwards ({seconds!r} s)"
            )
        self._now += seconds
