"""Pluggable compute backends for the fleet-batched hot kernels.

The fleet-batched serving path (:mod:`repro.serving.batch`) funnels all
of its per-round numeric heavy lifting through three kernels — 2-D
block low-pass filtering, local-maxima scanning and peak-prominence
measurement — so swapping the arithmetic substrate is a matter of
swapping one object. This module is that seam:

* :class:`NumpyBackend` — the float64 baseline, always available. It
  delegates to the exact same scipy kernels the scalar pipeline uses,
  so batched results are **bit-identical** to the per-session reference
  (the property the serving equivalence suite asserts).
* :class:`Float32Backend` — casts kernel inputs to float32 before
  dispatching to the same scipy kernels and returns float64. Cheaper on
  memory bandwidth; results are *tolerance-bounded*, not identical
  (see the per-kernel tolerance table below).
* :class:`NumbaBackend` — JIT-compiles the pure-Python reference scans
  from :mod:`repro.signal.peaks` with ``numba.njit``. Available only
  when ``numba`` is installed (feature-detected; selecting it without
  the package raises a clear error and the test suite skips cleanly).
  The reference scans are bit-identical to the scipy kernels (asserted
  by the signal differential tests), so this backend is bit-identical
  too; its filtering delegates to the float64 scipy path.

Selection: :func:`get_backend` resolves, in order, an explicit argument,
the ``PTRACK_BACKEND`` environment variable, then the ``"numpy"``
default.

Per-kernel tolerance policy (documented contract, pinned by
``tests/test_backends.py``):

====================  ==========  ==============================
kernel                numpy/numba  float32
====================  ==========  ==============================
``lowpass_block``     exact       rtol 1e-4, atol 1e-4 (m/s^2)
``local_maxima``      exact       index set may differ at ties
``peak_prominences``  exact       rtol 1e-3, atol 1e-3 (m/s^2)
====================  ==========  ==============================

Only the default NumPy backend carries the bit-identity guarantee the
``serial == pooled == sharded == batched`` crediting oracle relies on;
the alternates are for throughput experiments where tolerance-bounded
credits are acceptable.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import signal as sp_signal

from repro.exceptions import ConfigurationError
from repro.signal.filters import butter_lowpass
from repro.signal.peaks import peak_prominences as _peak_prominences_scipy

__all__ = [
    "BACKEND_ENV_VAR",
    "ComputeBackend",
    "NumpyBackend",
    "Float32Backend",
    "NumbaBackend",
    "available_backends",
    "get_backend",
]

#: Environment variable consulted by :func:`get_backend`.
BACKEND_ENV_VAR = "PTRACK_BACKEND"


class ComputeBackend:
    """The kernel interface the fleet-batched serving path computes on.

    Attributes:
        name: Registry name of the backend.
        bit_identical: Whether every kernel reproduces the float64
            scalar reference bit for bit. Only backends with this flag
            may back the crediting-identity oracle.
    """

    name: str = "abstract"
    bit_identical: bool = False

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        """Zero-phase low-pass of a 2-D block along axis 0 (float64 out)."""
        raise NotImplementedError

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        """Strict local maxima (plateau centres) of a 1-D float64 signal."""
        raise NotImplementedError

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        """Topographic prominences of ``peaks`` within ``x`` (float64 out)."""
        raise NotImplementedError


class NumpyBackend(ComputeBackend):
    """Float64 baseline: the exact kernels the scalar pipeline uses."""

    name = "numpy"
    bit_identical = True

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        return butter_lowpass(block, cutoff_hz, sample_rate_hz, order)

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        if x.size < 3:
            return np.empty(0, dtype=np.intp)
        return sp_signal.find_peaks(x)[0]

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        return _peak_prominences_scipy(x, peaks)


class Float32Backend(NumpyBackend):
    """Single-precision variant: same kernels on float32 inputs.

    Outputs are returned as float64 so downstream maths is unchanged;
    the precision loss happens once at kernel entry. See the module
    tolerance table for the bounds the equivalence tests enforce.
    """

    name = "float32"
    bit_identical = False

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        out = butter_lowpass(
            np.asarray(block, dtype=np.float32),
            cutoff_hz,
            sample_rate_hz,
            order,
        )
        return np.asarray(out, dtype=np.float64)

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        return super().local_maxima(np.asarray(x, dtype=np.float32))

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        out = super().peak_prominences(np.asarray(x, dtype=np.float32), peaks)
        return np.asarray(out, dtype=np.float64)


def _numba_module():
    """Import numba, or ``None`` when it is not installed."""
    try:
        import numba  # noqa: PLC0415 — feature detection by import
    except ImportError:
        return None
    return numba


class NumbaBackend(ComputeBackend):
    """JIT-compiled reference scans (requires the ``numba`` package).

    The compiled kernels are the pure-Python specifications from
    :mod:`repro.signal.peaks` (``_local_maxima_reference`` /
    ``_peak_prominences_reference``), which the differential tests pin
    bit-identical to the scipy kernels — so this backend is bit-identical
    as well, while avoiding scipy's per-call argument marshalling on
    the scan kernels. Filtering delegates to the float64 scipy path
    (IIR filtering is already a C hot loop; jitting it buys nothing).
    """

    name = "numba"
    bit_identical = True

    def __init__(self) -> None:
        numba = _numba_module()
        if numba is None:
            raise ConfigurationError(
                "the 'numba' backend requires the numba package "
                "(pip install 'repro-ptrack[backends]'); it is not "
                "installed in this environment"
            )
        self._numpy = NumpyBackend()
        self._local_maxima_jit = numba.njit(cache=False)(_local_maxima_loop)
        self._prominences_jit = numba.njit(cache=False)(_prominences_loop)
        # Warm the compiler on tiny inputs so first-round serving
        # latency does not absorb the JIT cost.
        self._local_maxima_jit(np.asarray([0.0, 1.0, 0.0]))
        self._prominences_jit(
            np.asarray([0.0, 1.0, 0.0]), np.asarray([1], dtype=np.intp)
        )

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        return self._numpy.lowpass_block(
            block, cutoff_hz, sample_rate_hz, order
        )

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        if x.size < 3:
            return np.empty(0, dtype=np.intp)
        return self._local_maxima_jit(np.ascontiguousarray(x))

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        idx = np.asarray(peaks, dtype=np.intp)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        return self._prominences_jit(np.ascontiguousarray(x), idx)


def _local_maxima_loop(x: np.ndarray) -> np.ndarray:
    """Plateau-centre local maxima (njit-compilable reference scan)."""
    n = x.size
    out = np.empty(n // 2 + 1, dtype=np.intp)
    m = 0
    i = 1
    while i < n - 1:
        if x[i] > x[i - 1]:
            j = i
            while j < n - 1 and x[j + 1] == x[j]:
                j += 1
            if j < n - 1 and x[j + 1] < x[j]:
                out[m] = (i + j) // 2
                m += 1
            i = j + 1
        else:
            i += 1
    return out[:m].copy()


def _prominences_loop(x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
    """Bounded left/right prominence scans (njit-compilable reference)."""
    out = np.empty(peaks.size, dtype=np.float64)
    n = x.size
    for k in range(peaks.size):
        p = peaks[k]
        height = x[p]
        left_min = height
        i = p - 1
        while i >= 0 and x[i] <= height:
            if x[i] < left_min:
                left_min = x[i]
            i -= 1
        right_min = height
        i = p + 1
        while i < n and x[i] <= height:
            if x[i] < right_min:
                right_min = x[i]
            i += 1
        wall = left_min if left_min > right_min else right_min
        out[k] = height - wall
    return out


_FACTORIES: Dict[str, Callable[[], ComputeBackend]] = {
    "numpy": NumpyBackend,
    "float32": Float32Backend,
    "numba": NumbaBackend,
}


def available_backends() -> Dict[str, Tuple[bool, str]]:
    """Availability of every registered backend.

    Returns:
        Mapping of backend name to ``(available, detail)``; the detail
        string says why an unavailable backend cannot be constructed.
    """
    out: Dict[str, Tuple[bool, str]] = {
        "numpy": (True, "float64 baseline (always available)"),
        "float32": (True, "single-precision variant (always available)"),
    }
    if _numba_module() is None:
        out["numba"] = (False, "numba package not installed")
    else:
        out["numba"] = (True, "numba JIT kernels")
    return out


def get_backend(
    backend: Optional[Union[str, ComputeBackend]] = None,
) -> ComputeBackend:
    """Resolve a compute backend.

    Args:
        backend: A :class:`ComputeBackend` instance (returned as is), a
            registry name, or ``None`` to consult the
            ``PTRACK_BACKEND`` environment variable and fall back to
            ``"numpy"``.

    Returns:
        A constructed backend.

    Raises:
        ConfigurationError: On an unknown name, or a known backend
            whose dependency is missing (e.g. ``numba`` without the
            package installed).
    """
    if isinstance(backend, ComputeBackend):
        return backend
    name = backend
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or "numpy"
    name = name.lower()
    factory = _FACTORIES.get(name)
    if factory is None:
        known: List[str] = sorted(_FACTORIES)
        raise ConfigurationError(
            f"unknown compute backend {name!r}; known backends: {known} "
            f"(selected via the {BACKEND_ENV_VAR} environment variable "
            "or an explicit backend= argument)"
        )
    return factory()
