"""Pluggable compute backends for the fleet-batched hot kernels.

The fleet-batched serving path (:mod:`repro.serving.batch`) funnels
**every** per-round numeric stage through this seam — 2-D block
low-pass filtering, fused extrema scanning, row-stacked mean-removal
integration, the full cycle-measurement stage, and the batched bounce
root solve — so swapping the arithmetic substrate is a matter of
swapping one object. This module is that seam:

* :class:`NumpyBackend` — the float64 baseline, always available. It
  delegates to the exact same scipy/NumPy kernels the scalar pipeline
  uses, so batched results are **bit-identical** to the per-session
  reference (the property the serving equivalence suite asserts).
* :class:`Float32Backend` — casts kernel inputs to float32 before
  dispatching to the same kernels and returns float64. Cheaper on
  memory bandwidth; results are *tolerance-bounded*, not identical
  (see the per-kernel tolerance table below).
* :class:`NumbaBackend` — genuinely fused ``numba.njit`` kernels:
  a single-pass local-maxima **and** prominence scan over the packed
  multi-window signal (:func:`_extrema_fused_loop`), and a per-row
  compiled Brent bounce solver (:func:`_bounce_rows_loop`) that walks
  the same Zeroin state machine as scipy's ``brentq`` without any
  Python callback. Available only when ``numba`` is installed
  (feature-detected; selecting it without the package raises a clear
  error and the test suite skips cleanly). The loop bodies are
  pure-Python specifications pinned bit-identical to the scipy
  references by differential tests, so this backend is bit-identical
  too; filtering and the row-stacked integrations delegate to the
  float64 NumPy path (IIR filtering is already a C hot loop, and
  NumPy's pairwise summation order cannot be reproduced by a
  sequential compiled loop).

Selection: :func:`get_backend` resolves, in order, an explicit argument,
the ``PTRACK_BACKEND`` environment variable, then the ``"numpy"``
default.

Per-kernel tolerance policy (documented contract, pinned by
``tests/test_backends.py`` and ``tests/test_batched_kernels.py``):

=====================  ===========  =================================
kernel                 numpy/numba  float32
=====================  ===========  =================================
``lowpass_block``      exact        rtol 1e-4, atol 1e-4 (m/s^2)
``local_maxima``       exact        index set may differ at ties
``peak_prominences``   exact        rtol 1e-3, atol 1e-3 (m/s^2)
``extrema_block``      exact        index set may differ at ties;
                                    prominences rtol/atol 1e-3
``integrate_block``    exact        rtol 1e-3, atol 1e-4 (m/s, m)
``measurement_block``  exact        offsets rtol 1e-2, atol 1e-4;
                                    boolean gates may flip at their
                                    thresholds
``bounce_solve_block`` exact        rtol 1e-3, atol 1e-4 (m) on
                                    converged rows; validity mask may
                                    differ at bracket boundaries
=====================  ===========  =================================

"Exact" means bit-identical to the float64 scalar reference
(``solve_bounce``, the per-cycle measurement path, the scipy scans).
For ``bounce_solve_block`` the contract is per row: every row the
block solver reports ``valid`` is bit-identical to ``solve_bounce``;
rows it cannot resolve (scalar would raise ``GeometryError``, or the
lockstep loop exhausted its iteration budget) are re-run by callers
through the scalar path, so credits never depend on the batch shape.

Only backends whose :attr:`~ComputeBackend.bit_identical` flag is set
carry the bit-identity guarantee the
``serial == pooled == sharded == batched == gateway`` crediting oracle
relies on; the alternates are for throughput experiments where
tolerance-bounded credits are acceptable.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import signal as sp_signal

from repro.exceptions import ConfigurationError
from repro.signal.filters import butter_lowpass
from repro.signal.peaks import peak_prominences as _peak_prominences_scipy

if TYPE_CHECKING:  # pragma: no cover — import cycle broken at runtime
    from repro.core.config import PTrackConfig
    from repro.runtime.buffers import FleetBatchBuffer

__all__ = [
    "BACKEND_ENV_VAR",
    "ComputeBackend",
    "NumpyBackend",
    "Float32Backend",
    "NumbaBackend",
    "available_backends",
    "get_backend",
]

#: Environment variable consulted by :func:`get_backend`.
BACKEND_ENV_VAR = "PTRACK_BACKEND"


class ComputeBackend:
    """The kernel interface the fleet-batched serving path computes on.

    Attributes:
        name: Registry name of the backend.
        bit_identical: Whether every kernel reproduces the float64
            scalar reference bit for bit. Only backends with this flag
            may back the crediting-identity oracle.
    """

    name: str = "abstract"
    bit_identical: bool = False

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        """Zero-phase low-pass of a 2-D block along axis 0 (float64 out)."""
        raise NotImplementedError

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        """Strict local maxima (plateau centres) of a 1-D float64 signal."""
        raise NotImplementedError

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        """Topographic prominences of ``peaks`` within ``x`` (float64 out)."""
        raise NotImplementedError

    def extrema_block(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fused maxima + prominence scan over a packed signal.

        Returns ``(candidates, prominences)`` for every *finite* local
        maximum of ``x``. On a :func:`repro.signal.batched.pack_windows`
        signal the non-finite samples are exactly the ``+inf``
        separators, so dropping non-finite peaks is the packed
        equivalent of the per-window interior filter — one call
        replaces the maxima scan, the interior mask, and the
        prominence scan.

        The default implementation composes :meth:`local_maxima` and
        :meth:`peak_prominences`, so any backend implementing the
        narrow kernels gets the fused one for free; backends with a
        genuinely single-pass scan (numba) override it.
        """
        candidates = np.asarray(self.local_maxima(x), dtype=np.intp)
        if candidates.size:
            candidates = candidates[np.isfinite(x[candidates])]
        if candidates.size == 0:
            return candidates, np.empty(0)
        proms = np.asarray(self.peak_prominences(x, candidates), dtype=float)
        return candidates, proms

    def integrate_block(
        self, rows: np.ndarray, dt: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Row-wise mean-removal single **and** double integration.

        For a ``(cycles, samples)`` stack of accelerations this returns
        ``(velocity, displacement)`` — the row-wise forms of
        :func:`repro.signal.integration.integrate_mean_removal` and
        :func:`repro.signal.integration.double_integrate_mean_removal`.
        The double integral's inner velocity *is* the returned velocity,
        so callers needing both (the walking-cycle moment extraction)
        pay one fused dispatch instead of recomputing it.

        The default float64 implementation is bit-identical to the
        scalar reference: every reduction is the same NumPy pairwise
        sum over the same operand order.
        """
        velocity = _rows_integrate_mean_removal(rows, dt)
        displacement = _rows_cumtrapz(
            velocity - velocity.mean(axis=1)[:, None], dt
        )
        return velocity, displacement

    def measurement_block(
        self,
        v_segs: Sequence[np.ndarray],
        h_segs: Sequence[np.ndarray],
        config: "PTrackConfig",
        buffers: Optional["FleetBatchBuffer"] = None,
    ) -> list:
        """Measure all staged cycles of a round (projection/gate/offset).

        The full measurement stage behind one dispatch: anterior
        projection, motion gate and Eq. (1) critical-point offsets for
        every staged cycle, exactly what the scalar
        ``StreamingPTrack._stage`` computes per cycle. Returns one
        :data:`repro.core.batched.StageMeasurement` per cycle.

        The default implementation runs the stacked float64 reference
        (:mod:`repro.core.batched`) with ``self`` supplying the extrema
        sub-kernels, so a backend that overrides only the narrow scans
        still shapes the whole stage.
        """
        from repro.core.batched import stage_measurements_impl

        return stage_measurements_impl(v_segs, h_segs, config, self, buffers)

    def bounce_solve_block(
        self,
        h1: np.ndarray,
        h2: np.ndarray,
        d: np.ndarray,
        arm_length_m: np.ndarray,
        max_bounce_m: float = 0.30,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched Eq. (3)-(5) bounce roots; ``(bounce, valid)``.

        One vectorized safeguarded solve replaces N scalar ``brentq``
        calls. Rows flagged ``valid`` are bit-identical to
        :func:`repro.core.bounce.solve_bounce`; callers re-run the rest
        through the scalar path (see the module tolerance policy).
        """
        from repro.core.bounce import solve_bounce_block

        return solve_bounce_block(h1, h2, d, arm_length_m, max_bounce_m)


def _rows_cumtrapz(rows: np.ndarray, dt: float) -> np.ndarray:
    """Row-wise :func:`repro.signal.integration.cumulative_trapezoid`."""
    out = np.empty_like(rows)
    out[:, 0] = 0.0
    np.cumsum((rows[:, 1:] + rows[:, :-1]) * (dt / 2.0), axis=1, out=out[:, 1:])
    return out


def _rows_integrate_mean_removal(rows: np.ndarray, dt: float) -> np.ndarray:
    """Row-wise :func:`repro.signal.integration.integrate_mean_removal`."""
    n = rows.shape[1]
    trapezoid_mean = (rows.sum(axis=1) - 0.5 * (rows[:, 0] + rows[:, -1])) / (n - 1)
    return _rows_cumtrapz(rows - trapezoid_mean[:, None], dt)


class NumpyBackend(ComputeBackend):
    """Float64 baseline: the exact kernels the scalar pipeline uses."""

    name = "numpy"
    bit_identical = True

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        # The fleet round copies hop-sized slices straight out of the
        # result, so skip the final contiguous copy of the whole block.
        return butter_lowpass(
            block, cutoff_hz, sample_rate_hz, order, contiguous=False
        )

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        if x.size < 3:
            return np.empty(0, dtype=np.intp)
        return sp_signal.find_peaks(x)[0]

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        return _peak_prominences_scipy(x, peaks)


class Float32Backend(NumpyBackend):
    """Single-precision variant: same kernels on float32 inputs.

    Outputs are returned as float64 so downstream maths is unchanged;
    the precision loss happens once at kernel entry. See the module
    tolerance table for the bounds the equivalence tests enforce.
    """

    name = "float32"
    bit_identical = False

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        out = butter_lowpass(
            np.asarray(block, dtype=np.float32),
            cutoff_hz,
            sample_rate_hz,
            order,
            contiguous=False,
        )
        return np.asarray(out, dtype=np.float64)

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        return super().local_maxima(np.asarray(x, dtype=np.float32))

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        out = super().peak_prominences(np.asarray(x, dtype=np.float32), peaks)
        return np.asarray(out, dtype=np.float64)

    def integrate_block(
        self, rows: np.ndarray, dt: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        vel, disp = super().integrate_block(
            np.asarray(rows, dtype=np.float32), dt
        )
        return (
            np.asarray(vel, dtype=np.float64),
            np.asarray(disp, dtype=np.float64),
        )

    def measurement_block(
        self,
        v_segs: Sequence[np.ndarray],
        h_segs: Sequence[np.ndarray],
        config: "PTrackConfig",
        buffers: Optional["FleetBatchBuffer"] = None,
    ) -> list:
        # Quantize once at kernel entry; the stage itself then runs the
        # float64 reference (with this backend's float32 scans inside).
        v32 = [np.asarray(np.asarray(v, dtype=np.float32), dtype=np.float64)
               for v in v_segs]
        h32 = [np.asarray(np.asarray(h, dtype=np.float32), dtype=np.float64)
               for h in h_segs]
        return super().measurement_block(v32, h32, config, buffers)

    def bounce_solve_block(
        self,
        h1: np.ndarray,
        h2: np.ndarray,
        d: np.ndarray,
        arm_length_m: np.ndarray,
        max_bounce_m: float = 0.30,
    ) -> Tuple[np.ndarray, np.ndarray]:
        def q(x: np.ndarray) -> np.ndarray:
            return np.asarray(
                np.asarray(x, dtype=np.float32), dtype=np.float64
            )

        return super().bounce_solve_block(
            q(h1), q(h2), q(d), q(arm_length_m), max_bounce_m
        )


def _numba_module():
    """Import numba, or ``None`` when it is not installed."""
    try:
        import numba  # noqa: PLC0415 — feature detection by import
    except ImportError:
        return None
    return numba


class NumbaBackend(ComputeBackend):
    """JIT-compiled reference scans (requires the ``numba`` package).

    The compiled kernels are the pure-Python specifications from
    :mod:`repro.signal.peaks` (``_local_maxima_reference`` /
    ``_peak_prominences_reference``), which the differential tests pin
    bit-identical to the scipy kernels — so this backend is bit-identical
    as well, while avoiding scipy's per-call argument marshalling on
    the scan kernels. Filtering delegates to the float64 scipy path
    (IIR filtering is already a C hot loop; jitting it buys nothing).
    """

    name = "numba"
    bit_identical = True

    def __init__(self) -> None:
        numba = _numba_module()
        if numba is None:
            raise ConfigurationError(
                "the 'numba' backend requires the numba package "
                "(pip install 'repro-ptrack[backends]'); it is not "
                "installed in this environment"
            )
        self._numpy = NumpyBackend()
        self._local_maxima_jit = numba.njit(cache=False)(_local_maxima_loop)
        self._prominences_jit = numba.njit(cache=False)(_prominences_loop)
        self._extrema_jit = numba.njit(cache=False)(_extrema_fused_loop)
        self._bounce_rows_jit = numba.njit(cache=False)(_bounce_rows_loop)
        # Warm the compiler on tiny inputs so first-round serving
        # latency does not absorb the JIT cost.
        self._local_maxima_jit(np.asarray([0.0, 1.0, 0.0]))
        self._prominences_jit(
            np.asarray([0.0, 1.0, 0.0]), np.asarray([1], dtype=np.intp)
        )
        self._extrema_jit(np.asarray([0.0, 1.0, 0.0]))
        self._bounce_rows_jit(
            np.asarray([0.01]), np.asarray([0.01]), np.asarray([0.3]),
            np.asarray([0.7]), 0.30, 2e-12, 4.0 * float(np.finfo(float).eps),
            100, np.empty(1), np.empty(1, dtype=np.bool_),
        )

    def lowpass_block(
        self,
        block: np.ndarray,
        cutoff_hz: float,
        sample_rate_hz: float,
        order: int,
    ) -> np.ndarray:
        return self._numpy.lowpass_block(
            block, cutoff_hz, sample_rate_hz, order
        )

    def local_maxima(self, x: np.ndarray) -> np.ndarray:
        if x.size < 3:
            return np.empty(0, dtype=np.intp)
        return self._local_maxima_jit(np.ascontiguousarray(x))

    def peak_prominences(self, x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
        idx = np.asarray(peaks, dtype=np.intp)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        return self._prominences_jit(np.ascontiguousarray(x), idx)

    def extrema_block(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if x.size < 3:
            return np.empty(0, dtype=np.intp), np.empty(0)
        return self._extrema_jit(np.ascontiguousarray(x))

    def bounce_solve_block(
        self,
        h1: np.ndarray,
        h2: np.ndarray,
        d: np.ndarray,
        arm_length_m: np.ndarray,
        max_bounce_m: float = 0.30,
    ) -> Tuple[np.ndarray, np.ndarray]:
        from repro.core.bounce import (
            _BRENT_MAXITER,
            _BRENT_RTOL,
            _BRENT_XTOL,
        )

        d64 = np.ascontiguousarray(d, dtype=np.float64)
        n = d64.size
        m = np.ascontiguousarray(
            np.broadcast_to(np.asarray(arm_length_m, dtype=np.float64), (n,))
        )
        bounce = np.empty(n)
        valid = np.empty(n, dtype=np.bool_)
        self._bounce_rows_jit(
            np.ascontiguousarray(h1, dtype=np.float64),
            np.ascontiguousarray(h2, dtype=np.float64),
            d64, m, float(max_bounce_m),
            _BRENT_XTOL, _BRENT_RTOL, _BRENT_MAXITER,
            bounce, valid,
        )
        return bounce, valid


def _local_maxima_loop(x: np.ndarray) -> np.ndarray:
    """Plateau-centre local maxima (njit-compilable reference scan)."""
    n = x.size
    out = np.empty(n // 2 + 1, dtype=np.intp)
    m = 0
    i = 1
    while i < n - 1:
        if x[i] > x[i - 1]:
            j = i
            while j < n - 1 and x[j + 1] == x[j]:
                j += 1
            if j < n - 1 and x[j + 1] < x[j]:
                out[m] = (i + j) // 2
                m += 1
            i = j + 1
        else:
            i += 1
    return out[:m].copy()


def _prominences_loop(x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
    """Bounded left/right prominence scans (njit-compilable reference)."""
    out = np.empty(peaks.size, dtype=np.float64)
    n = x.size
    for k in range(peaks.size):
        p = peaks[k]
        height = x[p]
        left_min = height
        i = p - 1
        while i >= 0 and x[i] <= height:
            if x[i] < left_min:
                left_min = x[i]
            i -= 1
        right_min = height
        i = p + 1
        while i < n and x[i] <= height:
            if x[i] < right_min:
                right_min = x[i]
            i += 1
        wall = left_min if left_min > right_min else right_min
        out[k] = height - wall
    return out


def _extrema_fused_loop(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One-pass maxima + prominence scan, finite peaks only.

    The fused (njit-compilable) form of
    ``ComputeBackend.extrema_block``: a single traversal locates every
    plateau-centre maximum and measures its prominence in place,
    skipping non-finite peaks (the ``+inf`` window separators of
    :func:`repro.signal.batched.pack_windows`). Equivalent to
    ``_local_maxima_loop`` + interior filter + ``_prominences_loop``,
    without re-walking the signal per primitive.
    """
    n = x.size
    cand = np.empty(n // 2 + 1, dtype=np.intp)
    proms = np.empty(n // 2 + 1, dtype=np.float64)
    m = 0
    i = 1
    while i < n - 1:
        if x[i] > x[i - 1]:
            j = i
            while j < n - 1 and x[j + 1] == x[j]:
                j += 1
            if j < n - 1 and x[j + 1] < x[j]:
                p = (i + j) // 2
                height = x[p]
                if np.isfinite(height):
                    left_min = height
                    k = p - 1
                    while k >= 0 and x[k] <= height:
                        if x[k] < left_min:
                            left_min = x[k]
                        k -= 1
                    right_min = height
                    k = p + 1
                    while k < n and x[k] <= height:
                        if x[k] < right_min:
                            right_min = x[k]
                        k += 1
                    wall = left_min if left_min > right_min else right_min
                    cand[m] = p
                    proms[m] = height - wall
                    m += 1
            i = j + 1
        else:
            i += 1
    return cand[:m].copy(), proms[:m].copy()


def _bounce_rows_loop(
    h1: np.ndarray,
    h2: np.ndarray,
    d: np.ndarray,
    arm: np.ndarray,
    max_bounce_m: float,
    xtol: float,
    rtol: float,
    maxiter: int,
    out_bounce: np.ndarray,
    out_valid: np.ndarray,
) -> None:
    """Per-row scalar Brent bounce solves (njit-compilable).

    The compiled-loop form of
    :func:`repro.core.bounce.solve_bounce_block`: per row it replays
    ``solve_bounce``'s guard clauses, bracket build and endpoint clips,
    then walks the exact Zeroin state machine of scipy's ``brentq`` C
    implementation — every float operation in scalar program order, so
    results are bit-identical to the scalar solver. Rows whose
    geometry the scalar path rejects (or that exhaust ``maxiter``)
    come out NaN with ``out_valid`` False.
    """
    for r in range(d.size):
        out_bounce[r] = np.nan
        out_valid[r] = False
        m = arm[r]
        dd = d[r]
        a1 = h1[r]
        a2 = h2[r]
        if m <= 0.0 or dd < 0.0 or dd > 2.0 * m:
            continue
        lo = 0.0
        if -a1 > lo:
            lo = -a1
        if -a2 > lo:
            lo = -a2
        lo = lo + 1e-9
        hi = max_bounce_m
        if m - a1 < hi:
            hi = m - a1
        if m - a2 < hi:
            hi = m - a2
        hi = hi - 1e-9
        if hi <= lo:
            continue

        # Anterior travel at a trial bounce, inlined at each call site
        # (numba-safe: no closure capture inside the row loop). The
        # arithmetic is exactly _anterior_travel's: explicit products,
        # clamped operands, correctly rounded sqrt.
        u1 = m - (a1 + lo)
        u2 = m - (a2 + lo)
        t1 = m * m - u1 * u1
        t2 = m * m - u2 * u2
        if t1 < 0.0:
            t1 = 0.0
        if t2 < 0.0:
            t2 = 0.0
        f_lo = np.sqrt(t1) + np.sqrt(t2) - dd
        u1 = m - (a1 + hi)
        u2 = m - (a2 + hi)
        t1 = m * m - u1 * u1
        t2 = m * m - u2 * u2
        if t1 < 0.0:
            t1 = 0.0
        if t2 < 0.0:
            t2 = 0.0
        f_hi = np.sqrt(t1) + np.sqrt(t2) - dd
        if f_lo >= 0.0:
            out_bounce[r] = lo
            out_valid[r] = True
            continue
        if f_hi <= 0.0:
            out_bounce[r] = hi
            out_valid[r] = True
            continue

        xpre = lo
        xcur = hi
        fpre = f_lo
        fcur = f_hi
        xblk = 0.0
        fblk = 0.0
        spre = 0.0
        scur = 0.0
        for _ in range(maxiter):
            if fpre != 0.0 and fcur != 0.0 and ((fpre < 0.0) != (fcur < 0.0)):
                xblk = xpre
                fblk = fpre
                spre = xcur - xpre
                scur = spre
            if abs(fblk) < abs(fcur):
                xpre = xcur
                xcur = xblk
                xblk = xpre
                fpre = fcur
                fcur = fblk
                fblk = fpre
            delta = (xtol + rtol * abs(xcur)) / 2.0
            sbis = (xblk - xcur) / 2.0
            if fcur == 0.0 or abs(sbis) < delta:
                out_bounce[r] = xcur
                out_valid[r] = True
                break
            if abs(spre) > delta and abs(fcur) < abs(fpre):
                if xpre == xblk:
                    stry = -fcur * (xcur - xpre) / (fcur - fpre)
                else:
                    dpre = (fpre - fcur) / (xpre - xcur)
                    dblk = (fblk - fcur) / (xblk - xcur)
                    stry = (
                        -fcur
                        * (fblk * dblk - fpre * dpre)
                        / (dblk * dpre * (fblk - fpre))
                    )
                if 2.0 * abs(stry) < min(abs(spre), 3.0 * abs(sbis) - delta):
                    spre = scur
                    scur = stry
                else:
                    spre = sbis
                    scur = sbis
            else:
                spre = sbis
                scur = sbis
            xpre = xcur
            fpre = fcur
            if abs(scur) > delta:
                xcur = xcur + scur
            elif sbis > 0.0:
                xcur = xcur + delta
            else:
                xcur = xcur - delta
            u1 = m - (a1 + xcur)
            u2 = m - (a2 + xcur)
            t1 = m * m - u1 * u1
            t2 = m * m - u2 * u2
            if t1 < 0.0:
                t1 = 0.0
            if t2 < 0.0:
                t2 = 0.0
            fcur = np.sqrt(t1) + np.sqrt(t2) - dd


_FACTORIES: Dict[str, Callable[[], ComputeBackend]] = {
    "numpy": NumpyBackend,
    "float32": Float32Backend,
    "numba": NumbaBackend,
}


def available_backends() -> Dict[str, Tuple[bool, str]]:
    """Availability of every registered backend.

    Returns:
        Mapping of backend name to ``(available, detail)``; the detail
        string says why an unavailable backend cannot be constructed.
    """
    out: Dict[str, Tuple[bool, str]] = {
        "numpy": (True, "float64 baseline (always available)"),
        "float32": (True, "single-precision variant (always available)"),
    }
    if _numba_module() is None:
        out["numba"] = (False, "numba package not installed")
    else:
        out["numba"] = (True, "numba JIT kernels")
    return out


def get_backend(
    backend: Optional[Union[str, ComputeBackend]] = None,
) -> ComputeBackend:
    """Resolve a compute backend.

    Args:
        backend: A :class:`ComputeBackend` instance (returned as is), a
            registry name, or ``None`` to consult the
            ``PTRACK_BACKEND`` environment variable and fall back to
            ``"numpy"``.

    Returns:
        A constructed backend.

    Raises:
        ConfigurationError: On an unknown name, or a known backend
            whose dependency is missing (e.g. ``numba`` without the
            package installed).
    """
    if isinstance(backend, ComputeBackend):
        return backend
    name = backend
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or "numpy"
    name = name.lower()
    factory = _FACTORIES.get(name)
    if factory is None:
        known: List[str] = sorted(_FACTORIES)
        raise ConfigurationError(
            f"unknown compute backend {name!r}; known backends: {known} "
            f"(selected via the {BACKEND_ENV_VAR} environment variable "
            "or an explicit backend= argument)"
        )
    return factory()
