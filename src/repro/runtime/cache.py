"""Content-keyed trace cache: in-memory LRU plus optional disk store.

Replicate studies re-simulate the same walks constantly — a threshold
sweep evaluates three configurations on identical (user, seed) traces,
and regenerating a figure repeats every simulation of the previous run.
The simulator is deterministic given its seed, so a simulated trace is
fully determined by its *content key*: the user profile, scenario
parameters, duration and seed. This module caches those results.

Two layers:

* an in-memory LRU (``max_items`` entries) for intra-run reuse;
* an optional on-disk pickle store (``directory``) surviving across
  processes and runs — point ``REPRO_CACHE_DIR`` at a directory to give
  the default cache a disk layer.

The disk layer is self-healing: a corrupted or truncated entry (torn
write, bit rot, stale pickle) is quarantined under a ``.corrupt``
suffix, counted (``corrupt_entries`` /
``runtime_cache_corrupt_total``), and reported as a miss so the value
is simply recomputed — a damaged cache can degrade performance but
never correctness, the same quarantine-as-miss contract the serving
:class:`~repro.serving.checkpoint.CheckpointStore` keeps.

Keys are SHA-256 digests of the ``repr`` of every keyed argument, so
any parameter change (a different stride, one more second of duration,
another seed) misses cleanly. Invalidation is therefore automatic for
parameter changes; after *code* changes to the simulator, clear the
cache directory (or bump :data:`CACHE_SCHEMA`).

Cached objects are returned by reference and must be treated as
read-only; :class:`repro.sensing.imu.IMUTrace` already freezes its
payload buffer.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sensing.imu import IMUTrace
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.simulation.activities import simulate_interference
from repro.simulation.profiles import SimulatedUser
from repro.simulation.spoofer import simulate_spoofer
from repro.simulation.walker import WalkGroundTruth, simulate_walk
from repro.types import ActivityKind, Posture

__all__ = [
    "CACHE_SCHEMA",
    "TraceCache",
    "content_key",
    "get_default_cache",
    "set_default_cache",
    "simulate_walk_cached",
    "simulate_interference_cached",
    "simulate_spoofer_cached",
]

#: Bump when the simulator's output changes for identical parameters.
CACHE_SCHEMA = "ptrack-cache-v1"

#: Environment variable naming the default cache's disk directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISSING = object()


def content_key(*parts: Any) -> str:
    """A stable digest of the ``repr`` of every part.

    Frozen dataclasses (users, configs), numbers, strings, enums and
    tuples thereof all have deterministic reprs; that is the contract
    callers must keep. The schema version is folded in so stale disk
    entries die with the format.

    Args:
        parts: The values that determine the cached content.

    Returns:
        A hex SHA-256 digest.
    """
    payload = "\x1f".join([CACHE_SCHEMA, *[repr(p) for p in parts]])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TraceCache:
    """In-memory LRU with an optional on-disk pickle layer.

    Args:
        max_items: In-memory entry cap; least-recently-used entries are
            evicted first (the disk layer, when present, keeps them).
        directory: Optional disk-store directory; created on demand.
        telemetry: Metrics registry receiving hit/miss/eviction
            counters (``runtime_cache_*_total``). ``None`` checks the
            process gate on every lookup instead — the default cache
            is built lazily at first use, usually before
            ``telemetry.enable()`` runs, so a use-time fallback is
            what lets it report at all.
    """

    def __init__(
        self,
        max_items: int = 128,
        directory: Optional[Union[str, Path]] = None,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_items < 1:
            raise ConfigurationError(f"max_items must be >= 1, got {max_items}")
        self._max_items = max_items
        self._dir = Path(directory) if directory is not None else None
        self._items: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corrupt = 0
        self._telemetry = telemetry

    def _registry(self) -> Optional[MetricsRegistry]:
        """The explicit registry, or the process gate's (may be None)."""
        return self._telemetry if self._telemetry is not None else get_registry()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Lookups served from memory or disk."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compute."""
        return self._misses

    @property
    def evictions(self) -> int:
        """In-memory entries dropped by the LRU cap."""
        return self._evictions

    @property
    def corrupt_entries(self) -> int:
        """Disk entries quarantined as unreadable (counted as misses)."""
        return self._corrupt

    @property
    def directory(self) -> Optional[Path]:
        """The disk-store directory, if any."""
        return self._dir

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._items:
                return True
        return self._disk_path(key) is not None and self._disk_path(key).exists()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None, count: bool = True) -> Any:
        """The cached value for ``key``, or ``default``.

        Args:
            key: Content key (see :func:`content_key`).
            default: Returned on a miss.
            count: Whether the lookup updates the hit/miss counters
                (pass ``False`` for peeks that never compute).

        Returns:
            The cached value or ``default``.
        """
        value = self._lookup(key, count=count)
        return default if value is _MISSING else value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in memory (and on disk)."""
        evicted = 0
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            while len(self._items) > self._max_items:
                self._items.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted:
            reg = self._registry()
            if reg is not None:
                reg.counter("runtime_cache_evictions_total").inc(evicted)
        self._disk_write(key, value)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, computing and storing on miss.

        Args:
            key: Content key (see :func:`content_key`).
            compute: Zero-argument callable producing the value.

        Returns:
            The cached or freshly computed value.
        """
        value = self._lookup(key, count=True)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry and reset the hit/miss counters.

        Disk entries are left in place; delete the directory to purge
        them (e.g. after simulator code changes). The telemetry
        counters, if any, stay monotonic — ``clear`` resets the
        cache's own introspection, not the process's health ledger.
        """
        with self._lock:
            self._items.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._corrupt = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lookup(self, key: str, count: bool) -> Any:
        with self._lock:
            if key in self._items:
                self._items.move_to_end(key)
                if count:
                    self._hits += 1
                    self._count_telemetry("runtime_cache_hits_total")
                return self._items[key]
        value = self._disk_read(key)
        if value is not _MISSING:
            evicted = 0
            with self._lock:
                self._items[key] = value
                self._items.move_to_end(key)
                while len(self._items) > self._max_items:
                    self._items.popitem(last=False)
                    evicted += 1
                self._evictions += evicted
                if count:
                    self._hits += 1
                    self._count_telemetry("runtime_cache_hits_total")
            if evicted:
                reg = self._registry()
                if reg is not None:
                    reg.counter("runtime_cache_evictions_total").inc(evicted)
            return value
        if count:
            with self._lock:
                self._misses += 1
                self._count_telemetry("runtime_cache_misses_total")
        return _MISSING

    def _count_telemetry(self, name: str) -> None:
        reg = self._registry()
        if reg is not None:
            reg.counter(name).inc()

    def _disk_path(self, key: str) -> Optional[Path]:
        return None if self._dir is None else self._dir / f"{key}.pkl"

    def _disk_read(self, key: str) -> Any:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return _MISSING
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except OSError:
            return _MISSING  # vanished or unreadable: plain miss
        except Exception:
            # Torn write, truncation, bit rot, or a stale entry whose
            # classes no longer unpickle: quarantine the file so the
            # recompute can land a fresh copy, count it, and read as a
            # miss — never raise out of a cache lookup.
            self._quarantine(path)
            return _MISSING

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt disk entry aside and count it."""
        with self._lock:
            self._corrupt += 1
        self._count_telemetry("runtime_cache_corrupt_total")
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass  # best effort; an unmovable file still reads as a miss

    def _disk_write(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)  # atomic under concurrent writers
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            pass  # a read-only or full disk degrades to memory-only


_default_cache: Optional[TraceCache] = None
_default_lock = threading.Lock()


def get_default_cache() -> TraceCache:
    """The process-wide default cache (lazily constructed).

    Honours ``REPRO_CACHE_DIR`` for the disk layer at first use.
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            directory = os.environ.get(CACHE_DIR_ENV, "").strip() or None
            _default_cache = TraceCache(directory=directory)
        return _default_cache


def set_default_cache(cache: Optional[TraceCache]) -> None:
    """Replace the process-wide default cache (``None`` resets it)."""
    global _default_cache
    with _default_lock:
        _default_cache = cache


# ----------------------------------------------------------------------
# Cached simulator entry points
# ----------------------------------------------------------------------
def _seed_rng(seed: Optional[int]) -> Optional[np.random.Generator]:
    return None if seed is None else np.random.default_rng(int(seed))


def simulate_walk_cached(
    user: SimulatedUser,
    duration_s: float,
    seed: Optional[int] = None,
    cache: Optional[TraceCache] = None,
    sample_rate_hz: float = 100.0,
    arm_mode: str = "swing",
    body: bool = True,
    heading_rad: float = 0.0,
    cadence_jitter: float = 0.03,
    stride_jitter: float = 0.03,
    start_time: float = 0.0,
) -> Tuple[IMUTrace, WalkGroundTruth]:
    """Cache-aware :func:`repro.simulation.walker.simulate_walk`.

    Unlike the raw simulator, randomness comes from an integer ``seed``
    (``None`` = the deterministic noiseless path) so the trace is a
    pure function of its arguments and can be content-keyed. Only the
    cacheable parameter subset is exposed: custom devices, per-sample
    heading arrays and internals have identity-dependent state and must
    go through the raw simulator.

    Args:
        user: The simulated user (part of the key).
        duration_s: Trace duration in seconds.
        seed: Integer seed for gait jitter and sensor noise.
        cache: Cache to use; ``None`` uses :func:`get_default_cache`.
        sample_rate_hz: Device sampling rate.
        arm_mode: ``"swing"``, ``"rigid"`` or ``"none"``.
        body: ``False`` for the standing arm-swinging motion.
        heading_rad: Scalar heading.
        cadence_jitter: Relative std-dev of per-cycle cadence draws.
        stride_jitter: Relative std-dev of per-cycle stride draws.
        start_time: Timestamp of the first sample.

    Returns:
        Tuple ``(trace, ground_truth)``; treat both as read-only.
    """
    store = cache if cache is not None else get_default_cache()
    key = content_key(
        "walk",
        user,
        float(duration_s),
        int(seed) if seed is not None else None,
        float(sample_rate_hz),
        arm_mode,
        bool(body),
        float(heading_rad),
        float(cadence_jitter),
        float(stride_jitter),
        float(start_time),
    )
    return store.get_or_compute(
        key,
        lambda: simulate_walk(
            user,
            duration_s,
            sample_rate_hz=sample_rate_hz,
            rng=_seed_rng(seed),
            arm_mode=arm_mode,
            body=body,
            heading_rad=heading_rad,
            cadence_jitter=cadence_jitter,
            stride_jitter=stride_jitter,
            start_time=start_time,
        ),
    )


def simulate_interference_cached(
    kind: ActivityKind,
    duration_s: float,
    seed: Optional[int] = None,
    cache: Optional[TraceCache] = None,
    sample_rate_hz: float = 100.0,
    posture: Posture = Posture.STANDING,
    vigor: float = 1.0,
    start_time: float = 0.0,
) -> IMUTrace:
    """Cache-aware :func:`repro.simulation.activities.simulate_interference`.

    Args:
        kind: The interfering activity.
        duration_s: Trace duration in seconds.
        seed: Integer seed for gesture timing and sensor noise.
        cache: Cache to use; ``None`` uses :func:`get_default_cache`.
        sample_rate_hz: Device sampling rate.
        posture: Standing or seated.
        vigor: Gesture reach scale.
        start_time: Timestamp of the first sample.

    Returns:
        The observed trace; treat as read-only.
    """
    store = cache if cache is not None else get_default_cache()
    key = content_key(
        "interference",
        kind,
        float(duration_s),
        int(seed) if seed is not None else None,
        float(sample_rate_hz),
        posture,
        float(vigor),
        float(start_time),
    )
    return store.get_or_compute(
        key,
        lambda: simulate_interference(
            kind,
            duration_s,
            sample_rate_hz=sample_rate_hz,
            rng=_seed_rng(seed),
            posture=posture,
            vigor=vigor,
            start_time=start_time,
        ),
    )


def simulate_spoofer_cached(
    duration_s: float,
    seed: Optional[int] = None,
    cache: Optional[TraceCache] = None,
    sample_rate_hz: float = 100.0,
    start_time: float = 0.0,
) -> IMUTrace:
    """Cache-aware :func:`repro.simulation.spoofer.simulate_spoofer`."""
    store = cache if cache is not None else get_default_cache()
    key = content_key(
        "spoofer",
        float(duration_s),
        int(seed) if seed is not None else None,
        float(sample_rate_hz),
        float(start_time),
    )
    return store.get_or_compute(
        key,
        lambda: simulate_spoofer(
            duration_s,
            sample_rate_hz=sample_rate_hz,
            rng=_seed_rng(seed),
            start_time=start_time,
        ),
    )
