"""Grow-on-demand keyed scratch buffers for batched hot paths.

The fleet-batched round repeatedly needs large transient arrays (the
packed segmentation signal, column-stacked filter blocks, per-length
measurement stacks) whose sizes vary round to round. Allocating them
fresh each round churns the allocator at exactly the call rate batching
is meant to amortise; :class:`FleetBatchBuffer` hands out views over
per-key backing arrays that only ever grow.

Historically this lived in :mod:`repro.serving.batch`; it moved here so
the kernel layers (:mod:`repro.core.batched`,
:mod:`repro.runtime.backends`) can accept scratch without importing the
serving layer. The old import path still re-exports it.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

__all__ = ["FleetBatchBuffer"]


class FleetBatchBuffer:
    """Grow-on-demand keyed scratch arrays for fleet-batched rounds.

    Views are only valid until the same key is requested again —
    callers copy anything they need to keep, which the serving round
    does anyway (filtered output is committed into session buffers,
    packed signals are consumed within the kernel call).
    """

    def __init__(self) -> None:
        self._store: Dict[str, np.ndarray] = {}

    def request(
        self,
        key: str,
        shape: Union[int, Tuple[int, ...]],
        dtype: type = np.float64,
    ) -> np.ndarray:
        """A view of ``shape`` over the (possibly grown) buffer ``key``.

        Contents are uninitialised — callers overwrite before reading.
        """
        if isinstance(shape, int):
            shape = (shape,)
        total = 1
        for dim in shape:
            total *= int(dim)
        buf = self._store.get(key)
        if buf is None or buf.size < total or buf.dtype != np.dtype(dtype):
            buf = np.empty(total, dtype=dtype)
            self._store[key] = buf
        return buf[:total].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently retained across all keys."""
        return sum(buf.nbytes for buf in self._store.values())

    def clear(self) -> None:
        """Release every retained buffer."""
        self._store.clear()
