"""Attitude estimation: from raw device-frame IMU data to the
gravity-aligned frame the tracking pipeline consumes.

The paper obtains vertical accelerations "directly ... from motion
sensor APIs on both Android and iOS platforms" [25]. Those APIs are an
attitude filter fusing the gyroscope (fast, drifting) with the
accelerometer's gravity observation (slow, absolute): this module
implements that substrate so the pipeline can run on *raw* device-frame
data rather than oracle world-frame signals.

The filter is a rotation-matrix complementary filter:

* predict: integrate the body-rate gyro, ``R <- R @ expm(skew(w) dt)``;
* correct: tilt the estimate a small step toward agreement between the
  measured specific-force direction and the predicted gravity, gated by
  how close the accelerometer magnitude is to 1 g (during vigorous
  swings the accelerometer measures motion, not gravity, and must not
  be trusted).

Yaw is unobservable without a magnetometer and may drift slowly; PTrack
is insensitive to it because the anterior axis is re-derived from the
data every cycle (SIII-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SignalError
from repro.sensing.imu import GRAVITY_M_S2, IMUTrace

__all__ = ["RawIMUTrace", "ComplementaryFilter", "recover_linear_acceleration"]


@dataclass(frozen=True)
class RawIMUTrace:
    """Raw device-frame IMU stream (what the hardware really outputs).

    Attributes:
        specific_force: Accelerometer output, shape (N, 3), device
            frame, *including* the gravity reaction (m/s^2).
        angular_rate: Gyroscope output, shape (N, 3), device frame
            (rad/s).
        sample_rate_hz: Sampling rate.
        start_time: Timestamp of the first sample.
    """

    specific_force: np.ndarray
    angular_rate: np.ndarray
    sample_rate_hz: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        acc = np.asarray(self.specific_force, dtype=float)
        gyr = np.asarray(self.angular_rate, dtype=float)
        if acc.ndim != 2 or acc.shape[1] != 3:
            raise SignalError(f"specific_force must be (N, 3), got {acc.shape}")
        if gyr.shape != acc.shape:
            raise SignalError(
                f"angular_rate shape {gyr.shape} != specific_force {acc.shape}"
            )
        if acc.shape[0] == 0:
            raise SignalError("raw trace must contain at least one sample")
        if not (np.all(np.isfinite(acc)) and np.all(np.isfinite(gyr))):
            raise SignalError("raw trace contains non-finite values")
        if self.sample_rate_hz <= 0:
            raise SignalError("sample_rate_hz must be positive")
        object.__setattr__(self, "specific_force", acc.copy())
        object.__setattr__(self, "angular_rate", gyr.copy())

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return int(self.specific_force.shape[0])

    @property
    def dt(self) -> float:
        """Sample period in seconds."""
        return 1.0 / self.sample_rate_hz


def _skew(v: np.ndarray) -> np.ndarray:
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ]
    )


def _rotation_exp(axis_angle: np.ndarray) -> np.ndarray:
    """Rodrigues' formula: matrix exponential of a rotation vector."""
    angle = float(np.linalg.norm(axis_angle))
    if angle < 1e-12:
        return np.eye(3) + _skew(axis_angle)
    axis = axis_angle / angle
    k = _skew(axis)
    return np.eye(3) + np.sin(angle) * k + (1.0 - np.cos(angle)) * (k @ k)


class ComplementaryFilter:
    """Rotation-matrix complementary attitude filter.

    Args:
        sample_rate_hz: Rate of the incoming raw stream.
        tau_s: Correction time constant — how quickly the accelerometer
            pulls the tilt estimate (2 s suits wrist dynamics: faster
            corrections chase swing accelerations, slower ones let gyro
            bias accumulate).
        gravity_gate: Relative band around 1 g within which the
            accelerometer is trusted as a gravity observation.
    """

    def __init__(
        self,
        sample_rate_hz: float,
        tau_s: float = 2.0,
        gravity_gate: float = 0.3,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if tau_s <= 0:
            raise ConfigurationError("tau_s must be positive")
        if not 0 < gravity_gate < 1:
            raise ConfigurationError("gravity_gate must be in (0, 1)")
        self._rate = sample_rate_hz
        self._dt = 1.0 / sample_rate_hz
        self._alpha = self._dt / (tau_s + self._dt)
        self._gate = gravity_gate

    def estimate(
        self,
        raw: RawIMUTrace,
        initial_rotation: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-sample world-from-device rotation estimates.

        Args:
            raw: The raw device-frame stream.
            initial_rotation: Optional known initial attitude; when
                absent, the first accelerometer sample initialises the
                tilt (device assumed quasi-static at start).

        Returns:
            Array of shape (N, 3, 3): world_from_device rotations.
        """
        if abs(raw.sample_rate_hz - self._rate) > 1e-9:
            raise ConfigurationError(
                f"raw rate {raw.sample_rate_hz} != filter rate {self._rate}"
            )
        n = raw.n_samples
        rotations = np.empty((n, 3, 3))
        if initial_rotation is not None:
            rotation = np.asarray(initial_rotation, dtype=float).copy()
        else:
            rotation = self._tilt_from_accel(raw.specific_force[0])

        up = np.array([0.0, 0.0, 1.0])
        for k in range(n):
            if k > 0:
                # Predict: integrate the body rate.
                rotation = rotation @ _rotation_exp(
                    raw.angular_rate[k] * self._dt
                )
            # Correct: pull the predicted gravity toward the measured
            # specific-force direction when the magnitude is ~1 g.
            force = raw.specific_force[k]
            magnitude = float(np.linalg.norm(force))
            if abs(magnitude - GRAVITY_M_S2) < self._gate * GRAVITY_M_S2:
                measured_up = rotation @ (force / magnitude)
                axis = np.cross(measured_up, up)
                norm = float(np.linalg.norm(axis))
                if norm > 1e-12:
                    angle = float(
                        np.arcsin(np.clip(norm, -1.0, 1.0))
                    )
                    correction = (axis / norm) * (self._alpha * angle)
                    rotation = _rotation_exp(correction) @ rotation
            rotations[k] = rotation
        return rotations

    @staticmethod
    def _tilt_from_accel(force: np.ndarray) -> np.ndarray:
        """Initial attitude whose gravity matches one accel sample."""
        magnitude = float(np.linalg.norm(force))
        if magnitude < 1e-9:
            return np.eye(3)
        measured_up_device = force / magnitude
        up = np.array([0.0, 0.0, 1.0])
        # Rotation sending the device's measured up to world up.
        axis = np.cross(measured_up_device, up)
        norm = float(np.linalg.norm(axis))
        if norm < 1e-12:
            return np.eye(3) if measured_up_device @ up > 0 else _rotation_exp(
                np.array([np.pi, 0.0, 0.0])
            )
        angle = float(np.arctan2(norm, float(measured_up_device @ up)))
        return _rotation_exp((axis / norm) * angle)


def recover_linear_acceleration(
    raw: RawIMUTrace,
    tau_s: float = 2.0,
    initial_rotation: Optional[np.ndarray] = None,
) -> IMUTrace:
    """The [25] substrate: raw device stream -> world-frame linear trace.

    Runs the complementary filter, rotates the specific force into the
    world frame and subtracts gravity — producing exactly the
    :class:`~repro.sensing.imu.IMUTrace` the tracking pipeline
    consumes.

    Args:
        raw: Raw device-frame stream.
        tau_s: Filter time constant.
        initial_rotation: Optional known initial attitude.

    Returns:
        World-frame linear-acceleration trace.
    """
    filt = ComplementaryFilter(raw.sample_rate_hz, tau_s=tau_s)
    rotations = filt.estimate(raw, initial_rotation)
    world = np.einsum("nij,nj->ni", rotations, raw.specific_force)
    world[:, 2] -= GRAVITY_M_S2
    return IMUTrace(world, raw.sample_rate_hz, raw.start_time)
