"""Trace and session serialisation.

Real evaluations collect traces once and process them many times; this
module persists :class:`~repro.sensing.imu.IMUTrace` objects and
labelled sessions to ``.npz`` archives (numpy's portable compressed
container — no extra dependencies) so datasets survive across runs and
can be shared.

Format (versioned): each archive stores the payload arrays plus a
``meta`` JSON string with the scalar fields; sessions add per-segment
label records.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

import numpy as np

from repro.exceptions import SignalError
from repro.sensing.imu import IMUTrace
from repro.simulation.profiles import SimulatedUser
from repro.simulation.scenarios import ActivitySegment, LabeledSession
from repro.types import ActivityKind, Posture

__all__ = ["save_trace", "load_trace", "save_session", "load_session"]

_TRACE_VERSION = 1
_SESSION_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_trace(path: PathLike, trace: IMUTrace) -> None:
    """Persist a trace to a ``.npz`` archive.

    Args:
        path: Destination file (``.npz`` appended if missing).
        trace: The trace to save.
    """
    meta = {
        "version": _TRACE_VERSION,
        "sample_rate_hz": trace.sample_rate_hz,
        "start_time": trace.start_time,
    }
    np.savez_compressed(
        str(path),
        linear_acceleration=trace.linear_acceleration,
        meta=np.asarray(json.dumps(meta)),
    )


def load_trace(path: PathLike) -> IMUTrace:
    """Load a trace saved by :func:`save_trace`.

    Raises:
        SignalError: On a malformed or wrong-version archive.
    """
    with np.load(str(path), allow_pickle=False) as archive:
        if "meta" not in archive or "linear_acceleration" not in archive:
            raise SignalError(f"{path} is not a saved trace")
        meta = json.loads(str(archive["meta"]))
        if meta.get("version") != _TRACE_VERSION:
            raise SignalError(
                f"unsupported trace version {meta.get('version')} in {path}"
            )
        return IMUTrace(
            archive["linear_acceleration"],
            float(meta["sample_rate_hz"]),
            float(meta["start_time"]),
        )


def save_session(path: PathLike, session: LabeledSession) -> None:
    """Persist a labelled session (trace + ground truth segments).

    Args:
        path: Destination file.
        session: The session to save.
    """
    segments = [
        {
            "kind": seg.kind.value,
            "posture": seg.posture.value,
            "start_time": seg.start_time,
            "end_time": seg.end_time,
            "step_times": list(seg.step_times),
            "stride_lengths_m": list(seg.stride_lengths_m),
        }
        for seg in session.segments
    ]
    user = {
        "name": session.user.name,
        "arm_length_m": session.user.arm_length_m,
        "leg_length_m": session.user.leg_length_m,
        "shoulder_height_m": session.user.shoulder_height_m,
        "cadence_hz": session.user.cadence_hz,
        "stride_m": session.user.stride_m,
        "arm_swing_amplitude_rad": session.user.arm_swing_amplitude_rad,
        "arm_swing_forward_bias_rad": session.user.arm_swing_forward_bias_rad,
        "speed_ripple": session.user.speed_ripple,
        "lateral_sway_m": session.user.lateral_sway_m,
        "elbow_lag_s": session.user.elbow_lag_s,
        "arm_phase_lag": session.user.arm_phase_lag,
        "arm_second_harmonic_rad": session.user.arm_second_harmonic_rad,
        "arm_second_harmonic_phase": session.user.arm_second_harmonic_phase,
    }
    meta = {
        "version": _SESSION_VERSION,
        "sample_rate_hz": session.trace.sample_rate_hz,
        "start_time": session.trace.start_time,
        "segments": segments,
        "user": user,
    }
    np.savez_compressed(
        str(path),
        linear_acceleration=session.trace.linear_acceleration,
        meta=np.asarray(json.dumps(meta)),
    )


def load_session(path: PathLike) -> LabeledSession:
    """Load a session saved by :func:`save_session`.

    Raises:
        SignalError: On a malformed or wrong-version archive.
    """
    with np.load(str(path), allow_pickle=False) as archive:
        if "meta" not in archive or "linear_acceleration" not in archive:
            raise SignalError(f"{path} is not a saved session")
        meta = json.loads(str(archive["meta"]))
        if meta.get("version") != _SESSION_VERSION:
            raise SignalError(
                f"unsupported session version {meta.get('version')} in {path}"
            )
        if "segments" not in meta or "user" not in meta:
            raise SignalError(f"{path} is a plain trace, not a session")
        trace = IMUTrace(
            archive["linear_acceleration"],
            float(meta["sample_rate_hz"]),
            float(meta["start_time"]),
        )
    segments: List[ActivitySegment] = [
        ActivitySegment(
            kind=ActivityKind(record["kind"]),
            posture=Posture(record["posture"]),
            start_time=float(record["start_time"]),
            end_time=float(record["end_time"]),
            step_times=tuple(float(t) for t in record["step_times"]),
            stride_lengths_m=tuple(float(s) for s in record["stride_lengths_m"]),
        )
        for record in meta["segments"]
    ]
    user = SimulatedUser(**meta["user"])
    return LabeledSession(trace=trace, segments=tuple(segments), user=user)
