"""Wearable device front end.

Converts ideal simulated wrist kinematics into the trace an algorithm
receives from a real watch: noise, a residual attitude error (the
attitude filter on the device is good but not perfect, so "vertical"
leaks a little horizontal signal and vice versa) and the platform's
gravity removal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sensing.frames import rotation_from_euler, rotate_xyz
from repro.sensing.imu import IMUTrace
from repro.sensing.noise import NoiseModel

__all__ = ["WearableDevice"]


@dataclass(frozen=True)
class WearableDevice:
    """A smartwatch-class accelerometer pipeline.

    Attributes:
        sample_rate_hz: Output sampling rate (LG Urbane streams ~100 Hz).
        noise: Sensor impairment model.
        attitude_error_rad: Scale of the residual attitude error. Each
            observed trace draws small roll/pitch errors from a normal
            distribution with this standard deviation, representing the
            imperfection of the on-device attitude filter [25].
    """

    sample_rate_hz: float = 100.0
    noise: NoiseModel = field(default_factory=NoiseModel.consumer_wrist)
    attitude_error_rad: float = 0.01

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample_rate_hz must be positive, got {self.sample_rate_hz}"
            )
        if self.attitude_error_rad < 0:
            raise ConfigurationError(
                f"attitude_error_rad must be >= 0, got {self.attitude_error_rad}"
            )

    @staticmethod
    def ideal(sample_rate_hz: float = 100.0) -> "WearableDevice":
        """A perfect device: no noise, no attitude error."""
        return WearableDevice(sample_rate_hz, NoiseModel.ideal(), 0.0)

    def observe(
        self,
        true_acceleration: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        start_time: float = 0.0,
    ) -> IMUTrace:
        """Produce the trace the platform API would hand an app.

        Args:
            true_acceleration: Ideal world-frame linear acceleration of
                the device, shape (N, 3), sampled at ``sample_rate_hz``.
            rng: Random generator for noise/attitude draws. ``None``
                yields the noiseless (but attitude-error-free) path,
                used by deterministic unit tests.
            start_time: Timestamp of the first sample.

        Returns:
            The observed :class:`IMUTrace`.
        """
        arr = np.asarray(true_acceleration, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ConfigurationError(
                f"true_acceleration must have shape (N, 3), got {arr.shape}"
            )
        observed = arr
        if rng is not None:
            if self.attitude_error_rad > 0:
                roll, pitch = rng.normal(0.0, self.attitude_error_rad, size=2)
                tilt = rotation_from_euler(float(roll), float(pitch), 0.0)
                observed = rotate_xyz(observed, tilt)
            observed = self.noise.apply(observed, rng)
        return IMUTrace(observed, self.sample_rate_hz, start_time)
