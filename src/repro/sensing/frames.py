"""Coordinate-frame utilities.

The library works in a gravity-aligned world frame (x anterior at
heading 0, y lateral, z up). The simulator rotates walking kinematics
to arbitrary headings, and the device model can apply a small residual
attitude error representing imperfect attitude estimation on the watch.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["heading_rotation", "rotation_from_euler", "rotate_xyz"]


def heading_rotation(heading_rad: float) -> np.ndarray:
    """Rotation matrix about the vertical axis by ``heading_rad``.

    Heading 0 maps the local anterior axis onto world +x; positive
    headings rotate counter-clockwise when viewed from above.

    Returns:
        3x3 rotation matrix (world_from_local).
    """
    c, s = np.cos(heading_rad), np.sin(heading_rad)
    return np.array(
        [
            [c, -s, 0.0],
            [s, c, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )


def rotation_from_euler(
    roll_rad: float,
    pitch_rad: float,
    yaw_rad: float,
) -> np.ndarray:
    """Rotation matrix from intrinsic z-y-x (yaw, pitch, roll) Euler angles.

    Args:
        roll_rad: Rotation about the (final) x axis.
        pitch_rad: Rotation about the (intermediate) y axis.
        yaw_rad: Rotation about the (initial) z axis.

    Returns:
        3x3 rotation matrix composing ``Rz(yaw) @ Ry(pitch) @ Rx(roll)``.
    """
    cr, sr = np.cos(roll_rad), np.sin(roll_rad)
    cp, sp = np.cos(pitch_rad), np.sin(pitch_rad)
    cy, sy = np.cos(yaw_rad), np.sin(yaw_rad)
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]], dtype=float)
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]], dtype=float)
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]], dtype=float)
    return rz @ ry @ rx


def rotate_xyz(vectors: np.ndarray, rotation: np.ndarray) -> np.ndarray:
    """Apply a rotation matrix to an array of 3-vectors.

    Args:
        vectors: Array of shape (N, 3) or (3,).
        rotation: 3x3 rotation matrix.

    Returns:
        Rotated vectors with the input's shape.

    Raises:
        ConfigurationError: If ``rotation`` is not a proper 3x3 matrix.
    """
    rot = np.asarray(rotation, dtype=float)
    if rot.shape != (3, 3):
        raise ConfigurationError(f"rotation must be 3x3, got {rot.shape}")
    if not np.allclose(rot @ rot.T, np.eye(3), atol=1e-6):
        raise ConfigurationError("rotation matrix is not orthonormal")
    arr = np.asarray(vectors, dtype=float)
    if arr.ndim == 1:
        if arr.shape != (3,):
            raise ConfigurationError(f"vector must have shape (3,), got {arr.shape}")
        return rot @ arr
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ConfigurationError(f"vectors must have shape (N, 3), got {arr.shape}")
    return arr @ rot.T
