"""Sensing substrate: IMU traces, noise models, frames and devices.

The paper's platform is an LG Urbane smartwatch streaming accelerometer
data through attitude-aware motion APIs [25], which expose *linear*
(gravity-removed) acceleration in a gravity-aligned frame. This package
models that data path: trace containers, realistic sensor impairments,
frame conversions and a wearable-device front end that turns ideal
simulated kinematics into the samples an algorithm would actually see.
"""

from repro.sensing.attitude import (
    ComplementaryFilter,
    RawIMUTrace,
    recover_linear_acceleration,
)
from repro.sensing.device import WearableDevice
from repro.sensing.frames import (
    heading_rotation,
    rotate_xyz,
    rotation_from_euler,
)
from repro.sensing.imu import GRAVITY_M_S2, IMUTrace
from repro.sensing.io import load_session, load_trace, save_session, save_trace
from repro.sensing.noise import NoiseModel

__all__ = [
    "ComplementaryFilter",
    "GRAVITY_M_S2",
    "RawIMUTrace",
    "recover_linear_acceleration",
    "IMUTrace",
    "NoiseModel",
    "WearableDevice",
    "load_session",
    "load_trace",
    "save_session",
    "save_trace",
    "heading_rotation",
    "rotate_xyz",
    "rotation_from_euler",
]
