"""IMU trace container.

A :class:`IMUTrace` is the single currency between the simulator, the
sensing front end and every tracking algorithm in this library: a
uniformly sampled stream of world-frame linear acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from repro.exceptions import SignalError

__all__ = ["GRAVITY_M_S2", "IMUTrace"]

GRAVITY_M_S2: float = 9.80665
"""Standard gravity, used when converting raw to linear acceleration."""


@dataclass(frozen=True)
class IMUTrace:
    """A uniformly sampled world-frame linear-acceleration stream.

    Attributes:
        linear_acceleration: Array of shape (N, 3); columns are world
            (x, y, z) with z pointing up, gravity already removed —
            matching what platform motion APIs deliver [25].
        sample_rate_hz: Sampling rate in Hz.
        start_time: Timestamp of the first sample in seconds; segments
            cut from a longer trace keep absolute time.
    """

    linear_acceleration: np.ndarray
    sample_rate_hz: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        arr = np.asarray(self.linear_acceleration, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise SignalError(
                f"linear_acceleration must have shape (N, 3), got {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise SignalError("trace must contain at least one sample")
        if not np.all(np.isfinite(arr)):
            raise SignalError("linear_acceleration contains non-finite values")
        if self.sample_rate_hz <= 0:
            raise SignalError(
                f"sample_rate_hz must be positive, got {self.sample_rate_hz}"
            )
        # Freeze the payload: dataclass(frozen) protects the binding,
        # not the buffer, so make the buffer itself read-only.
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "linear_acceleration", arr)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of samples in the trace."""
        return int(self.linear_acceleration.shape[0])

    @property
    def dt(self) -> float:
        """Sample period in seconds."""
        return 1.0 / self.sample_rate_hz

    @property
    def duration_s(self) -> float:
        """Trace duration in seconds (n_samples / rate)."""
        return self.n_samples / self.sample_rate_hz

    @property
    def times(self) -> np.ndarray:
        """Timestamps of every sample, shape (N,)."""
        return self.start_time + np.arange(self.n_samples) / self.sample_rate_hz

    @property
    def vertical(self) -> np.ndarray:
        """Vertical (z, up-positive) acceleration, shape (N,)."""
        return self.linear_acceleration[:, 2]

    @property
    def horizontal(self) -> np.ndarray:
        """Horizontal acceleration, shape (N, 2)."""
        return self.linear_acceleration[:, :2]

    # ------------------------------------------------------------------
    # Slicing and joining
    # ------------------------------------------------------------------
    def slice_samples(self, start: int, end: int) -> "IMUTrace":
        """Sub-trace covering sample range ``[start, end)``.

        Raises:
            SignalError: If the range is empty or out of bounds.
        """
        if not (0 <= start < end <= self.n_samples):
            raise SignalError(
                f"invalid sample range [{start}, {end}) for {self.n_samples} samples"
            )
        return IMUTrace(
            self.linear_acceleration[start:end],
            self.sample_rate_hz,
            self.start_time + start / self.sample_rate_hz,
        )

    def slice_time(self, t0: float, t1: float) -> "IMUTrace":
        """Sub-trace covering absolute time range ``[t0, t1)``."""
        if t1 <= t0:
            raise SignalError(f"need t1 > t0, got [{t0}, {t1})")
        start = int(np.ceil((t0 - self.start_time) * self.sample_rate_hz))
        end = int(np.ceil((t1 - self.start_time) * self.sample_rate_hz))
        start = max(0, start)
        end = min(self.n_samples, end)
        if end <= start:
            raise SignalError(f"time range [{t0}, {t1}) selects no samples")
        return self.slice_samples(start, end)

    @staticmethod
    def concatenate(traces: Iterable["IMUTrace"]) -> "IMUTrace":
        """Join traces end to end.

        All traces must share the sampling rate; the result keeps the
        first trace's start time and re-times the rest contiguously
        (simulated sessions are stitched from activity segments, so
        original per-segment start times are intentionally dropped).

        Raises:
            SignalError: On an empty input or mismatched rates.
        """
        items: List[IMUTrace] = list(traces)
        if not items:
            raise SignalError("cannot concatenate zero traces")
        rate = items[0].sample_rate_hz
        for t in items[1:]:
            if abs(t.sample_rate_hz - rate) > 1e-9:
                raise SignalError(
                    f"sample-rate mismatch: {t.sample_rate_hz} != {rate}"
                )
        data = np.vstack([t.linear_acceleration for t in items])
        return IMUTrace(data, rate, items[0].start_time)

    def with_acceleration(self, linear_acceleration: np.ndarray) -> "IMUTrace":
        """Copy of this trace with replaced acceleration payload."""
        return IMUTrace(linear_acceleration, self.sample_rate_hz, self.start_time)

    def index_at_time(self, t: float) -> int:
        """Nearest sample index to absolute time ``t`` (clamped)."""
        idx = int(round((t - self.start_time) * self.sample_rate_hz))
        return min(max(idx, 0), self.n_samples - 1)
