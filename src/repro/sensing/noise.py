"""Accelerometer impairment models.

Wrist IMUs are not ideal sensors: per-axis white noise, a slowly
wandering bias and quantisation all corrupt the signal the algorithms
see. The model here is deliberately parametric so benchmarks can sweep
noise levels (the ablation experiments do exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Additive accelerometer impairments.

    Attributes:
        white_sigma: Standard deviation of i.i.d. Gaussian noise per
            axis, m/s^2. Typical consumer wrist IMUs: 0.02-0.1.
        bias_sigma: Standard deviation of the constant per-axis bias
            drawn once per trace, m/s^2.
        bias_walk_sigma: Per-sample standard deviation of a random-walk
            bias component, m/s^2/sqrt(sample). Models thermal drift.
        quantization_step: LSB size of the ADC in m/s^2; 0 disables
            quantisation.
    """

    white_sigma: float = 0.03
    bias_sigma: float = 0.01
    bias_walk_sigma: float = 0.0
    quantization_step: float = 0.0

    def __post_init__(self) -> None:
        for name in ("white_sigma", "bias_sigma", "bias_walk_sigma", "quantization_step"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

    @staticmethod
    def ideal() -> "NoiseModel":
        """A noiseless model, for algorithm-correctness tests."""
        return NoiseModel(0.0, 0.0, 0.0, 0.0)

    @staticmethod
    def consumer_wrist() -> "NoiseModel":
        """Default model matching a consumer smartwatch accelerometer."""
        return NoiseModel(white_sigma=0.04, bias_sigma=0.015, bias_walk_sigma=0.0005)

    def apply(self, acceleration: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Corrupt ideal acceleration with this model's impairments.

        Args:
            acceleration: Array of shape (N, 3), ideal kinematics.
            rng: Random generator; the caller owns seeding so whole
                simulated sessions are reproducible.

        Returns:
            New array of the same shape with noise applied.
        """
        arr = np.asarray(acceleration, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ConfigurationError(
                f"acceleration must have shape (N, 3), got {arr.shape}"
            )
        out = arr.copy()
        n = arr.shape[0]
        if self.bias_sigma > 0:
            out += rng.normal(0.0, self.bias_sigma, size=(1, 3))
        if self.bias_walk_sigma > 0:
            steps = rng.normal(0.0, self.bias_walk_sigma, size=(n, 3))
            out += np.cumsum(steps, axis=0)
        if self.white_sigma > 0:
            out += rng.normal(0.0, self.white_sigma, size=(n, 3))
        if self.quantization_step > 0:
            out = np.round(out / self.quantization_step) * self.quantization_step
        return out
