"""Tracking-quality metrics.

Definitions follow the paper's usage:

* step-count **accuracy** = ``1 - |counted - true| / true`` (clipped to
  [0, 1]), the quantity Fig. 6(a) reports per gait category;
* step-count **error rate** = ``|counted - true| / true`` (the paper's
  headline "error rate as low as 0.02");
* **stride error** = per-step ``|estimated - true|``; Figs. 1(d) and 8
  report its CDF and mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import SignalError

__all__ = [
    "count_accuracy",
    "count_error_rate",
    "stride_errors",
    "cdf_points",
    "summarize",
]


def count_accuracy(counted: int, true: int) -> float:
    """Step-count accuracy in [0, 1].

    Args:
        counted: Steps the tracker reported.
        true: Ground-truth steps; must be positive (an interference
            trace has no meaningful accuracy — use the raw mis-count).

    Returns:
        ``max(0, 1 - |counted - true| / true)``.
    """
    if true <= 0:
        raise SignalError(f"true step count must be positive, got {true}")
    return max(0.0, 1.0 - abs(counted - true) / true)


def count_error_rate(counted: int, true: int) -> float:
    """Step-count error rate ``|counted - true| / true``."""
    if true <= 0:
        raise SignalError(f"true step count must be positive, got {true}")
    return abs(counted - true) / true


def stride_errors(
    estimated: Sequence[float],
    true: Sequence[float],
) -> np.ndarray:
    """Per-step absolute stride errors, aligning by order.

    The two sequences may have different lengths (missed or spurious
    steps); errors are computed over the overlapping prefix after
    sorting both by time order, which matches how the paper reports
    per-step errors against assisted ground truth.

    Args:
        estimated: Estimated stride lengths in time order, metres.
        true: Ground-truth stride lengths in time order, metres.

    Returns:
        Array of ``min(len(estimated), len(true))`` absolute errors.
    """
    est = np.asarray(list(estimated), dtype=float)
    tru = np.asarray(list(true), dtype=float)
    n = min(est.size, tru.size)
    if n == 0:
        return np.empty(0)
    return np.abs(est[:n] - tru[:n])


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample.

    Args:
        values: Sample values.

    Returns:
        Tuple ``(sorted_values, cumulative_probabilities)``.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        return np.empty(0), np.empty(0)
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    Attributes:
        mean: Sample mean.
        median: Sample median.
        p90: 90th percentile.
        maximum: Sample maximum.
        n: Sample size.
    """

    mean: float
    median: float
    p90: float
    maximum: float
    n: int


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample (NaNs rejected).

    Raises:
        SignalError: For an empty or non-finite sample.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise SignalError("cannot summarize an empty sample")
    if not np.all(np.isfinite(arr)):
        raise SignalError("sample contains non-finite values")
    return Summary(
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        maximum=float(arr.max()),
        n=int(arr.size),
    )
