"""Terminal plotting: sparklines and block histograms.

The repository is terminal-first (no matplotlib dependency); these
helpers give the CLI and examples just enough visual output to show a
trace's character or a distribution's shape inline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import SignalError

__all__ = ["sparkline", "histogram", "timeline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a sample as a one-line unicode sparkline.

    Args:
        values: Sample values; resampled (by bucket means) to ``width``.
        width: Output width in characters.

    Returns:
        The sparkline string.

    Raises:
        SignalError: On an empty sample or bad width.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise SignalError("cannot sparkline an empty sample")
    if width < 1:
        raise SignalError(f"width must be >= 1, got {width}")
    if not np.all(np.isfinite(arr)):
        raise SignalError("sample contains non-finite values")
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() if b > a else arr[min(a, arr.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _BLOCKS[1] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    label: str = "",
) -> str:
    """Render a horizontal block histogram.

    Args:
        values: Sample values.
        bins: Number of bins.
        width: Maximum bar width in characters.
        label: Optional title line.

    Returns:
        Multi-line histogram text.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise SignalError("cannot histogram an empty sample")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [label] if label else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(width * count / peak))
        lines.append(f"{lo:10.4f} – {hi:10.4f} |{bar} {count}")
    return "\n".join(lines)


def timeline(
    values: Sequence[float],
    sample_rate_hz: float,
    width: int = 60,
    label: str = "",
    unit: str = "",
) -> str:
    """A sparkline with a time axis annotation.

    Args:
        values: Uniformly sampled signal.
        sample_rate_hz: Its sampling rate.
        width: Sparkline width.
        label: Optional prefix label.
        unit: Unit string for the min/max annotation.

    Returns:
        One line: ``label [sparkline] min..max unit over T s``.
    """
    arr = np.asarray(list(values), dtype=float)
    if sample_rate_hz <= 0:
        raise SignalError("sample_rate_hz must be positive")
    spark = sparkline(arr, width)
    duration = arr.size / sample_rate_hz
    prefix = f"{label} " if label else ""
    return (
        f"{prefix}{spark}  {arr.min():.2f}..{arr.max():.2f} {unit}"
        f" over {duration:.0f} s"
    )
