"""Experiment-running utilities.

The figure drivers in :mod:`repro.experiments` are single runs with
fixed seeds; this module adds the machinery for *studies around* them:
repeating a measurement across seeds, aggregating the replicates, and
exporting empirical CDFs in a plain-text format (the paper reports
Figs. 1(d) and 8 as CDFs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.metrics import cdf_points
from repro.exceptions import SignalError
from repro.runtime import TraceCache, content_key, parallel_map

__all__ = ["Replicates", "repeat", "format_cdf", "compare_cdfs"]


@dataclass(frozen=True)
class Replicates:
    """Aggregated replicate measurements of one scalar metric.

    Attributes:
        name: Metric name.
        values: One value per replicate, in seed order.
    """

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SignalError(f"metric {self.name!r} has no replicates")

    @property
    def mean(self) -> float:
        """Replicate mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Replicate standard deviation."""
        return float(np.std(self.values))

    @property
    def minimum(self) -> float:
        """Smallest replicate."""
        return float(np.min(self.values))

    @property
    def maximum(self) -> float:
        """Largest replicate."""
        return float(np.max(self.values))

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval of the mean."""
        half = z * self.std / np.sqrt(len(self.values))
        return self.mean - half, self.mean + half


def repeat(
    measure: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
    workers: Optional[int] = None,
    cache: Optional[TraceCache] = None,
    cache_key: Optional[str] = None,
) -> Dict[str, Replicates]:
    """Run a seeded measurement across seeds and aggregate per metric.

    The measurement must be a pure function of its seed: replicates may
    then be computed in any order (worker processes) or not at all
    (cache hits) without changing the aggregate. Cache lookups happen in
    the parent so worker processes only ever run real misses.

    Args:
        measure: Callable mapping a seed to a dict of scalar metrics;
            every replicate must produce the same metric names. Must be
            picklable (module-level) when ``workers`` enables processes.
        seeds: Seeds to run (one replicate each).
        workers: Worker processes for the replicate misses; ``None``
            reads ``REPRO_WORKERS`` (default serial), ``0`` means all
            cores.
        cache: Optional replicate cache; per-seed metric dicts are
            memoized under ``(cache_key, seed)``.
        cache_key: Content key identifying the measurement (include
            everything the metrics depend on besides the seed).
            Required when ``cache`` is given.

    Returns:
        Mapping from metric name to its :class:`Replicates`.

    Raises:
        SignalError: On empty seeds, inconsistent metric names, or a
            cache without a cache key.
    """
    if not seeds:
        raise SignalError("need at least one seed")
    if cache is not None and cache_key is None:
        raise SignalError("cache_key is required when a cache is given")
    seed_list = [int(seed) for seed in seeds]

    results: Dict[int, Dict[str, float]] = {}
    missing: List[int] = []
    if cache is not None:
        keys = [content_key("repeat", cache_key, seed) for seed in seed_list]
        for pos, key in enumerate(keys):
            hit = cache.get(key)
            if hit is None:
                missing.append(pos)
            else:
                results[pos] = hit
    else:
        missing = list(range(len(seed_list)))

    fresh = parallel_map(measure, [seed_list[pos] for pos in missing], workers=workers)
    for pos, metrics in zip(missing, fresh):
        results[pos] = {name: float(value) for name, value in metrics.items()}
        if cache is not None:
            cache.put(keys[pos], results[pos])

    collected: Dict[str, List[float]] = {}
    names: set = set()
    for i, seed in enumerate(seed_list):
        metrics = results[i]
        if i == 0:
            names = set(metrics)
            for name in names:
                collected[name] = []
        elif set(metrics) != names:
            raise SignalError(
                f"replicate for seed {seed} produced metrics {sorted(metrics)}, "
                f"expected {sorted(names)}"
            )
        for name, value in metrics.items():
            collected[name].append(float(value))
    return {
        name: Replicates(name, tuple(values)) for name, values in collected.items()
    }


def format_cdf(
    values: Sequence[float],
    name: str = "metric",
    points: int = 20,
) -> str:
    """Render an empirical CDF as an aligned text table.

    Args:
        values: Sample values.
        name: Column label of the value axis.
        points: Number of CDF rows (evenly spaced in probability).

    Returns:
        The table text ("value  P(X <= value)" rows).

    Raises:
        SignalError: On an empty sample.
    """
    xs, ps = cdf_points(values)
    if xs.size == 0:
        raise SignalError("cannot render the CDF of an empty sample")
    rows = [f"{name:>12}  cdf"]
    rows.append("-" * len(rows[0]))
    targets = np.linspace(1.0 / points, 1.0, points)
    for p in targets:
        idx = int(np.searchsorted(ps, p, side="left"))
        idx = min(idx, xs.size - 1)
        rows.append(f"{xs[idx]:12.4f}  {p:.2f}")
    return "\n".join(rows)


def compare_cdfs(
    samples: Dict[str, Sequence[float]],
    quantiles: Sequence[float] = (0.5, 0.9, 0.99),
) -> List[Tuple[str, Dict[float, float]]]:
    """Quantile comparison across named samples (CDF crossover view).

    Args:
        samples: Mapping of system name to its sample.
        quantiles: Quantiles to evaluate.

    Returns:
        List of ``(name, {quantile: value})``, sorted by the median so
        the winner reads first.
    """
    out = []
    for name, values in samples.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise SignalError(f"sample {name!r} is empty")
        out.append(
            (name, {float(q): float(np.quantile(arr, q)) for q in quantiles})
        )
    median_q = 0.5 if 0.5 in [round(q, 10) for q in quantiles] else quantiles[0]
    out.sort(key=lambda item: item[1][float(median_q)])
    return out
