"""Plain-text tabular reporting for experiment drivers.

Every benchmark prints a paper-vs-measured table through these helpers
so the regenerated rows are directly comparable to the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

__all__ = ["Table", "format_table"]

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
) -> str:
    """Format rows into an aligned monospace table.

    Args:
        headers: Column headers.
        rows: Row cells; each row must match the header width.
        title: Optional title line printed above the table.

    Returns:
        The formatted table as one string.
    """
    rendered = [[_render(c) for c in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[j])), *(len(r[j]) for r in rendered)) if rendered else len(str(headers[j]))
        for j in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[j].ljust(widths[j]) for j in range(len(headers))))
    return "\n".join(lines)


@dataclass
class Table:
    """Accumulating table builder used by experiment drivers.

    Attributes:
        title: Table title.
        headers: Column headers.
    """

    title: str
    headers: Sequence[str]
    _rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> "Table":
        """Append one row (chainable)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self._rows.append(list(cells))
        return self

    @property
    def rows(self) -> List[List[Cell]]:
        """The accumulated rows."""
        return [list(r) for r in self._rows]

    def render(self) -> str:
        """Format the accumulated table."""
        return format_table(self.headers, self._rows, self.title)

    def show(self) -> None:
        """Print the table (benchmarks call this)."""
        print()
        print(self.render())
