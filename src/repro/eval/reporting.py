"""Plain-text tabular reporting for experiment drivers.

Every benchmark prints a paper-vs-measured table through these helpers
so the regenerated rows are directly comparable to the figures, and
:func:`fleet_health_table` renders a telemetry snapshot (see
:mod:`repro.telemetry`) as the same kind of aligned table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Union

__all__ = ["Table", "format_table", "fleet_health_table"]

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
) -> str:
    """Format rows into an aligned monospace table.

    Args:
        headers: Column headers.
        rows: Row cells; each row must match the header width.
        title: Optional title line printed above the table.

    Returns:
        The formatted table as one string.
    """
    rendered = [[_render(c) for c in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[j])), *(len(r[j]) for r in rendered)) if rendered else len(str(headers[j]))
        for j in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[j].ljust(widths[j]) for j in range(len(headers))))
    return "\n".join(lines)


@dataclass
class Table:
    """Accumulating table builder used by experiment drivers.

    Attributes:
        title: Table title.
        headers: Column headers.
    """

    title: str
    headers: Sequence[str]
    _rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> "Table":
        """Append one row (chainable)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self._rows.append(list(cells))
        return self

    @property
    def rows(self) -> List[List[Cell]]:
        """The accumulated rows."""
        return [list(r) for r in self._rows]

    def render(self) -> str:
        """Format the accumulated table."""
        return format_table(self.headers, self._rows, self.title)

    def show(self) -> None:
        """Print the table (benchmarks call this)."""
        print()
        print(self.render())


def _snapshot_quantile(hist: Dict[str, Any], q: float) -> float:
    """Approximate quantile from a snapshot histogram's bucket counts.

    Linear interpolation inside the bucket holding the q-th
    observation; the open +Inf bucket reports its lower edge (the last
    finite boundary), which understates but never invents latency.
    """
    buckets = list(hist.get("buckets") or ())
    counts = list(hist.get("counts") or ())
    total = int(hist.get("count", 0))
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for i, c in enumerate(counts):
        if seen + c >= rank and c > 0:
            lo = buckets[i - 1] if i > 0 else 0.0
            if i >= len(buckets):  # the open +Inf bucket
                return float(buckets[-1]) if buckets else lo
            frac = (rank - seen) / c
            return float(lo + (buckets[i] - lo) * frac)
        seen += c
    return float(buckets[-1]) if buckets else 0.0


def fleet_health_table(
    snapshot: Dict[str, Any], title: str = "fleet health"
) -> Table:
    """Render a telemetry snapshot as an aligned health table.

    One row per metric, sorted by name within kind (counters, then
    gauges, then histograms). Histogram rows report the observation
    count as the value and approximate p50/p95 plus the mean in the
    detail column.

    Snapshots from different drivers carry different series mixes (the
    batched pool emits ``serving_batch_*`` where the lockstep pool
    emits per-session series), so a merged or hand-assembled snapshot
    may list a histogram name whose series data is absent (``None``)
    or partial (no bucket layout). Such rows render as ``absent`` /
    count-only instead of raising.

    Args:
        snapshot: A :meth:`repro.telemetry.MetricsRegistry.snapshot`
            dict (or a merge of several).
        title: Table title.

    Returns:
        A :class:`Table` ready to ``render()`` or ``show()``.
    """
    table = Table(title=title, headers=["metric", "kind", "value", "detail"])
    for name in sorted(snapshot.get("counters", {})):
        table.add_row(name, "counter", snapshot["counters"][name], "")
    for name in sorted(snapshot.get("gauges", {})):
        table.add_row(name, "gauge", snapshot["gauges"][name], "")
    for name in sorted(snapshot.get("histograms") or {}):
        hist = snapshot["histograms"][name]
        if hist is None:
            table.add_row(name, "histogram", 0, "absent")
            continue
        count = int(hist.get("count", 0))
        if not count:
            detail = "no observations"
        elif not hist.get("buckets"):
            # Series shipped without a bucket layout: the count and
            # mean are still well defined, the quantiles are not.
            detail = f"mean={hist.get('sum', 0.0) / count:.6f}"
        else:
            detail = (
                f"p50={_snapshot_quantile(hist, 0.5):.6f} "
                f"p95={_snapshot_quantile(hist, 0.95):.6f} "
                f"mean={hist.get('sum', 0.0) / count:.6f}"
            )
        table.add_row(name, "histogram", count, detail)
    return table
