"""Evaluation utilities: metrics, and tabular reporting helpers.

The experiment drivers in :mod:`repro.experiments` use these to turn
raw tracking output into the numbers the paper's figures report
(accuracies, mis-counts, stride-error CDFs) and to print them in
paper-vs-measured tables.
"""

from repro.eval.harness import Replicates, compare_cdfs, format_cdf, repeat
from repro.eval.plotting import histogram, sparkline, timeline
from repro.eval.metrics import (
    cdf_points,
    count_accuracy,
    count_error_rate,
    stride_errors,
    summarize,
)
from repro.eval.reporting import Table, format_table

__all__ = [
    "Replicates",
    "Table",
    "compare_cdfs",
    "cdf_points",
    "count_accuracy",
    "count_error_rate",
    "format_cdf",
    "format_table",
    "histogram",
    "repeat",
    "sparkline",
    "timeline",
    "stride_errors",
    "summarize",
]
