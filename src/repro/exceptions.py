"""Exception hierarchy for the PTrack reproduction library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent.

    Raised eagerly at construction time (e.g. a non-positive sampling
    rate, a filter cutoff above Nyquist) so that misconfiguration never
    surfaces as a cryptic numerical failure deep inside a pipeline.
    """


class SignalError(ReproError):
    """An input signal does not satisfy a processing precondition.

    Examples: an empty trace handed to the segmenter, mismatched axis
    lengths, or a segment too short to contain a single gait cycle.
    """


class IntegrationError(SignalError):
    """Mean-removal double integration was applied to an invalid segment.

    The technique of Wang et al. (MOLE, MobiCom'15) requires segments
    that start and end at zero velocity; violating callers get this
    error rather than silently wrong displacement values.
    """


class CalibrationError(ReproError):
    """Self-training or manual calibration could not produce a profile.

    Raised when the search space is empty, the observations are
    insufficient (e.g. fewer gait cycles than required), or no candidate
    satisfies the geometric constraints of Eqs. (3)-(5).
    """


class GeometryError(ReproError):
    """A biomechanical geometric relation cannot be satisfied.

    For instance a bounce solve where the measured anterior distance
    exceeds what any bounce value could explain given the arm length, or
    a stride solve where the bounce exceeds the leg length.
    """


class ProfileConflictError(ReproError):
    """A compare-and-swap profile write lost the race.

    Raised by :meth:`repro.profiles.ProfileStore.put` when the caller's
    ``expected_version`` no longer matches the stored record — another
    writer committed first. The caller should re-read, merge, and retry
    rather than overwrite the concurrent update.
    """


class SimulationError(ReproError):
    """The trace simulator was asked for an impossible scenario.

    Examples: a negative duration, a stride longer than twice the leg
    length, or a route with fewer than two waypoints.
    """


class TrainingError(ReproError):
    """A learned baseline (e.g. SCAR) was used before or beyond training.

    Raised when predicting with an unfitted classifier or fitting with
    inconsistent feature/label shapes.
    """
