"""Composable, deterministically seeded fault injectors.

Real wrists are not lab rigs: BLE uploads drop whole spans of samples,
IMUs clip at their full-scale range, firmware hiccups produce NaN
bursts, retransmissions duplicate or reorder upload batches, and cheap
oscillators jitter the sampling clock. Each defect is modelled by one
small injector; a list of injectors composes into a fault scenario.

Determinism is the organising rule, inherited from
:func:`repro.runtime.parallel.derive_rng`: every injector draws from a
generator derived from ``(seed, index, position)``, so the faulted
trace of session ``index`` is a pure function of the fault scenario
and ``(seed, index)`` — identical whether the sweep runs serially, in
a process pool, or is re-run next week (the property tests assert
this).

Three fault surfaces:

* **trace faults** (``apply_trace``) corrupt the sample array itself —
  dropout, outages, NaN bursts, saturation, clock jitter. Missing
  samples are marked with NaN rows; the degraded-mode ingest of
  :class:`repro.core.StreamingPTrack` quarantines and repairs them
  under a :class:`repro.faults.FaultPolicy`.
* **batch faults** (``apply_batches``) corrupt the upload stream —
  duplicated and out-of-order batches — after the trace is split into
  device uploads.
* **schedule faults** (``apply_schedule``) corrupt upload *timing* —
  stalled producers that release their backlog in one pile-up
  (:class:`StalledProducer`), and floods that pull future uploads
  forward into one tick (:class:`MailboxFlood`). They move arrival
  events between scheduler ticks without ever touching sample values,
  which is exactly the traffic the ingest gateway's bounded mailboxes
  and load-shedding must absorb
  (:func:`inject_schedule_faults` rebuilds a faulted
  :class:`~repro.serving.workload.ArrivalSchedule`).

Two further surfaces target the durable fleet itself rather than its
traffic:

* **shard faults** (``apply_shard``) kill serving *processes* —
  :class:`ShardCrash` decides per ``(shard, epoch, attempt)`` whether
  a worker dies mid-epoch (by exception or SIGKILL) and at what point
  in the epoch, which is what the checkpoint/restore recovery of
  :func:`repro.serving.serve_fleet` must absorb with zero credit loss;
* **blob faults** (``apply_blob``) corrupt durable *bytes* —
  :class:`TornCheckpoint` truncates or scrambles a serialized
  checkpoint at write time, exercising the
  :class:`~repro.serving.CheckpointStore` quarantine path and the
  driver's re-ingest fallback.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime.parallel import derive_rng

__all__ = [
    "FaultInjector",
    "SampleDropout",
    "Outage",
    "NaNBurst",
    "Saturation",
    "RateJitter",
    "DuplicateBatches",
    "OutOfOrderBatches",
    "StalledProducer",
    "MailboxFlood",
    "ShardCrash",
    "TornCheckpoint",
    "inject_faults",
    "inject_batch_faults",
    "inject_schedule_faults",
    "plan_shard_crash",
    "derive_blob_rng",
    "split_batches",
    "faulted_stream",
]

#: Seeding domain separating fault streams from workload streams that
#: share the same ``(seed, index)`` coordinates.
_FAULT_DOMAIN = 0xFA17


class FaultInjector:
    """Base injector: identity on both fault surfaces.

    Subclasses override :meth:`apply_trace` (sample-level defects) or
    :meth:`apply_batches` (upload-stream defects); each receives a
    dedicated generator and must be a pure function of its inputs —
    never mutate the caller's arrays.
    """

    def apply_trace(
        self,
        samples: np.ndarray,
        rng: np.random.Generator,
        sample_rate_hz: float,
    ) -> np.ndarray:
        """Return a faulted copy of a (n, 3) trace (default: identity)."""
        return samples

    def apply_batches(
        self,
        batches: List[np.ndarray],
        rng: np.random.Generator,
    ) -> List[np.ndarray]:
        """Return a faulted upload sequence (default: identity)."""
        return batches

    def apply_schedule(
        self,
        events: List[Tuple[int, object]],
        rng: np.random.Generator,
    ) -> List[Tuple[int, object]]:
        """Return a re-timed ``(tick, event)`` list for one session.

        The events are one session's arrivals in arrival order
        (non-decreasing ticks); implementations may move events
        between ticks but must never drop, duplicate, or alter them —
        timing faults lose data only when a bounded mailbox downstream
        decides to shed (default: identity).
        """
        return events

    def apply_shard(
        self,
        shard_index: int,
        epoch: int,
        attempt: int,
        rng: np.random.Generator,
    ) -> Optional[Tuple[str, float]]:
        """Decide whether one shard's epoch dies, and how.

        Returns ``None`` (default: the shard lives) or a directive
        ``(mode, position)``: ``mode`` is ``"raise"`` (an exception
        escapes the worker) or ``"kill"`` (the worker process is
        SIGKILLed), and ``position`` in ``[0, 1)`` places the death
        within the epoch's serving ticks. ``attempt`` counts restore
        retries of the same epoch, so an injector can crash the first
        attempt and spare the retry.
        """
        return None

    def apply_blob(
        self,
        blob: bytes,
        rng: np.random.Generator,
    ) -> bytes:
        """Return a (possibly corrupted) copy of serialized durable
        state at write time (default: identity)."""
        return blob


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must be a probability in [0, 1], got {value!r}"
        )


def _check_span(name: str, lo: float, hi: float) -> None:
    if lo < 0 or hi < lo:
        raise ConfigurationError(
            f"{name} must satisfy 0 <= min <= max, got ({lo!r}, {hi!r})"
        )


@dataclass(frozen=True)
class SampleDropout(FaultInjector):
    """Independent per-sample dropout: each row is lost with ``prob``.

    Lost rows become NaN markers (all three axes), the wire format the
    degraded-mode ingest quarantines. Scattered single-sample losses
    are the cheap-BLE steady state; they are almost always repairable.
    """

    prob: float = 0.05

    def __post_init__(self) -> None:
        _check_prob("prob", self.prob)

    def apply_trace(
        self,
        samples: np.ndarray,
        rng: np.random.Generator,
        sample_rate_hz: float,
    ) -> np.ndarray:
        out = samples.copy()
        lost = rng.random(out.shape[0]) < self.prob
        out[lost] = np.nan
        return out


@dataclass(frozen=True)
class Outage(FaultInjector):
    """Contiguous upload outages: whole spans of samples lost.

    ``rate_per_min`` outages (Poisson) of uniform length between
    ``min_gap_s`` and ``max_gap_s`` are cut from the trace as NaN
    runs. Outages longer than the repair bound exercise the gap-reset
    path: segmentation state must not fuse the signal across them.
    """

    rate_per_min: float = 1.0
    min_gap_s: float = 0.5
    max_gap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_per_min < 0:
            raise ConfigurationError(
                f"rate_per_min must be >= 0, got {self.rate_per_min!r}"
            )
        _check_span("gap span", self.min_gap_s, self.max_gap_s)

    def apply_trace(
        self,
        samples: np.ndarray,
        rng: np.random.Generator,
        sample_rate_hz: float,
    ) -> np.ndarray:
        n = samples.shape[0]
        out = samples.copy()
        duration_min = n / sample_rate_hz / 60.0
        n_gaps = int(rng.poisson(self.rate_per_min * duration_min))
        lo = max(1, int(round(self.min_gap_s * sample_rate_hz)))
        hi = max(lo, int(round(self.max_gap_s * sample_rate_hz)))
        for _ in range(n_gaps):
            length = int(rng.integers(lo, hi + 1))
            start = int(rng.integers(0, max(1, n - length + 1)))
            out[start : start + length] = np.nan
        return out


@dataclass(frozen=True)
class NaNBurst(FaultInjector):
    """Short NaN bursts on a random axis subset (firmware glitches).

    Unlike dropout, a burst may corrupt a single axis while the others
    read fine — the degraded ingest must still quarantine the whole
    sample (a gait cycle with one fabricated axis is worse than a
    repaired one).
    """

    rate_per_min: float = 2.0
    min_burst_s: float = 0.02
    max_burst_s: float = 0.1

    def __post_init__(self) -> None:
        if self.rate_per_min < 0:
            raise ConfigurationError(
                f"rate_per_min must be >= 0, got {self.rate_per_min!r}"
            )
        _check_span("burst span", self.min_burst_s, self.max_burst_s)

    def apply_trace(
        self,
        samples: np.ndarray,
        rng: np.random.Generator,
        sample_rate_hz: float,
    ) -> np.ndarray:
        n = samples.shape[0]
        out = samples.copy()
        duration_min = n / sample_rate_hz / 60.0
        n_bursts = int(rng.poisson(self.rate_per_min * duration_min))
        lo = max(1, int(round(self.min_burst_s * sample_rate_hz)))
        hi = max(lo, int(round(self.max_burst_s * sample_rate_hz)))
        for _ in range(n_bursts):
            length = int(rng.integers(lo, hi + 1))
            start = int(rng.integers(0, max(1, n - length + 1)))
            axes = rng.random(3) < 0.5
            if not axes.any():
                axes[int(rng.integers(0, 3))] = True
            out[start : start + length, axes] = np.nan
        return out


@dataclass(frozen=True)
class Saturation(FaultInjector):
    """Full-scale clipping: readings are hard-limited to ``±limit``.

    Severity is the limit itself (m/s^2): the lower it is, the more of
    the gait waveform is flattened. Clipped readings sit exactly at the
    rail, which is how a :class:`~repro.faults.FaultPolicy` with
    ``saturation_limit <= limit`` recognises and quarantines them.
    """

    limit: float = 20.0

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ConfigurationError(
                f"limit must be positive (m/s^2), got {self.limit!r}"
            )

    def apply_trace(
        self,
        samples: np.ndarray,
        rng: np.random.Generator,
        sample_rate_hz: float,
    ) -> np.ndarray:
        return np.clip(samples, -self.limit, self.limit)


@dataclass(frozen=True)
class RateJitter(FaultInjector):
    """Sampling-clock jitter: intervals vary by a ``sigma`` fraction.

    The device stamps samples as uniform while the oscillator actually
    drifted, so the reconstructed uniform stream carries a warped
    waveform. Modelled by resampling the trace at jittered instants;
    the output keeps the nominal length and rate.
    """

    sigma: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.sigma < 0.5:
            raise ConfigurationError(
                f"sigma must be in [0, 0.5) (interval fraction), got "
                f"{self.sigma!r}"
            )

    def apply_trace(
        self,
        samples: np.ndarray,
        rng: np.random.Generator,
        sample_rate_hz: float,
    ) -> np.ndarray:
        n = samples.shape[0]
        if n < 2 or self.sigma == 0.0:
            return samples.copy()
        intervals = 1.0 + self.sigma * rng.standard_normal(n - 1)
        np.clip(intervals, 0.25, 4.0, out=intervals)
        t = np.concatenate(([0.0], np.cumsum(intervals)))
        t *= (n - 1) / t[-1]  # keep the nominal span: pure jitter
        grid = np.arange(n, dtype=np.float64)
        out = np.empty_like(samples)
        for axis in range(samples.shape[1]):
            out[:, axis] = np.interp(grid, t, samples[:, axis])
        return out


@dataclass(frozen=True)
class DuplicateBatches(FaultInjector):
    """Upload retransmission: each batch is delivered twice with ``prob``."""

    prob: float = 0.05

    def __post_init__(self) -> None:
        _check_prob("prob", self.prob)

    def apply_batches(
        self,
        batches: List[np.ndarray],
        rng: np.random.Generator,
    ) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for batch in batches:
            out.append(batch)
            if rng.random() < self.prob:
                out.append(batch.copy())
        return out


@dataclass(frozen=True)
class OutOfOrderBatches(FaultInjector):
    """Reordered uploads: adjacent batches swap with ``prob``."""

    prob: float = 0.05

    def __post_init__(self) -> None:
        _check_prob("prob", self.prob)

    def apply_batches(
        self,
        batches: List[np.ndarray],
        rng: np.random.Generator,
    ) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        i = 0
        while i < len(batches):
            if i + 1 < len(batches) and rng.random() < self.prob:
                out.append(batches[i + 1])
                out.append(batches[i])
                i += 2
            else:
                out.append(batches[i])
                i += 1
        return out


@dataclass(frozen=True)
class StalledProducer(FaultInjector):
    """A producer that freezes, then releases its backlog in one pile-up.

    With ``stall_prob`` per upload tick, the device stops transmitting:
    every event it would have sent during the next ``stall_ticks``
    scheduler ticks is held and then delivered *all at once* when the
    stall clears. Later events are unaffected (they were scheduled
    after the recovery anyway). The pile-up is the canonical
    mailbox-pressure pattern: a burst of ``stall_ticks`` worth of
    signal hits a queue sized for steady arrival.
    """

    stall_prob: float = 0.1
    stall_ticks: int = 5

    def __post_init__(self) -> None:
        _check_prob("stall_prob", self.stall_prob)
        if self.stall_ticks < 1:
            raise ConfigurationError(
                f"stall_ticks must be >= 1, got {self.stall_ticks}"
            )

    def apply_schedule(
        self,
        events: List[Tuple[int, object]],
        rng: np.random.Generator,
    ) -> List[Tuple[int, object]]:
        out: List[Tuple[int, object]] = []
        release = -1  # end of the current stall window, if any
        last_tick = None
        for tick, event in events:
            if tick != last_tick and tick > release:
                # A fresh upload tick outside any stall: roll the dice.
                last_tick = tick
                if rng.random() < self.stall_prob:
                    release = tick + self.stall_ticks
            out.append((max(tick, release) if tick <= release else tick,
                        event))
        return out


@dataclass(frozen=True)
class MailboxFlood(FaultInjector):
    """A device that uploads its near-future backlog in one flood.

    With ``flood_prob`` per upload tick, every event the session had
    scheduled within the next ``flood_span`` ticks arrives *now*,
    in one tick — the retry-storm/catch-up-sync pattern that overflows
    bounded mailboxes and exercises deterministic load shedding.
    """

    flood_prob: float = 0.1
    flood_span: int = 10

    def __post_init__(self) -> None:
        _check_prob("flood_prob", self.flood_prob)
        if self.flood_span < 1:
            raise ConfigurationError(
                f"flood_span must be >= 1, got {self.flood_span}"
            )

    def apply_schedule(
        self,
        events: List[Tuple[int, object]],
        rng: np.random.Generator,
    ) -> List[Tuple[int, object]]:
        out: List[Tuple[int, object]] = []
        flood_until = -1  # events originally in (flood_at, flood_until]
        flood_at = -1  # ...arrive at this tick instead
        last_tick = None
        for tick, event in events:
            if tick != last_tick and tick > flood_until:
                last_tick = tick
                if rng.random() < self.flood_prob:
                    flood_at = tick
                    flood_until = tick + self.flood_span
            out.append(
                (flood_at if flood_at <= tick <= flood_until else tick,
                 event)
            )
        return out


def inject_schedule_faults(
    schedule,
    injectors: Sequence[FaultInjector],
    seed: int,
):
    """Apply the schedule-fault surface of each injector, in order.

    Session ``i``'s timing is perturbed with
    ``derive_rng(seed, i, domain, k)`` for injector ``k`` — the same
    pure-function-of-``(seed, index)`` contract as the other two
    surfaces, so a faulted schedule is reproducible across processes
    and runs. Events are only ever *re-timed*: the returned schedule
    delivers exactly the same batches, so any credit difference
    downstream is attributable to the gateway's own backpressure
    decisions, never to the injector.

    Args:
        schedule: An :class:`repro.serving.workload.ArrivalSchedule`.
        injectors: Fault scenario, applied left to right.
        seed: Sweep-level fault seed.

    Returns:
        A new ``ArrivalSchedule`` with re-timed events (``max_seq_skew``
        recomputed for the new arrival order).
    """
    from repro.serving.workload import ArrivalSchedule

    per_session: dict = {}
    for tick, tick_events in enumerate(schedule.events):
        for event in tick_events:
            per_session.setdefault(event.session, []).append((tick, event))
    ticks: dict = {}
    max_seq_skew = 0
    for i in sorted(per_session):
        events = per_session[i]
        for k, injector in enumerate(injectors):
            rng = derive_rng(seed, i, _FAULT_DOMAIN, k)
            events = injector.apply_schedule(events, rng)
        events = sorted(events, key=lambda te: (te[0], te[1].seq))
        frontier = 0
        for tick, event in events:
            max_seq_skew = max(max_seq_skew, event.seq - frontier)
            frontier = max(frontier, event.seq + 1)
            ticks.setdefault(tick, []).append(event)
    n_ticks = max(ticks) + 1 if ticks else 0
    return ArrivalSchedule(
        n_sessions=schedule.n_sessions,
        batch_samples=schedule.batch_samples,
        events=tuple(tuple(ticks.get(t, ())) for t in range(n_ticks)),
        disconnected=schedule.disconnected,
        max_seq_skew=max_seq_skew,
    )


def inject_faults(
    samples: np.ndarray,
    injectors: Sequence[FaultInjector],
    seed: int,
    index: int = 0,
    sample_rate_hz: float = 100.0,
) -> np.ndarray:
    """Apply the trace-fault surface of each injector, in order.

    Injector ``k`` draws from ``derive_rng(seed, index, domain, k)``,
    so the result is a pure function of ``(injectors, seed, index)``
    — independent of execution order across sessions or processes.

    Args:
        samples: Clean (n, 3) trace (never mutated).
        injectors: Fault scenario, applied left to right.
        seed: Sweep-level fault seed.
        index: Session/trial coordinate within the sweep.
        sample_rate_hz: Rate used to convert physical fault durations.

    Returns:
        The faulted trace (a new array; NaN rows mark lost samples).
    """
    out = np.asarray(samples, dtype=np.float64)
    for k, injector in enumerate(injectors):
        rng = derive_rng(seed, index, _FAULT_DOMAIN, k)
        out = injector.apply_trace(out, rng, sample_rate_hz)
    return out if out is not samples else out.copy()


def inject_batch_faults(
    batches: Sequence[np.ndarray],
    injectors: Sequence[FaultInjector],
    seed: int,
    index: int = 0,
) -> List[np.ndarray]:
    """Apply the batch-fault surface of each injector, in order.

    Seeding matches :func:`inject_faults` (injector ``k`` gets the
    same derived generator in either phase; each injector draws in
    exactly one phase, so composing both functions over one injector
    list stays deterministic).
    """
    out = list(batches)
    for k, injector in enumerate(injectors):
        rng = derive_rng(seed, index, _FAULT_DOMAIN, k)
        out = injector.apply_batches(out, rng)
    return out


def split_batches(samples: np.ndarray, batch_samples: int) -> List[np.ndarray]:
    """Split a trace into device-upload batches of ``batch_samples``."""
    if batch_samples < 1:
        raise ConfigurationError(
            f"batch_samples must be >= 1, got {batch_samples}"
        )
    return [
        samples[lo : lo + batch_samples]
        for lo in range(0, samples.shape[0], batch_samples)
    ]


def faulted_stream(
    samples: np.ndarray,
    injectors: Sequence[FaultInjector],
    seed: int,
    index: int = 0,
    sample_rate_hz: float = 100.0,
    batch_samples: int = 50,
) -> List[np.ndarray]:
    """The full wire simulation: trace faults, upload split, batch faults.

    Returns the upload sequence a degraded-mode session would actually
    receive from session ``index``'s device under this fault scenario.
    """
    faulted = inject_faults(
        samples, injectors, seed, index, sample_rate_hz=sample_rate_hz
    )
    batches = split_batches(faulted, batch_samples)
    return inject_batch_faults(batches, injectors, seed, index)


@dataclass(frozen=True)
class ShardCrash(FaultInjector):
    """Worker deaths mid-epoch: the rolling-restart fault.

    Each ``(shard, epoch)`` coordinate crashes with ``prob``; a crash
    lands at a uniform position within the epoch's serving ticks, so
    everything the worker did since the last checkpoint is lost and the
    durable fleet driver must restore and replay it. Restore *retries*
    of the same epoch crash with ``retry_prob`` instead (default 0: the
    first retry succeeds, modelling a transient death; raise it to
    exercise the bisection fallback behind the restore path).

    Attributes:
        prob: Crash probability per shard-epoch (first attempt).
        mode: ``"raise"`` (an exception escapes the worker — works on
            every platform and with in-process serving) or ``"kill"``
            (``SIGKILL`` to the worker — a true process death; only
            meaningful under fork-based process pools).
        retry_prob: Crash probability on restore retries.
    """

    prob: float = 0.1
    mode: str = "raise"
    retry_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_prob("prob", self.prob)
        _check_prob("retry_prob", self.retry_prob)
        if self.mode not in ("raise", "kill"):
            raise ConfigurationError(
                f"mode must be 'raise' or 'kill', got {self.mode!r}"
            )

    def apply_shard(
        self,
        shard_index: int,
        epoch: int,
        attempt: int,
        rng: np.random.Generator,
    ) -> Optional[Tuple[str, float]]:
        p = self.prob if attempt == 0 else self.retry_prob
        if rng.random() >= p:
            return None
        return self.mode, float(rng.random())


@dataclass(frozen=True)
class TornCheckpoint(FaultInjector):
    """Torn durable writes: checkpoint bytes truncated on disk.

    With ``prob`` per save, only a uniform fraction of the serialized
    blob (between ``min_keep_frac`` and ``max_keep_frac``) reaches
    disk — the classic torn-write/partial-flush failure. The
    :class:`repro.serving.CheckpointStore` must treat the remains as a
    miss (quarantine + counter), never as state to resume from.
    """

    prob: float = 0.5
    min_keep_frac: float = 0.05
    max_keep_frac: float = 0.9

    def __post_init__(self) -> None:
        _check_prob("prob", self.prob)
        if not 0.0 <= self.min_keep_frac <= self.max_keep_frac <= 1.0:
            raise ConfigurationError(
                "keep fraction must satisfy 0 <= min <= max <= 1, got "
                f"({self.min_keep_frac!r}, {self.max_keep_frac!r})"
            )

    def apply_blob(
        self,
        blob: bytes,
        rng: np.random.Generator,
    ) -> bytes:
        if rng.random() >= self.prob:
            return blob
        frac = rng.uniform(self.min_keep_frac, self.max_keep_frac)
        keep = max(1, int(len(blob) * frac))
        return blob[:keep]


def plan_shard_crash(
    injectors: Sequence[FaultInjector],
    seed: int,
    shard_index: int,
    epoch: int,
    attempt: int,
) -> Optional[Tuple[str, float]]:
    """The first shard-fault directive for one epoch attempt, if any.

    Injector ``k`` draws from a generator derived from
    ``(seed, shard_index, domain, k, epoch, attempt)`` — a pure
    function of the coordinates, so a crash schedule replays
    identically across runs and worker layouts, and a *retry* of the
    same epoch re-rolls rather than deterministically re-dying.
    """
    for k, injector in enumerate(injectors):
        rng = derive_rng(seed, shard_index, _FAULT_DOMAIN, k, epoch, attempt)
        directive = injector.apply_shard(shard_index, epoch, attempt, rng)
        if directive is not None:
            return directive
    return None


def derive_blob_rng(seed: int, name: str, version: int) -> np.random.Generator:
    """A generator for blob faults on one named durable write.

    The name (e.g. a checkpoint key like ``"shard-3"``) is folded to a
    stable integer coordinate so corruption is a pure function of
    ``(seed, name, version)`` — independent of save ordering across
    shards.
    """
    name_coord = zlib.crc32(name.encode("utf-8"))
    return derive_rng(seed, name_coord, _FAULT_DOMAIN, version)
