"""Fault model for real-world wearable deployments.

PTrack's pitch is *applicability* — tracking that survives the messy
reality of a wrist in the world. This package supplies the two halves
of that story for the serving stack:

* :mod:`repro.faults.injectors` — composable, ``derive_rng``-seeded
  fault injectors (sample dropout, upload outages, NaN bursts,
  saturation/clipping, clock jitter, duplicated and out-of-order
  batches, stalled producers, mailbox floods, shard crashes, torn
  checkpoint writes) that corrupt any trace, upload stream, arrival
  schedule, serving process, or durable blob deterministically under
  ``(seed, index)``;
* :mod:`repro.faults.policy` — the :class:`FaultPolicy` that switches
  :class:`repro.core.StreamingPTrack` into degraded-mode ingest:
  quarantine invalid samples, repair short defects, reset segmentation
  across unrecoverable gaps, and count it all in ``op_stats``.

See ``docs/robustness.md`` for the fault model and the degraded-mode
semantics end to end.
"""

from repro.faults.injectors import (
    DuplicateBatches,
    FaultInjector,
    MailboxFlood,
    NaNBurst,
    Outage,
    OutOfOrderBatches,
    RateJitter,
    SampleDropout,
    Saturation,
    ShardCrash,
    StalledProducer,
    TornCheckpoint,
    derive_blob_rng,
    faulted_stream,
    inject_batch_faults,
    inject_faults,
    inject_schedule_faults,
    plan_shard_crash,
    split_batches,
)
from repro.faults.policy import FaultPolicy

__all__ = [
    "DuplicateBatches",
    "FaultInjector",
    "FaultPolicy",
    "MailboxFlood",
    "NaNBurst",
    "Outage",
    "OutOfOrderBatches",
    "RateJitter",
    "SampleDropout",
    "Saturation",
    "ShardCrash",
    "StalledProducer",
    "TornCheckpoint",
    "derive_blob_rng",
    "faulted_stream",
    "inject_batch_faults",
    "inject_faults",
    "inject_schedule_faults",
    "plan_shard_crash",
    "split_batches",
]
