"""Degraded-mode repair policy for fault-tolerant ingest.

A :class:`FaultPolicy` is what turns strict ingest (reject any
defective batch) into *degraded-mode* ingest: it declares which samples
count as invalid (non-finite values, saturated/clipped readings) and
how much signal the stream is allowed to fabricate to bridge a short
defect before giving up and resetting segmentation state across the
gap. The policy is deliberately tiny and immutable — repair behaviour
must be a pure function of (policy, sample sequence) so that degraded
streams keep the chunking-invariance guarantee of the streaming core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["FaultPolicy"]

#: Repair strategies for short defects.
_REPAIR_MODES = ("linear", "hold")


@dataclass(frozen=True)
class FaultPolicy:
    """How a streaming session treats defective samples.

    Samples are *invalid* when any axis is non-finite (NaN/inf upload
    artefacts, dropped-sample markers) or at/above the saturation
    limit (a clipped IMU reading carries no usable waveform). A run of
    invalid samples no longer than ``max_repair_s`` is repaired —
    bridged with bounded interpolation between the surrounding good
    samples — while a longer run is an unrecoverable gap: the session
    settles what it can, resets its segmentation state, and resumes
    fresh after the gap instead of fusing disjoint signal into
    phantom gait cycles.

    Attributes:
        max_repair_s: Longest defect (seconds) that may be repaired.
            At most a fraction of one gait cycle; fabricating more
            signal than that invents steps. 0 disables repair (every
            defect is a gap).
        saturation_limit: Absolute acceleration (m/s^2) at or above
            which a reading is treated as clipped. Default 78.0
            (~8 g), the full-scale range of a consumer wrist IMU.
        repair: ``"linear"`` interpolates between the good samples
            bounding the defect; ``"hold"`` repeats the last good
            sample (first good sample for a defect at stream start).
    """

    max_repair_s: float = 0.25
    saturation_limit: float = 78.0
    repair: str = "linear"

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_repair_s <= 2.0:
            raise ConfigurationError(
                f"max_repair_s must be in [0, 2] seconds, got "
                f"{self.max_repair_s!r} (repairing more than a gait "
                "cycle fabricates steps)"
            )
        if self.saturation_limit <= 0.0:
            raise ConfigurationError(
                f"saturation_limit must be positive (m/s^2), got "
                f"{self.saturation_limit!r}"
            )
        if self.repair not in _REPAIR_MODES:
            raise ConfigurationError(
                f"repair must be one of {_REPAIR_MODES}, got "
                f"{self.repair!r}"
            )
