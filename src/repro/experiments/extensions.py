"""Extension experiments beyond the paper's figures.

Three studies of material this repository adds on top of the paper:

* **Design space of counters** — where each counting principle fails:
  naive peaks (gestures + spoofers), periodicity gating (gait-band
  spoofers), supervised classification (untrained patterns), PTrack's
  two-source test (none of the above).
* **Adaptive delta** (the paper's SV future work) — a user whose
  walking offsets sit below the stock threshold, rescued by Otsu
  adaptation over their own offset history.
* **Inertial navigation** — dead-reckoning with headings estimated
  from the accelerations themselves (no compass/gyro), vs the paper's
  platform-heading setting.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.deadreckoning import navigate_route
from repro.baselines.autocorr_counter import AutocorrelationStepCounter
from repro.baselines.peak_counter import PeakStepCounter
from repro.core.adaptive import AdaptiveDeltaCounter
from repro.core.config import PTrackConfig
from repro.core.pipeline import PTrack
from repro.core.step_counter import PTrackStepCounter
from repro.eval.reporting import Table
from repro.experiments.common import make_users, train_scar
from repro.simulation.activities import simulate_interference
from repro.simulation.routes import paper_route, walk_route
from repro.simulation.spoofer import SpooferParams, simulate_spoofer
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind

__all__ = [
    "run_adaptive_delta",
    "run_attitude_pipeline",
    "run_counter_design_space",
    "run_energy_tradeoff",
    "run_inertial_navigation",
]


def run_counter_design_space(
    duration_s: float = 60.0,
    seed: int = 89,
) -> Tuple[Dict[Tuple[str, str], float], Table]:
    """False/true steps of four counting principles on four workloads.

    Workloads: genuine walking, sparse gestures (eating), a slow
    spoofer (0.6 Hz drive) and a gait-band spoofer (1.6 Hz drive).

    Returns:
        Tuple of (counts per (counter, workload), rendered table).
    """
    rng = np.random.default_rng(seed)
    user = make_users(1, seed)[0]
    scar = train_scar(user, rng, duration_s=45.0)

    walk_trace, walk_truth = simulate_walk(user, duration_s, rng=rng)
    workloads = {
        "walking": walk_trace,
        "eating": simulate_interference(ActivityKind.EATING, duration_s, rng=rng),
        "slow spoofer": simulate_spoofer(
            duration_s, rng=rng, params=SpooferParams(rate_hz=0.6)
        ),
        "gait-band spoofer": simulate_spoofer(
            duration_s, rng=rng, params=SpooferParams(rate_hz=1.6)
        ),
    }
    counters = {
        "peaks": PeakStepCounter.gfit().count_steps,
        "periodicity": AutocorrelationStepCounter().count_steps,
        "supervised": scar.count_steps,
        "ptrack": PTrackStepCounter().count_steps,
    }
    counts: Dict[Tuple[str, str], float] = {}
    table = Table(
        "Counter design space: counted steps per %.0f s "
        "(walking truth: %d; every other workload's truth: 0)"
        % (duration_s, walk_truth.step_count),
        ["workload", "peaks", "periodicity", "supervised", "ptrack"],
    )
    for workload, trace in workloads.items():
        row: List = [workload]
        for counter, count in counters.items():
            value = count(trace)
            counts[(counter, workload)] = value
            row.append(value)
        table.add_row(*row)
    return counts, table


def run_adaptive_delta(
    seed: int = 97,
    n_sessions: int = 6,
) -> Tuple[Dict[str, float], Table]:
    """A sloppy-wristband user rescued by delta adaptation (SV future work).

    The subject wears the watch loosely, so the band's elastic lag
    (~90 ms, ten times the paper's elbow-cushioning estimate) smears
    every rigid gesture's critical points apart; their eating gestures
    leak past the stock delta = 0.0325. The adaptive counter watches
    the subject's own offset stream — gestures cluster around 0.02,
    walking around 0.06 — and Otsu re-fits the boundary between the
    modes, recovering the suppression without touching the walking
    accuracy.

    Returns:
        Tuple of (summary numbers, rendered table).
    """
    from repro.simulation.activities import _PRESETS, InterferenceParams

    subject = make_users(1, seed)[0]
    sloppy_eating = replace(
        _PRESETS[ActivityKind.EATING], cushioning_lag_s=0.09
    )
    rng = np.random.default_rng(seed + 1)

    fixed = PTrackStepCounter()
    adaptive = AdaptiveDeltaCounter()

    fixed_counted = adaptive_counted = true_total = 0
    for _ in range(n_sessions):
        walk, truth = simulate_walk(subject, 40.0, rng=rng)
        gestures = simulate_interference(
            ActivityKind.EATING, 60.0, rng=rng, params=sloppy_eating
        )
        true_total += truth.step_count
        fixed_counted += fixed.count_steps(walk) + fixed.count_steps(gestures)
        adaptive_counted += adaptive.count_steps(walk) + adaptive.count_steps(
            gestures
        )

    summary = {
        "true": float(true_total),
        "fixed": float(fixed_counted),
        "adaptive": float(adaptive_counted),
        "final_delta": adaptive.delta,
    }
    table = Table(
        "Adaptive delta (paper SV future work): loose-band subject over "
        "%d sessions" % n_sessions,
        ["counter", "counted", "true", "error rate"],
    )
    for name in ("fixed", "adaptive"):
        counted = summary[name]
        table.add_row(
            name, int(counted), true_total, abs(counted - true_total) / true_total
        )
    table.add_row("(final delta)", round(summary["final_delta"], 4), "-", "-")
    return summary, table


def run_inertial_navigation(
    seed: int = 61,
) -> Tuple[Dict[str, float], Table]:
    """Fig. 9's route with estimated instead of platform headings.

    Returns:
        Tuple of (per-mode errors, rendered table).
    """
    user = make_users(1, seed)[0]
    route = paper_route()
    results: Dict[str, float] = {}
    table = Table(
        "Dead-reckoning heading sources on the Fig. 9 route",
        ["heading source", "tracked (m)", "final error (m)", "mean error (m)"],
    )
    for source in ("platform", "inertial"):
        rng = np.random.default_rng(seed)
        trace, truth = walk_route(user, route, rng=rng)
        report = navigate_route(
            PTrack(profile=user.profile),
            trace,
            truth,
            route,
            heading_source=source,
            rng=rng,
        )
        results[f"{source}_final_m"] = report.final_error_m
        results[f"{source}_mean_m"] = report.mean_position_error_m
        table.add_row(
            source,
            report.tracked_distance_m,
            report.final_error_m,
            report.mean_position_error_m,
        )
    return results, table


def run_attitude_pipeline(
    seed: int = 101,
    duration_s: float = 45.0,
) -> Tuple[Dict[str, float], Table]:
    """The full [25] substrate: raw device stream vs oracle world frame.

    The paper's pipeline consumes "vertical accelerations ... directly
    acquired from motion sensor APIs". This experiment synthesises what
    the *hardware* outputs (device-frame specific force + gyro),
    recovers the world frame with the complementary attitude filter,
    and compares PTrack's accuracy against the oracle world-frame path
    across filter time constants.

    Returns:
        Tuple of (metrics, rendered table).
    """
    from repro.sensing.attitude import recover_linear_acceleration
    from repro.simulation.raw import simulate_walk_raw
    from repro.eval.metrics import count_accuracy

    user = make_users(1, seed)[0]
    results: Dict[str, float] = {}
    table = Table(
        "Attitude substrate: PTrack on oracle vs attitude-recovered traces",
        ["data path", "step accuracy", "stride error (cm)"],
    )

    def _score(trace, truth):
        tracker = PTrack(profile=user.profile)
        result = tracker.track(trace)
        accuracy = count_accuracy(result.step_count, truth.step_count)
        strides = np.array([s.length_m for s in result.strides])
        err = (
            100.0 * float(np.mean(np.abs(strides - user.stride_m)))
            if strides.size
            else float("nan")
        )
        return accuracy, err

    oracle_trace, oracle_truth = simulate_walk(
        user, duration_s, rng=np.random.default_rng(seed)
    )
    acc, err = _score(oracle_trace, oracle_truth)
    results["oracle_accuracy"] = acc
    results["oracle_stride_cm"] = err
    table.add_row("oracle world frame", acc, err)

    for tau in (0.5, 2.0, 8.0):
        raw, truth, _ = simulate_walk_raw(
            user, duration_s, rng=np.random.default_rng(seed)
        )
        trace = recover_linear_acceleration(raw, tau_s=tau)
        acc, err = _score(trace, truth)
        results[f"attitude_tau{tau}_accuracy"] = acc
        results[f"attitude_tau{tau}_stride_cm"] = err
        table.add_row(f"attitude filter (tau={tau:.1f} s)", acc, err)
    return results, table


def run_energy_tradeoff(
    seed: int = 30,
    fix_intervals_s: Tuple[float, ...] = (5.0, 15.0, 30.0, 60.0),
) -> Tuple[Dict[Tuple[str, float], Dict[str, float]], Table]:
    """GPS duty-cycling with and without dead-reckoning (SI motivation).

    The paper's introduction motivates pedestrian tracking by letting
    location apps access "energy-consuming sensors less, e.g., GPS";
    this experiment sweeps the fix interval on the Fig. 9 route and
    compares the hold-last-fix baseline against PTrack dead-reckoning
    between fixes.

    Returns:
        Tuple of (per-(strategy, interval) metrics, rendered table).
    """
    from repro.apps.energy import evaluate_duty_cycle

    user = make_users(1, seed)[0]
    route = paper_route()
    rng = np.random.default_rng(seed)
    trace, truth = walk_route(user, route, rng=rng)
    tracker = PTrack(profile=user.profile)

    results: Dict[Tuple[str, float], Dict[str, float]] = {}
    table = Table(
        "GPS duty cycling on the Fig. 9 route: hold-last-fix vs "
        "PTrack dead-reckoning between fixes",
        ["fix every", "strategy", "mean err (m)", "p95 err (m)", "power (mW)"],
    )
    for interval in fix_intervals_s:
        hold, reckon = evaluate_duty_cycle(
            tracker, trace, truth, interval, rng=np.random.default_rng(seed + 1)
        )
        for outcome in (hold, reckon):
            results[(outcome.strategy, interval)] = {
                "mean_error_m": outcome.mean_error_m,
                "p95_error_m": outcome.p95_error_m,
                "energy_mw": outcome.energy_mw,
            }
            table.add_row(
                f"{interval:.0f} s",
                outcome.strategy,
                outcome.mean_error_m,
                outcome.p95_error_m,
                outcome.energy_mw,
            )
    return results, table
