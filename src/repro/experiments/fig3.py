"""Fig. 3 — critical-point structure of walking vs swinging vs stepping.

The paper's Fig. 3 plots one gait cycle of each motion with its
critical points marked, showing that the two rigid motions (swinging,
stepping) keep their vertical and anterior critical points synchronous
while walking's superposition pulls them apart. This driver reproduces
the quantitative content: the per-cycle offset (Eq. 1) distributions of
the three motions, which is what the step counter thresholds.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import PTrackConfig
from repro.core.offset import critical_points_for_offset, cycle_offset
from repro.eval.metrics import summarize
from repro.eval.reporting import Table
from repro.sensing.imu import IMUTrace
from repro.signal.filters import butter_lowpass
from repro.signal.projection import anterior_direction, project_horizontal
from repro.signal.segmentation import segment_gait_cycles
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk

__all__ = ["cycle_offsets", "run_offsets"]


def cycle_offsets(trace: IMUTrace, config: PTrackConfig) -> List[float]:
    """Per-candidate-cycle offsets of a trace (diagnostic helper)."""
    filtered = butter_lowpass(
        trace.linear_acceleration, config.lowpass_cutoff_hz, trace.sample_rate_hz
    )
    vertical = filtered[:, 2]
    horizontal = filtered[:, :2]
    offsets: List[float] = []
    for seg in segment_gait_cycles(
        vertical,
        trace.sample_rate_hz,
        config.min_step_rate_hz,
        config.max_step_rate_hz,
        config.min_peak_prominence,
    ):
        h_seg = horizontal[seg.start : seg.end]
        try:
            direction = anterior_direction(h_seg)
            anterior = project_horizontal(h_seg, direction)
            offsets.append(
                cycle_offset(vertical[seg.start : seg.end], anterior, config)
            )
        except Exception:  # degenerate cycles are simply skipped
            continue
    return offsets


def run_offsets(
    duration_s: float = 60.0,
    seed: int = 29,
    config: PTrackConfig = PTrackConfig(),
) -> Tuple[Dict[str, np.ndarray], Table]:
    """Offset distributions of the three Fig. 3 motions.

    Returns:
        Tuple of (per-motion offset arrays, rendered table). The
        expected shape: walking well above the threshold delta,
        swinging and stepping well below.
    """
    rng = np.random.default_rng(seed)
    user = SimulatedUser()
    traces = {
        "walking": simulate_walk(user, duration_s, rng=rng, arm_mode="swing")[0],
        "swinging": simulate_walk(
            user, duration_s, rng=rng, arm_mode="swing", body=False
        )[0],
        "stepping": simulate_walk(user, duration_s, rng=rng, arm_mode="rigid")[0],
    }
    offsets = {
        name: np.asarray(cycle_offsets(trace, config))
        for name, trace in traces.items()
    }
    table = Table(
        "Fig. 3: critical-point offsets per motion (delta = %.4f)"
        % config.offset_threshold,
        ["motion", "cycles", "mean", "median", "p90", "> delta %"],
    )
    for name, offs in offsets.items():
        if offs.size == 0:
            table.add_row(name, 0, "-", "-", "-", "-")
            continue
        s = summarize(offs)
        above = 100.0 * float((offs > config.offset_threshold).mean())
        table.add_row(name, s.n, s.mean, s.median, s.p90, above)
    return offsets, table
