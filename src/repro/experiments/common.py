"""Shared builders for the experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.montage import MontageTracker
from repro.baselines.peak_counter import PeakStepCounter
from repro.baselines.scar import ScarClassifier, ScarStepCounter
from repro.core.config import PTrackConfig
from repro.core.step_counter import PTrackStepCounter
from repro.runtime import parallel_map
from repro.sensing.imu import IMUTrace
from repro.simulation.activities import simulate_interference
from repro.simulation.profiles import SimulatedUser, sample_users
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind

__all__ = [
    "make_users",
    "train_scar",
    "scar_training_set",
    "count_with",
    "count_sweep",
]

#: Activities SCAR is trained on in Fig. 7 (photo deliberately absent).
SCAR_TRAINING_KINDS: Tuple[ActivityKind, ...] = (
    ActivityKind.EATING,
    ActivityKind.GAME,
    ActivityKind.POKER,
)


def make_users(n: int, seed: int = 7) -> List[SimulatedUser]:
    """A reproducible user population."""
    return sample_users(n, np.random.default_rng(seed))


def scar_training_set(
    user: SimulatedUser,
    rng: np.random.Generator,
    duration_s: float = 60.0,
    kinds: Sequence[ActivityKind] = SCAR_TRAINING_KINDS,
) -> List[Tuple[IMUTrace, ActivityKind]]:
    """Labelled training traces: pedestrian gaits + chosen interferers.

    Mirrors the paper's protocol: "we collect data for both pedestrian
    activities, e.g., walking, stepping and their mixture, and some
    typical interfering activities ... to form the training set", while
    withholding whatever ``kinds`` omits (Fig. 7 withholds photo).
    """
    data: List[Tuple[IMUTrace, ActivityKind]] = []
    walk_trace, _ = simulate_walk(user, duration_s, rng=rng, arm_mode="swing")
    data.append((walk_trace, ActivityKind.WALKING))
    step_trace, _ = simulate_walk(user, duration_s, rng=rng, arm_mode="rigid")
    data.append((step_trace, ActivityKind.STEPPING))
    for kind in kinds:
        trace = simulate_interference(kind, duration_s, rng=rng)
        data.append((trace, kind))
    return data


def train_scar(
    user: SimulatedUser,
    rng: np.random.Generator,
    duration_s: float = 60.0,
    kinds: Sequence[ActivityKind] = SCAR_TRAINING_KINDS,
) -> ScarStepCounter:
    """A SCAR counter trained on the standard (photo-free) set."""
    classifier = ScarClassifier().fit(scar_training_set(user, rng, duration_s, kinds))
    return ScarStepCounter(classifier)


def count_with(
    name: str,
    trace: IMUTrace,
    scar: Optional[ScarStepCounter] = None,
    config: Optional[PTrackConfig] = None,
) -> int:
    """Count steps with a named system under test.

    Args:
        name: One of ``"gfit"``, ``"mtage"``, ``"scar"``, ``"ptrack"``.
        trace: The trace to count on.
        scar: Fitted SCAR counter (required for ``"scar"``).
        config: PTrack configuration override.

    Returns:
        The reported step count.
    """
    if name == "gfit":
        return PeakStepCounter.gfit().count_steps(trace)
    if name == "mtage":
        return MontageTracker().count_steps(trace)
    if name == "scar":
        if scar is None:
            raise ValueError("scar counter required for name='scar'")
        return scar.count_steps(trace)
    if name == "ptrack":
        return PTrackStepCounter(config).count_steps(trace)
    raise ValueError(f"unknown system under test {name!r}")


def _count_task(
    item: Tuple[str, IMUTrace, Optional[ScarStepCounter], Optional[PTrackConfig]],
) -> int:
    """Module-level :func:`count_with` task (picklable for workers)."""
    name, trace, scar, config = item
    return count_with(name, trace, scar=scar, config=config)


def count_sweep(
    names: Sequence[str],
    traces: Sequence[IMUTrace],
    scar: Optional[ScarStepCounter] = None,
    config: Optional[PTrackConfig] = None,
    workers: Optional[int] = None,
) -> Dict[str, List[int]]:
    """Count every trace with every named system, optionally in parallel.

    The full ``names x traces`` grid is flattened into one task list so
    a worker pool stays busy even when the systems have very different
    per-trace costs.

    Args:
        names: Systems under test (see :func:`count_with`).
        traces: Traces to count on.
        scar: Fitted SCAR counter, if ``"scar"`` is among ``names``.
        config: PTrack configuration override.
        workers: Worker processes; ``None`` reads ``REPRO_WORKERS``
            (default serial), ``0`` means all cores.

    Returns:
        Mapping from system name to its per-trace counts, in trace
        order.
    """
    tasks = [
        (name, trace, scar if name == "scar" else None, config)
        for name in names
        for trace in traces
    ]
    counts = parallel_map(_count_task, tasks, workers=workers)
    out: Dict[str, List[int]] = {}
    for i, name in enumerate(names):
        out[name] = list(counts[i * len(traces) : (i + 1) * len(traces)])
    return out
