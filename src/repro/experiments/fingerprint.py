"""Gait fingerprinting — profiles as a population-scale identifier.

PTrack's self-trained profile is a compact physiological fingerprint:
arm length ``m̂``, leg length ``l̂``, and preferred cadence are stable
per person yet spread across a population (the anthropometric spread
NHANES documents is exactly what Step 1/Step 2 search over). This
experiment quantifies how identifying they are: enrol every user by
training an :class:`~repro.profiles.IncrementalSelfTrainer` on one
session, fingerprint a *held-out* session the same way, and attribute
it to the nearest enrolled profile. High attribution accuracy is both
a capability (device-sharing detection, per-user personalisation from
the :class:`~repro.profiles.ProfileStore`) and a privacy observation
(a "anonymous" profile record is linkable across sessions).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PTrackConfig
from repro.core.selftrain import calibration_observations, walk_observations
from repro.core.step_counter import PTrackStepCounter
from repro.eval.reporting import Table
from repro.experiments.common import make_users
from repro.profiles import IncrementalSelfTrainer
from repro.runtime import derive_rng, parallel_map
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk

__all__ = ["run_fingerprint", "session_fingerprint"]

#: Feature order in a fingerprint vector.
FEATURES = ("arm_m", "leg_m", "cadence_hz")


def session_fingerprint(
    user: SimulatedUser,
    rng: np.random.Generator,
    duration_s: float,
    config: Optional[PTrackConfig] = None,
) -> Optional[np.ndarray]:
    """Fingerprint one session: ``(m̂, l̂, cadence_hz)``.

    A session is a walking leg plus a stepping leg (the mixture Step 1
    needs). The walking leg doubles as a distance-referenced walk — its
    self-reported distance feeds Step 2 — so the whole vector comes out
    of one :class:`IncrementalSelfTrainer` fed exactly like a serving
    fleet would feed it. Returns ``None`` when the session's evidence
    cannot support training (short/degenerate sessions).
    """
    walk_trace, walk_truth = simulate_walk(user, duration_s, rng=rng)
    step_trace, _ = simulate_walk(
        user, 0.6 * duration_s, rng=rng, arm_mode="rigid"
    )
    trainer = IncrementalSelfTrainer(config=config)
    trainer.observe(calibration_observations([walk_trace, step_trace], config))
    trainer.observe_walk(
        walk_observations(walk_trace, config),
        walk_truth.total_distance_m * (1.0 + float(rng.normal(0.0, 0.02))),
    )
    try:
        est = trainer.estimate()
    except Exception:  # noqa: BLE001 — a failed session is just unusable
        return None
    if est.leg_length_m is None:
        return None
    steps = PTrackStepCounter(config).count_steps(walk_trace)
    cadence = steps / (2.0 * walk_trace.duration_s)  # strides/s
    return np.asarray(
        [est.arm_length_m, est.leg_length_m, cadence], dtype=float
    )


def _fingerprint_task(
    item: Tuple[int, SimulatedUser, float, int],
) -> Tuple[Optional[List[float]], Optional[List[float]]]:
    """Enrol + probe one user (module-level for process workers)."""
    user_idx, user, duration_s, seed = item
    enrol = session_fingerprint(
        user, derive_rng(seed + 11, user_idx), duration_s
    )
    probe = session_fingerprint(
        user, derive_rng(seed + 13, user_idx), duration_s
    )
    return (
        None if enrol is None else enrol.tolist(),
        None if probe is None else probe.tolist(),
    )


def run_fingerprint(
    n_users: int = 10,
    duration_s: float = 40.0,
    seed: int = 7,
    workers: Optional[int] = None,
) -> Tuple[Dict[str, Any], Table]:
    """Enrol a population, attribute held-out sessions, report accuracy.

    Each user contributes an enrolment session and an independent
    held-out probe session. Attribution is nearest-neighbour over
    population-normalised ``(m̂, l̂, cadence)`` vectors. Returns the
    structured results and a rendered table (per-feature spread,
    attribution accuracy, mean decision margin).
    """
    users = make_users(n_users, seed=seed)
    pairs = parallel_map(
        _fingerprint_task,
        [(i, u, duration_s, seed) for i, u in enumerate(users)],
        workers=workers,
    )
    usable = [
        (i, np.asarray(e), np.asarray(p))
        for i, (e, p) in enumerate(pairs)
        if e is not None and p is not None
    ]
    if len(usable) < 2:
        raise RuntimeError(
            "fingerprinting needs at least two users with trainable "
            f"sessions; got {len(usable)} of {n_users}"
        )
    enrolled = np.stack([e for _, e, _ in usable])
    # Population-scale normalisation so metres and hertz compare.
    scale = enrolled.std(axis=0)
    scale[scale <= 0] = 1.0

    correct = 0
    margins: List[float] = []
    for row, (_, _, probe) in enumerate(usable):
        dists = np.linalg.norm((enrolled - probe) / scale, axis=1)
        order = np.argsort(dists)
        if order[0] == row:
            correct += 1
        runner_up = dists[order[1]] if len(dists) > 1 else np.inf
        margins.append(float(runner_up - dists[row]))

    accuracy = correct / len(usable)
    results = {
        "n_users": n_users,
        "n_usable": len(usable),
        "correct": correct,
        "accuracy": accuracy,
        "mean_margin": float(np.mean(margins)),
        "feature_spread": {
            name: float(s) for name, s in zip(FEATURES, enrolled.std(axis=0))
        },
        "enrolled": enrolled.tolist(),
    }
    table = Table(
        "Gait fingerprinting — held-out session attribution",
        ["metric", "value"],
    )
    table.add_row("users enrolled", f"{len(usable)}/{n_users}")
    table.add_row("attribution accuracy", f"{100.0 * accuracy:.0f}%")
    table.add_row("mean margin (norm. dist)", f"{np.mean(margins):+.2f}")
    for name, spread in results["feature_spread"].items():
        table.add_row(f"population std {name}", f"{spread:.3f}")
    return results, table
