"""The month-long study protocol (SIV, headline claim).

"The experiments last for more than one month and we assist each user
to record their entire testing processes" — and the headline result:
"steps can be accurately counted by PTrack, achieving an error rate as
low as 0.02 with extensive interfering activities".

This driver reproduces that protocol at simulation speed: a population
of users each live through many mixed-activity sessions (walks, phone
calls with stepping, meals, card games, phone games, photo breaks,
desk work, the occasional spoofer prank), and every counter is scored
on the aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.autocorr_counter import AutocorrelationStepCounter
from repro.baselines.montage import MontageTracker
from repro.baselines.peak_counter import PeakStepCounter
from repro.core.step_counter import PTrackStepCounter
from repro.eval.metrics import count_error_rate
from repro.eval.reporting import Table
from repro.experiments.common import make_users, train_scar
from repro.runtime import derive_rng, parallel_map
from repro.simulation.scenarios import LabeledSession, SessionBuilder
from repro.simulation.profiles import SimulatedUser
from repro.types import ActivityKind, Posture

__all__ = ["run_study", "StudyResult", "daily_session"]

PAPER_ERROR_RATE = 0.02


@dataclass(frozen=True)
class StudyResult:
    """Aggregate outcome of one counter over the whole study.

    Attributes:
        counter: System name.
        counted: Total steps reported.
        true: Total ground-truth steps.
        error_rate: ``|counted - true| / true``.
    """

    counter: str
    counted: int
    true: int
    error_rate: float


def daily_session(
    user: SimulatedUser,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> LabeledSession:
    """One day-in-the-life session: walks interleaved with daily noise.

    Args:
        user: The simulated user.
        rng: Random generator (drives both the plan and the signals).
        scale: Duration multiplier (1.0 = ~8 minutes of recording,
            standing in for the highlights of a day).

    Returns:
        The labelled session.
    """
    builder = SessionBuilder(user, rng=rng)
    builder.walk(rng.uniform(40, 70) * scale)
    builder.interfere(
        ActivityKind.KEYSTROKE, rng.uniform(30, 60) * scale, posture=Posture.SEATED
    )
    builder.step(rng.uniform(30, 50) * scale)
    builder.interfere(
        ActivityKind.EATING, rng.uniform(50, 90) * scale, posture=Posture.SEATED
    )
    builder.walk(rng.uniform(30, 60) * scale)
    builder.interfere(
        ActivityKind.GAME, rng.uniform(40, 70) * scale, posture=Posture.SEATED
    )
    if rng.uniform() < 0.5:
        builder.interfere(
            ActivityKind.POKER, rng.uniform(40, 70) * scale, posture=Posture.SEATED
        )
    else:
        builder.interfere(
            ActivityKind.PHOTO, rng.uniform(40, 70) * scale, posture=Posture.STANDING
        )
    builder.interfere(
        ActivityKind.WATCH_GLANCE, rng.uniform(30, 50) * scale, posture=Posture.STANDING
    )
    builder.step(rng.uniform(25, 45) * scale)
    if rng.uniform() < 0.3:
        builder.spoof(rng.uniform(20, 40) * scale)
    builder.walk(rng.uniform(30, 60) * scale)
    return builder.build()


def _study_user_task(
    item: Tuple[int, SimulatedUser, int, int, float],
) -> Tuple[Dict[str, int], int]:
    """One user's full study block (module-level for workers).

    Returns:
        Tuple of (steps counted per system, true steps).
    """
    user_idx, user, n_days, seed, scale = item
    rng = derive_rng(seed + 1, user_idx)
    scar = train_scar(user, rng, duration_s=45.0)
    counters = {
        "gfit": PeakStepCounter.gfit().count_steps,
        "mtage": MontageTracker().count_steps,
        "autocorr": AutocorrelationStepCounter().count_steps,
        "ptrack": PTrackStepCounter().count_steps,
    }
    counted: Dict[str, int] = {name: 0 for name in counters}
    counted["scar"] = 0
    true_steps = 0
    for _ in range(n_days):
        session = daily_session(user, rng, scale=scale)
        true_steps += session.true_step_count
        for name, count in counters.items():
            counted[name] += count(session.trace)
        counted["scar"] += scar.count_steps(session.trace)
    return counted, true_steps


def run_study(
    n_users: int = 3,
    n_days: int = 3,
    seed: int = 83,
    scale: float = 0.6,
    workers: Optional[int] = None,
) -> Tuple[List[StudyResult], Table]:
    """Score every counter over a multi-user, multi-day study.

    Each user's sessions draw from a generator derived from
    ``(seed + 1, user index)``, so the per-user blocks parallelise
    without changing the aggregate.

    Args:
        n_users: Population size.
        n_days: Sessions per user.
        seed: Reproducibility seed.
        scale: Session-duration multiplier.
        workers: Worker processes; ``None`` reads ``REPRO_WORKERS``
            (default serial), ``0`` means all cores.

    Returns:
        Tuple of (per-counter results, rendered table).
    """
    users = make_users(n_users, seed)
    per_user = parallel_map(
        _study_user_task,
        [(i, user, n_days, seed, scale) for i, user in enumerate(users)],
        workers=workers,
    )
    counted: Dict[str, int] = {
        name: 0 for name in ("gfit", "mtage", "autocorr", "ptrack", "scar")
    }
    total_true = 0
    for user_counts, user_true in per_user:
        total_true += user_true
        for name, value in user_counts.items():
            counted[name] += value

    results = [
        StudyResult(
            counter=name,
            counted=value,
            true=total_true,
            error_rate=count_error_rate(value, total_true),
        )
        for name, value in counted.items()
    ]
    results.sort(key=lambda r: r.error_rate)

    table = Table(
        "Month-long-study protocol: %d users x %d sessions "
        "(paper: PTrack error rate as low as 0.02)" % (n_users, n_days),
        ["counter", "counted", "true", "error rate"],
    )
    for r in results:
        table.add_row(r.counter, r.counted, r.true, r.error_rate)
    return results, table
