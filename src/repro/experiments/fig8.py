"""Fig. 8 — stride-estimation accuracy.

(a) PTrack vs Montage on the wrist: Montage's body-attachment
    assumption breaks (it reads arm + body as bounce), PTrack's bounce
    extraction keeps the per-step error around 5 cm.
(b) PTrack-Automatic (self-trained profile) vs PTrack-Manual (noisy
    tape-measured profile): paper averages 5.3 cm vs 5.7 cm —
    self-training is at least as good as manual measurement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.montage import MontageTracker
from repro.core.pipeline import PTrack
from repro.core.selftrain import CalibrationWalk, SelfTrainer
from repro.eval.metrics import stride_errors, summarize
from repro.eval.reporting import Table
from repro.experiments.common import make_users
from repro.runtime import derive_rng, parallel_map
from repro.sensing.imu import IMUTrace
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk

__all__ = ["run_stride_comparison", "run_self_training", "PAPER_ERRORS_CM"]

#: Paper-reported average per-step stride errors (cm).
PAPER_ERRORS_CM = {"ptrack": 5.0, "ptrack_automatic": 5.3, "ptrack_manual": 5.7}


def _test_walks(
    user: SimulatedUser,
    rng: np.random.Generator,
    duration_s: float,
) -> List[Tuple[IMUTrace, np.ndarray]]:
    """Indoor/outdoor-style test trajectories at different paces."""
    walks = []
    for cadence, stride in (
        (0.9 * user.cadence_hz, 0.9 * user.stride_m),
        (user.cadence_hz, user.stride_m),
        (1.1 * user.cadence_hz, 1.1 * user.stride_m),
    ):
        tuned = user.with_gait(cadence_hz=cadence, stride_m=stride)
        trace, truth = simulate_walk(tuned, duration_s, rng=rng)
        walks.append((trace, truth.stride_lengths_m))
    return walks


def _calibration_walks(
    user: SimulatedUser,
    rng: np.random.Generator,
    duration_s: float = 45.0,
) -> List[CalibrationWalk]:
    """Initialisation walks (walking + stepping, coarse distance refs)."""
    walks = []
    for cadence, stride in (
        (0.9 * user.cadence_hz, 0.88 * user.stride_m),
        (user.cadence_hz, user.stride_m),
        (1.1 * user.cadence_hz, 1.12 * user.stride_m),
    ):
        tuned = user.with_gait(cadence_hz=cadence, stride_m=stride)
        walk_trace, walk_truth = simulate_walk(tuned, duration_s, rng=rng)
        step_trace, step_truth = simulate_walk(
            tuned, duration_s * 0.6, rng=rng, arm_mode="rigid"
        )
        trace = IMUTrace.concatenate([walk_trace, step_trace])
        reference = (walk_truth.total_distance_m + step_truth.total_distance_m) * (
            1.0 + float(rng.normal(0.0, 0.02))
        )
        walks.append(CalibrationWalk(trace, reference))
    return walks


def _stride_user_task(
    item: Tuple[int, SimulatedUser, float, int],
) -> Dict[str, List[float]]:
    """One user's Fig. 8(a) errors (module-level for workers)."""
    user_idx, user, duration_s, seed = item
    rng = derive_rng(seed + 1, user_idx)
    ptrack = PTrack(profile=user.profile)
    mtage = MontageTracker(profile=user.profile)
    errors: Dict[str, List[float]] = {"ptrack": [], "mtage": []}
    for trace, true_strides in _test_walks(user, rng, duration_s):
        result = ptrack.track(trace)
        errors["ptrack"].extend(
            stride_errors([s.length_m for s in result.strides], true_strides) * 100.0
        )
        errors["mtage"].extend(
            stride_errors(
                [s.length_m for s in mtage.estimate_strides(trace)], true_strides
            )
            * 100.0
        )
    return errors


def _selftrain_user_task(
    item: Tuple[int, SimulatedUser, float, int, float],
) -> Dict[str, List[float]]:
    """One user's Fig. 8(b) errors (module-level for workers)."""
    user_idx, user, duration_s, seed, manual_sigma_m = item
    rng = derive_rng(seed + 1, user_idx)
    profile_auto = SelfTrainer().train(_calibration_walks(user, rng))
    profile_manual = user.measured_profile(rng, measurement_sigma_m=manual_sigma_m)
    trackers = {
        "automatic": PTrack(profile=profile_auto),
        "manual": PTrack(profile=profile_manual),
    }
    errors: Dict[str, List[float]] = {"automatic": [], "manual": []}
    for trace, true_strides in _test_walks(user, rng, duration_s):
        for mode, tracker in trackers.items():
            result = tracker.track(trace)
            errors[mode].extend(
                stride_errors([s.length_m for s in result.strides], true_strides)
                * 100.0
            )
    return errors


def run_stride_comparison(
    n_users: int = 3,
    duration_s: float = 45.0,
    seed: int = 47,
    workers: Optional[int] = None,
) -> Tuple[Dict[str, np.ndarray], Table]:
    """Fig. 8(a): per-step stride errors, PTrack vs Montage on wrists.

    Returns:
        Tuple of (per-system error arrays in cm, table).
    """
    users = make_users(n_users, seed)
    per_user = parallel_map(
        _stride_user_task,
        [(i, user, duration_s, seed) for i, user in enumerate(users)],
        workers=workers,
    )
    errors: Dict[str, List[float]] = {"ptrack": [], "mtage": []}
    for user_errors in per_user:
        for name, errs in user_errors.items():
            errors[name].extend(errs)
    arrays = {k: np.asarray(v) for k, v in errors.items()}
    table = Table(
        "Fig. 8(a): per-step stride error (cm); paper: PTrack ~5, Montage much worse",
        ["system", "mean", "median", "p90", "n steps"],
    )
    for name, errs in arrays.items():
        s = summarize(errs)
        table.add_row(name, s.mean, s.median, s.p90, s.n)
    return arrays, table


def run_self_training(
    n_users: int = 2,
    duration_s: float = 45.0,
    seed: int = 53,
    manual_sigma_m: float = 0.035,
    workers: Optional[int] = None,
) -> Tuple[Dict[str, np.ndarray], Table]:
    """Fig. 8(b): self-trained vs manually measured profiles.

    Manual profiles carry tape-measure error (the paper attributes
    PTrack-Manual's slightly worse accuracy to imprecise landmark
    placement by inexperienced users).

    Returns:
        Tuple of (per-mode error arrays in cm, table).
    """
    users = make_users(n_users, seed)
    per_user = parallel_map(
        _selftrain_user_task,
        [(i, user, duration_s, seed, manual_sigma_m) for i, user in enumerate(users)],
        workers=workers,
    )
    errors: Dict[str, List[float]] = {"automatic": [], "manual": []}
    for user_errors in per_user:
        for mode, errs in user_errors.items():
            errors[mode].extend(errs)
    arrays = {k: np.asarray(v) for k, v in errors.items()}
    table = Table(
        "Fig. 8(b): stride error (cm), automatic vs manual profiles "
        "(paper: 5.3 vs 5.7)",
        ["mode", "mean", "median", "p90", "n steps"],
    )
    for name, errs in arrays.items():
        s = summarize(errs)
        table.add_row(name, s.mean, s.median, s.p90, s.n)
    return arrays, table
