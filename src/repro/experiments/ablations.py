"""Ablation studies of PTrack's design constants.

The paper fixes delta = 0.0325 empirically and mentions adaptive
threshold tuning as future work (SV); these sweeps quantify the design
space: the delta operating band, sensitivity to sensor noise and
sampling rate, the consecutive-confirmation requirement of the
stepping test, and the two offset-metric refinements this
implementation documents (matching-gate relaxation, weight cap).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.config import PTrackConfig
from repro.core.step_counter import PTrackStepCounter
from repro.eval.metrics import count_accuracy
from repro.eval.reporting import Table
from repro.sensing.device import WearableDevice
from repro.sensing.noise import NoiseModel
from repro.simulation.activities import simulate_interference
from repro.simulation.profiles import SimulatedUser
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind

__all__ = [
    "sweep_delta",
    "sweep_noise",
    "sweep_sample_rate",
    "sweep_consecutive",
    "sweep_metric_variants",
]


def _walk_and_interference(
    rng: np.random.Generator,
    duration_s: float,
    device: WearableDevice = None,
    sample_rate_hz: float = 100.0,
):
    user = SimulatedUser()
    walk, truth = simulate_walk(
        user, duration_s, sample_rate_hz=sample_rate_hz, rng=rng, device=device
    )
    interferers = [
        simulate_interference(
            kind, duration_s, sample_rate_hz=sample_rate_hz, rng=rng, device=device
        )
        for kind in (ActivityKind.EATING, ActivityKind.GAME)
    ]
    return walk, truth, interferers


def sweep_delta(
    deltas: Sequence[float] = (0.01, 0.02, 0.0325, 0.05, 0.08),
    duration_s: float = 60.0,
    seed: int = 61,
) -> Tuple[List[Tuple[float, float, float]], Table]:
    """Walking accuracy vs interference leakage across delta.

    Returns:
        Tuple of (rows of (delta, walking accuracy, false steps/min),
        table). The paper's 0.0325 should sit in the plateau where
        accuracy is high and leakage low.
    """
    rng = np.random.default_rng(seed)
    walk, truth, interferers = _walk_and_interference(rng, duration_s)
    rows: List[Tuple[float, float, float]] = []
    for delta in deltas:
        counter = PTrackStepCounter(PTrackConfig(offset_threshold=delta))
        acc = count_accuracy(counter.count_steps(walk), truth.step_count)
        false_per_min = float(
            np.mean(
                [counter.count_steps(t) / (duration_s / 60.0) for t in interferers]
            )
        )
        rows.append((delta, acc, false_per_min))
    table = Table(
        "Ablation: offset threshold delta (paper default 0.0325)",
        ["delta", "walking accuracy", "false steps/min"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_noise(
    sigmas: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    duration_s: float = 60.0,
    seed: int = 67,
) -> Tuple[List[Tuple[float, float, float]], Table]:
    """Step accuracy and interference leakage vs sensor noise level."""
    rows: List[Tuple[float, float, float]] = []
    for sigma in sigmas:
        rng = np.random.default_rng(seed)
        device = WearableDevice(noise=NoiseModel(white_sigma=sigma, bias_sigma=0.01))
        walk, truth, interferers = _walk_and_interference(
            rng, duration_s, device=device
        )
        counter = PTrackStepCounter()
        acc = count_accuracy(counter.count_steps(walk), truth.step_count)
        false_per_min = float(
            np.mean(
                [counter.count_steps(t) / (duration_s / 60.0) for t in interferers]
            )
        )
        rows.append((sigma, acc, false_per_min))
    table = Table(
        "Ablation: accelerometer white-noise sigma (m/s^2)",
        ["sigma", "walking accuracy", "false steps/min"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_sample_rate(
    rates: Sequence[float] = (25.0, 50.0, 100.0, 200.0),
    duration_s: float = 60.0,
    seed: int = 71,
) -> Tuple[List[Tuple[float, float]], Table]:
    """Walking step accuracy vs device sampling rate."""
    rows: List[Tuple[float, float]] = []
    for rate in rates:
        rng = np.random.default_rng(seed)
        device = WearableDevice(sample_rate_hz=rate)
        user = SimulatedUser()
        walk, truth = simulate_walk(
            user, duration_s, sample_rate_hz=rate, rng=rng, device=device
        )
        counter = PTrackStepCounter()
        rows.append(
            (rate, count_accuracy(counter.count_steps(walk), truth.step_count))
        )
    table = Table(
        "Ablation: sampling rate (Hz)", ["rate", "walking accuracy"]
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_consecutive(
    values: Sequence[int] = (1, 2, 3, 5),
    duration_s: float = 60.0,
    seed: int = 73,
) -> Tuple[List[Tuple[int, float, float]], Table]:
    """Stepping accuracy vs interference leakage across the
    consecutive-confirmation requirement (paper uses 3)."""
    rng = np.random.default_rng(seed)
    user = SimulatedUser()
    stepping, truth = simulate_walk(user, duration_s, rng=rng, arm_mode="rigid")
    interferers = [
        simulate_interference(kind, duration_s, rng=rng)
        for kind in (ActivityKind.POKER, ActivityKind.GAME)
    ]
    rows: List[Tuple[int, float, float]] = []
    for value in values:
        counter = PTrackStepCounter(PTrackConfig(stepping_consecutive=value))
        acc = count_accuracy(counter.count_steps(stepping), truth.step_count)
        false_per_min = float(
            np.mean(
                [counter.count_steps(t) / (duration_s / 60.0) for t in interferers]
            )
        )
        rows.append((value, acc, false_per_min))
    table = Table(
        "Ablation: consecutive stepping confirmations (paper: 3)",
        ["consecutive", "stepping accuracy", "false steps/min"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_metric_variants(
    duration_s: float = 60.0,
    seed: int = 79,
) -> Tuple[List[Tuple[str, float, float]], Table]:
    """Offset-metric refinements on/off.

    Variants: the full metric; without the matching-gate relaxation;
    without the per-point weight cap. Both refinements exist to keep
    rigid gestures below delta (see DESIGN.md).
    """
    rng = np.random.default_rng(seed)
    walk, truth, interferers = _walk_and_interference(rng, duration_s)
    variants = {
        "full": PTrackConfig(),
        "no-relaxed-matching": PTrackConfig(matching_prominence_factor=1.0),
        "no-weight-cap": PTrackConfig(max_point_weight=1.0),
    }
    rows: List[Tuple[str, float, float]] = []
    for name, cfg in variants.items():
        counter = PTrackStepCounter(cfg)
        acc = count_accuracy(counter.count_steps(walk), truth.step_count)
        false_per_min = float(
            np.mean(
                [counter.count_steps(t) / (duration_s / 60.0) for t in interferers]
            )
        )
        rows.append((name, acc, false_per_min))
    table = Table(
        "Ablation: offset-metric refinements",
        ["variant", "walking accuracy", "false steps/min"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table
