"""Fig. 9 — the indoor-navigation case study.

A user walks the 141.5 m shopping-centre route from store exit A to
elevator G via markers B-F, crossing a 4 m corridor twice between B
and D. Dead-reckoning on PTrack output tracks the route closely: the
paper reports 136.4 m of tracked distance and a 5.1 cm average
per-step error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.apps.deadreckoning import NavigationReport, navigate_route
from repro.core.pipeline import PTrack
from repro.eval.metrics import stride_errors
from repro.eval.reporting import Table
from repro.experiments.common import make_users
from repro.simulation.routes import Route, paper_route, walk_route

__all__ = ["run_navigation", "PAPER_ROUTE_M", "PAPER_TRACKED_M", "PAPER_STEP_ERROR_CM"]

PAPER_ROUTE_M = 141.5
PAPER_TRACKED_M = 136.4
PAPER_STEP_ERROR_CM = 5.1


@dataclass(frozen=True)
class NavigationSummary:
    """Headline numbers of one navigation run."""

    route_length_m: float
    walked_distance_m: float
    tracked_distance_m: float
    mean_stride_error_cm: float
    final_position_error_m: float
    mean_position_error_m: float


def run_navigation(
    seed: int = 61,
    heading_noise_rad: float = 0.03,
) -> Tuple[NavigationSummary, NavigationReport, Route, Table]:
    """Walk the Fig. 9 route and dead-reckon it with PTrack.

    Returns:
        Tuple of (summary, full navigation report, route, table).
    """
    rng = np.random.default_rng(seed)
    user = make_users(1, seed)[0]
    route = paper_route()
    trace, truth = walk_route(user, route, rng=rng)

    tracker = PTrack(profile=user.profile)
    report = navigate_route(
        tracker, trace, truth, route, heading_noise_rad=heading_noise_rad, rng=rng
    )
    result = tracker.track(trace)
    step_errs_cm = (
        stride_errors(
            [s.length_m for s in result.strides], truth.stride_lengths_m
        )
        * 100.0
    )
    summary = NavigationSummary(
        route_length_m=route.total_length_m,
        walked_distance_m=truth.total_distance_m,
        tracked_distance_m=report.tracked_distance_m,
        mean_stride_error_cm=float(np.mean(step_errs_cm)) if step_errs_cm.size else float("nan"),
        final_position_error_m=report.final_error_m,
        mean_position_error_m=report.mean_position_error_m,
    )
    table = Table(
        "Fig. 9: navigation case study (paper: route 141.5 m, tracked 136.4 m, "
        "per-step error 5.1 cm)",
        ["quantity", "measured", "paper"],
    )
    table.add_row("route length (m)", summary.route_length_m, PAPER_ROUTE_M)
    table.add_row("tracked distance (m)", summary.tracked_distance_m, PAPER_TRACKED_M)
    table.add_row(
        "per-step error (cm)", summary.mean_stride_error_cm, PAPER_STEP_ERROR_CM
    )
    table.add_row("final position error (m)", summary.final_position_error_m, "-")
    return summary, report, route, table
