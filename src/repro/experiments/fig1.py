"""Fig. 1 — the motivation measurements.

(a) Built-in wearable counters mis-triggered by eating and poker
    (standing and seated): 40-80 false steps in 2 minutes.
(b) Phone pedometers (coprocessor / software profiles) mis-triggered
    by photo-taking and phone games: 27-56 false steps in 2 minutes.
(c) A spoofing shaker ticks every counter ~48 times in 40 seconds.
(d) Existing stride models (empirical, biomechanical, naive integral)
    applied directly to wrist signals produce errors up to metres.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.peak_counter import PeakStepCounter
from repro.baselines.stride_models import (
    biomechanical_strides,
    empirical_strides,
    integral_strides,
)
from repro.eval.metrics import stride_errors, summarize
from repro.eval.reporting import Table
from repro.runtime import derive_rng, parallel_map
from repro.simulation.activities import simulate_interference
from repro.simulation.profiles import SimulatedUser
from repro.simulation.spoofer import simulate_spoofer
from repro.simulation.walker import simulate_walk
from repro.types import ActivityKind, Posture

__all__ = ["MiscountResult", "run_miscount", "run_spoof", "run_stride_models"]

#: Paper-reported mis-count ranges per sub-figure (false steps / 2 min).
PAPER_WEARABLE_RANGE = (40, 80)
PAPER_PHONE_RANGE = (27, 56)
PAPER_SPOOF_TICKS_40S = 48


@dataclass(frozen=True)
class MiscountResult:
    """Mis-counts of one counter on one activity/posture combination."""

    counter: str
    activity: ActivityKind
    posture: Posture
    false_steps: int
    duration_s: float


def _miscount_plan() -> List[Tuple[Dict[str, PeakStepCounter], ActivityKind]]:
    wearable_counters = {
        "watch": PeakStepCounter.gfit(),
        "band": PeakStepCounter(cutoff_hz=3.0, min_prominence=0.7),
    }
    phone_counters = {
        "coprocessor": PeakStepCounter.coprocessor(),
        "software": PeakStepCounter.software(),
    }
    return [
        (wearable_counters, ActivityKind.EATING),
        (wearable_counters, ActivityKind.POKER),
        (phone_counters, ActivityKind.PHOTO),
        (phone_counters, ActivityKind.GAME),
    ]


def _miscount_task(
    item: Tuple[int, int, float, int],
) -> List[MiscountResult]:
    """One (activity, posture) cell of Fig. 1(a)+(b)."""
    plan_idx, posture_idx, duration_s, seed = item
    counters, activity = _miscount_plan()[plan_idx]
    posture = (Posture.STANDING, Posture.SEATED)[posture_idx]
    rng = derive_rng(seed, plan_idx, posture_idx)
    trace = simulate_interference(activity, duration_s, rng=rng, posture=posture)
    return [
        MiscountResult(name, activity, posture, counter.count_steps(trace), duration_s)
        for name, counter in counters.items()
    ]


def run_miscount(
    duration_s: float = 120.0,
    seed: int = 17,
    workers: Optional[int] = None,
) -> Tuple[List[MiscountResult], Table]:
    """Fig. 1(a)+(b): false steps of commercial-style counters.

    Each (activity, posture) cell simulates from a generator derived
    from ``(seed, activity, posture)``, so the grid parallelises
    without changing any count.

    Returns:
        Tuple of (all results, rendered table).
    """
    plan = _miscount_plan()
    postures = (Posture.STANDING, Posture.SEATED)
    cells = parallel_map(
        _miscount_task,
        [
            (plan_idx, posture_idx, duration_s, seed)
            for plan_idx in range(len(plan))
            for posture_idx in range(len(postures))
        ],
        workers=workers,
    )
    results: List[MiscountResult] = []
    table = Table(
        "Fig. 1(a)+(b): false steps in %.0f s (paper: wearables 40-80, phones 27-56 per 2 min)"
        % duration_s,
        ["counter", "activity", "posture", "false steps"],
    )
    for cell in cells:
        for r in cell:
            results.append(r)
            table.add_row(r.counter, r.activity.value, r.posture.value, r.false_steps)
    return results, table


def run_spoof(
    duration_s: float = 40.0,
    seed: int = 19,
) -> Tuple[Dict[str, int], Table]:
    """Fig. 1(c): spoofing ticks on every commercial-style counter."""
    rng = np.random.default_rng(seed)
    trace = simulate_spoofer(duration_s, rng=rng)
    counters = {
        "watch": PeakStepCounter.gfit(),
        "band": PeakStepCounter(cutoff_hz=3.0, min_prominence=0.7),
        "coprocessor": PeakStepCounter.coprocessor(),
        "software": PeakStepCounter.software(),
    }
    ticks = {name: c.count_steps(trace) for name, c in counters.items()}
    table = Table(
        "Fig. 1(c): spoofing ticks in %.0f s (paper: ~%d)"
        % (duration_s, PAPER_SPOOF_TICKS_40S),
        ["counter", "ticks"],
    )
    for name, t in ticks.items():
        table.add_row(name, t)
    return ticks, table


def run_stride_models(
    duration_s: float = 120.0,
    seed: int = 23,
) -> Tuple[Dict[str, np.ndarray], Table]:
    """Fig. 1(d): existing stride models applied to wrist signals.

    Returns:
        Tuple of (per-model absolute stride errors in cm, table).
    """
    rng = np.random.default_rng(seed)
    user = SimulatedUser()
    trace, truth = simulate_walk(user, duration_s, rng=rng)
    true_strides = list(truth.stride_lengths_m)

    estimates = {
        "empirical": empirical_strides(trace),
        "biomechanical": biomechanical_strides(trace, user.profile),
        "integral": integral_strides(trace),
    }
    errors_cm: Dict[str, np.ndarray] = {}
    table = Table(
        "Fig. 1(d): per-step stride errors (cm) of existing models on the wrist "
        "(paper: inaccurate, errors up to ~200 cm)",
        ["model", "mean", "median", "p90", "max"],
    )
    for name, est in estimates.items():
        errs = stride_errors(est, true_strides) * 100.0
        errors_cm[name] = errs
        s = summarize(errs)
        table.add_row(name, s.mean, s.median, s.p90, s.maximum)
    return errors_cm, table
