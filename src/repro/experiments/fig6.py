"""Fig. 6 — overall step-counting accuracy and gait-type breakdown.

(a) Without intended interference, all four systems are accurate on
    pure walking and pure stepping, slightly less on mixed gait:
    paper accuracies (GFit/Mtage/SCAR/PTrack) are 0.97/0.97/0.99/0.98
    (walking), 0.98/0.99/1.0/0.98 (stepping), 0.91/0.92/0.90/0.93
    (mixed).
(b) PTrack's internal gait-type breakdown: 2.3 / 1.7 / 7.4 % of cycles
    mis-identified as "Others" in the three categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.step_counter import PTrackStepCounter
from repro.eval.metrics import count_accuracy
from repro.eval.reporting import Table
from repro.experiments.common import count_with, make_users, train_scar
from repro.runtime import derive_rng, parallel_map
from repro.sensing.imu import IMUTrace
from repro.simulation.profiles import SimulatedUser
from repro.simulation.scenarios import SessionBuilder
from repro.simulation.walker import simulate_walk
from repro.types import GaitType

__all__ = ["run_overall_accuracy", "run_breakdown", "PAPER_ACCURACY"]

#: Fig. 6(a) paper accuracies per (system, category).
PAPER_ACCURACY = {
    ("gfit", "walking"): 0.97,
    ("mtage", "walking"): 0.97,
    ("scar", "walking"): 0.99,
    ("ptrack", "walking"): 0.98,
    ("gfit", "stepping"): 0.98,
    ("mtage", "stepping"): 0.99,
    ("scar", "stepping"): 1.00,
    ("ptrack", "stepping"): 0.98,
    ("gfit", "mixed"): 0.91,
    ("mtage", "mixed"): 0.92,
    ("scar", "mixed"): 0.90,
    ("ptrack", "mixed"): 0.93,
}

#: Fig. 6(b) paper mis-identification ("Others") percentages.
PAPER_OTHERS_PERCENT = {"walking": 2.3, "stepping": 1.7, "mixed": 7.4}


def _category_sessions(
    user: SimulatedUser,
    rng: np.random.Generator,
    duration_s: float,
) -> Dict[str, Tuple[IMUTrace, int]]:
    """(trace, true steps) per gait category for one user."""
    walk_trace, walk_truth = simulate_walk(user, duration_s, rng=rng, arm_mode="swing")
    step_trace, step_truth = simulate_walk(user, duration_s, rng=rng, arm_mode="rigid")
    chunk = max(10.0, duration_s / 4.0)
    mixed = (
        SessionBuilder(user, rng=rng)
        .walk(chunk)
        .step(chunk)
        .walk(chunk)
        .step(chunk)
        .build()
    )
    return {
        "walking": (walk_trace, walk_truth.step_count),
        "stepping": (step_trace, step_truth.step_count),
        "mixed": (mixed.trace, mixed.true_step_count),
    }


_SYSTEMS = ("gfit", "mtage", "scar", "ptrack")


def _accuracy_user_task(
    item: Tuple[int, SimulatedUser, float, int],
) -> Dict[Tuple[str, str], float]:
    """One user's Fig. 6(a) accuracies (module-level for workers)."""
    user_idx, user, duration_s, seed = item
    rng = derive_rng(seed + 1, user_idx)
    scar = train_scar(user, rng)
    sessions = _category_sessions(user, rng, duration_s)
    return {
        (system, category): count_accuracy(
            count_with(system, trace, scar=scar), true_steps
        )
        for category, (trace, true_steps) in sessions.items()
        for system in _SYSTEMS
    }


def _breakdown_user_task(
    item: Tuple[int, SimulatedUser, float, int],
) -> Dict[str, Dict[str, int]]:
    """One user's Fig. 6(b) per-category gait-type counts."""
    user_idx, user, duration_s, seed = item
    rng = derive_rng(seed + 1, user_idx)
    counter = PTrackStepCounter()
    counts: Dict[str, Dict[str, int]] = {
        c: {"walking": 0, "stepping": 0, "others": 0}
        for c in ("walking", "stepping", "mixed")
    }
    for category, (trace, _) in _category_sessions(user, rng, duration_s).items():
        _, classifications = counter.process(trace)
        for cls in classifications:
            if cls.gait_type is GaitType.WALKING:
                counts[category]["walking"] += 1
            elif cls.gait_type is GaitType.STEPPING:
                counts[category]["stepping"] += 1
            else:
                counts[category]["others"] += 1
    return counts


def run_overall_accuracy(
    n_users: int = 3,
    duration_s: float = 60.0,
    seed: int = 31,
    workers: Optional[int] = None,
) -> Tuple[Dict[Tuple[str, str], float], Table]:
    """Fig. 6(a): accuracy of all four systems per gait category.

    Each user's sessions draw from a generator derived from
    ``(seed + 1, user index)``, so results are independent of execution
    order and identical for every worker count.

    Returns:
        Tuple of (mean accuracy per (system, category), table with
        paper values alongside).
    """
    users = make_users(n_users, seed)
    systems = _SYSTEMS
    per_user = parallel_map(
        _accuracy_user_task,
        [(i, user, duration_s, seed) for i, user in enumerate(users)],
        workers=workers,
    )
    sums: Dict[Tuple[str, str], List[float]] = {}
    for user_result in per_user:
        for key, accuracy in user_result.items():
            sums.setdefault(key, []).append(accuracy)
    means = {key: float(np.mean(vals)) for key, vals in sums.items()}
    table = Table(
        "Fig. 6(a): step-count accuracy (mean over %d users)" % n_users,
        ["category", "system", "measured", "paper"],
    )
    for category in ("walking", "stepping", "mixed"):
        for system in systems:
            table.add_row(
                category,
                system,
                means[(system, category)],
                PAPER_ACCURACY[(system, category)],
            )
    return means, table


def run_breakdown(
    n_users: int = 3,
    duration_s: float = 60.0,
    seed: int = 37,
    workers: Optional[int] = None,
) -> Tuple[Dict[str, Dict[str, float]], Table]:
    """Fig. 6(b): PTrack's gait-type classification breakdown.

    Returns:
        Tuple of (percentages per category, table). "others" is the
        fraction of candidate cycles classified as interference.
    """
    users = make_users(n_users, seed)
    per_user = parallel_map(
        _breakdown_user_task,
        [(i, user, duration_s, seed) for i, user in enumerate(users)],
        workers=workers,
    )
    counts: Dict[str, Dict[str, int]] = {
        c: {"walking": 0, "stepping": 0, "others": 0}
        for c in ("walking", "stepping", "mixed")
    }
    for user_counts in per_user:
        for category, c in user_counts.items():
            for kind, value in c.items():
                counts[category][kind] += value
    percents: Dict[str, Dict[str, float]] = {}
    for category, c in counts.items():
        total = max(1, sum(c.values()))
        percents[category] = {k: 100.0 * v / total for k, v in c.items()}
    table = Table(
        "Fig. 6(b): PTrack gait-type breakdown (%% of candidate cycles; "
        "paper 'Others': walking 2.3, stepping 1.7, mixed 7.4)",
        ["category", "walking %", "stepping %", "others %", "paper others %"],
    )
    for category in ("walking", "stepping", "mixed"):
        p = percents[category]
        table.add_row(
            category,
            p["walking"],
            p["stepping"],
            p["others"],
            PAPER_OTHERS_PERCENT[category],
        )
    return percents, table
