"""Experiment drivers: one module per figure of the paper.

Each driver synthesises the figure's workload, runs every system under
test, and returns structured results plus a rendered paper-vs-measured
table. The pytest-benchmark targets in ``benchmarks/`` are thin
wrappers around these functions, so the same code path serves both
interactive use and ``pytest benchmarks/ --benchmark-only``.

| Module | Reproduces |
| --- | --- |
| ``fig1`` | Fig. 1(a)-(c) mis-counts and spoofing; Fig. 1(d) stride models |
| ``fig3`` | Fig. 3 critical-point offsets per motion type |
| ``fig6`` | Fig. 6(a) overall accuracy, Fig. 6(b) gait-type breakdown |
| ``fig7`` | Fig. 7(a) interference robustness, Fig. 7(b) spoofing |
| ``fig8`` | Fig. 8(a) PTrack vs Montage strides, Fig. 8(b) self-training |
| ``fig9`` | Fig. 9 indoor-navigation case study |
| ``ablations`` | delta sweep, noise sweep, sampling-rate sweep, design knobs |
| ``study`` | the month-long mixed-activity protocol (headline error rate) |
| ``extensions`` | counter design space, adaptive delta, inertial navigation, attitude + energy |
| ``robustness`` | attitude-error / mount / arm-lag / gyro-quality / dropout / clipping sweeps |
| ``dataset_eval`` | scoring PTrack over saved labelled datasets |
| ``fingerprint`` | gait fingerprinting: held-out session attribution by profile |
"""

from repro.experiments import (
    ablations,
    dataset_eval,
    extensions,
    fig1,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    fingerprint,
    robustness,
    study,
)

__all__ = [
    "ablations",
    "dataset_eval",
    "extensions",
    "fig1",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fingerprint",
    "robustness",
    "study",
]
