"""Robustness sweeps over deployment conditions.

Beyond the paper's figures, a reviewer (or adopter) asks how the system
behaves as real-world conditions drift: how well the watch's attitude
is known, how the watch sits on the wrist, and how far a user's gait
may stray from the population the thresholds were tuned on. Each sweep
varies one condition and reports step accuracy and stride error.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.pipeline import PTrack
from repro.core.streaming import StreamingPTrack
from repro.eval.metrics import count_accuracy
from repro.eval.reporting import Table
from repro.experiments.common import make_users
from repro.faults import FaultPolicy, SampleDropout, Saturation, inject_faults
from repro.sensing.attitude import recover_linear_acceleration
from repro.sensing.device import WearableDevice
from repro.sensing.noise import NoiseModel
from repro.simulation.raw import GyroNoiseModel, simulate_walk_raw
from repro.simulation.walker import simulate_walk

__all__ = [
    "sweep_attitude_error",
    "sweep_wrist_mount",
    "sweep_arm_lag",
    "sweep_gyro_quality",
    "sweep_dropout",
    "sweep_clipping",
]


def _score(user, trace, truth) -> Tuple[float, float]:
    tracker = PTrack(profile=user.profile)
    result = tracker.track(trace)
    accuracy = count_accuracy(result.step_count, truth.step_count)
    strides = np.array([s.length_m for s in result.strides])
    stride_err = (
        100.0 * float(np.mean(np.abs(strides - user.stride_m)))
        if strides.size
        else float("nan")
    )
    return accuracy, stride_err


def sweep_attitude_error(
    errors_rad: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    duration_s: float = 40.0,
    seed: int = 103,
) -> Tuple[List[Tuple[float, float, float]], Table]:
    """Residual attitude error of the platform filter (radians).

    The paper's pipeline trusts the platform's vertical; this sweep
    quantifies how much residual tilt the design tolerates.
    """
    user = make_users(1, seed)[0]
    rows: List[Tuple[float, float, float]] = []
    for error in errors_rad:
        device = WearableDevice(
            noise=NoiseModel.consumer_wrist(), attitude_error_rad=error
        )
        trace, truth = simulate_walk(
            user, duration_s, rng=np.random.default_rng(seed), device=device
        )
        accuracy, stride_err = _score(user, trace, truth)
        rows.append((error, accuracy, stride_err))
    table = Table(
        "Robustness: residual attitude error (rad)",
        ["attitude error", "step accuracy", "stride error (cm)"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_wrist_mount(
    mount_pitches_rad: Sequence[float] = (0.0, 0.15, 0.3, 0.5),
    duration_s: float = 40.0,
    seed: int = 30,
) -> Tuple[List[Tuple[float, float, float]], Table]:
    """How the watch sits on the wrist (static mount pitch), through
    the full raw -> attitude-filter path."""
    user = make_users(1, seed)[0]
    rows: List[Tuple[float, float, float]] = []
    for pitch in mount_pitches_rad:
        raw, truth, _ = simulate_walk_raw(
            user,
            duration_s,
            rng=np.random.default_rng(seed),
            mount_pitch_rad=pitch,
        )
        trace = recover_linear_acceleration(raw)
        accuracy, stride_err = _score(user, trace, truth)
        rows.append((pitch, accuracy, stride_err))
    table = Table(
        "Robustness: watch mount pitch (rad), raw device path",
        ["mount pitch", "step accuracy", "stride error (cm)"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_arm_lag(
    lags: Sequence[float] = (0.03, 0.05, 0.07, 0.09),
    duration_s: float = 40.0,
    seed: int = 109,
) -> Tuple[List[Tuple[float, float, float]], Table]:
    """The user's arm-gait phase lag — the quantity the bounce model
    (Eqs. 3-5) implicitly assumes small."""
    base = make_users(1, seed)[0]
    rows: List[Tuple[float, float, float]] = []
    for lag in lags:
        user = replace(base, arm_phase_lag=lag)
        trace, truth = simulate_walk(
            user, duration_s, rng=np.random.default_rng(seed)
        )
        accuracy, stride_err = _score(user, trace, truth)
        rows.append((lag, accuracy, stride_err))
    table = Table(
        "Robustness: arm-gait phase lag (cycle fraction)",
        ["arm lag", "step accuracy", "stride error (cm)"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_gyro_quality(
    gyro_sigmas: Sequence[float] = (0.0, 0.005, 0.02, 0.05),
    duration_s: float = 40.0,
    seed: int = 113,
) -> Tuple[List[Tuple[float, float, float]], Table]:
    """Gyroscope quality through the raw -> attitude path."""
    user = make_users(1, seed)[0]
    rows: List[Tuple[float, float, float]] = []
    for sigma in gyro_sigmas:
        raw, truth, _ = simulate_walk_raw(
            user,
            duration_s,
            rng=np.random.default_rng(seed),
            gyro_noise=GyroNoiseModel(white_sigma=sigma, bias_sigma=sigma / 2),
        )
        trace = recover_linear_acceleration(raw)
        accuracy, stride_err = _score(user, trace, truth)
        rows.append((sigma, accuracy, stride_err))
    table = Table(
        "Robustness: gyro white noise (rad/s), raw device path",
        ["gyro sigma", "step accuracy", "stride error (cm)"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def _score_degraded(
    user, samples: np.ndarray, truth, policy: FaultPolicy
) -> Tuple[float, float, "StreamingPTrack"]:
    """Serve one faulted trace through degraded-mode streaming ingest."""
    sess = StreamingPTrack(100.0, profile=user.profile, fault_policy=policy)
    steps, strides = sess.append(samples)
    tail_steps, tail_strides = sess.flush()
    steps.extend(tail_steps)
    strides.extend(tail_strides)
    accuracy = count_accuracy(len(steps), truth.step_count)
    lengths = np.array([s.length_m for s in strides])
    stride_err = (
        100.0 * float(np.mean(np.abs(lengths - user.stride_m)))
        if lengths.size
        else float("nan")
    )
    return accuracy, stride_err, sess


def sweep_dropout(
    dropout_probs: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    duration_s: float = 40.0,
    seed: int = 211,
) -> Tuple[List[Tuple[float, float, float, int, int]], Table]:
    """Step accuracy vs per-sample dropout probability.

    Samples are dropped i.i.d. (radio loss, sensor skips) by
    :class:`repro.faults.SampleDropout` and the trace is served through
    a degraded-mode :class:`StreamingPTrack`, so this measures the
    whole repair path: isolated holes are interpolated, runs longer
    than the policy's repair horizon reset segmentation.
    """
    user = make_users(1, seed)[0]
    trace, truth = simulate_walk(
        user, duration_s, rng=np.random.default_rng(seed)
    )
    policy = FaultPolicy()
    rows: List[Tuple[float, float, float, int, int]] = []
    for i, prob in enumerate(dropout_probs):
        faulted = inject_faults(
            trace.linear_acceleration, [SampleDropout(prob)], seed=seed, index=i
        )
        accuracy, stride_err, sess = _score_degraded(
            user, faulted, truth, policy
        )
        ops = sess.op_stats
        rows.append(
            (prob, accuracy, stride_err, ops.samples_repaired, ops.gaps_reset)
        )
    table = Table(
        "Robustness: sample dropout probability, degraded ingest",
        [
            "dropout prob",
            "step accuracy",
            "stride error (cm)",
            "repaired",
            "gap resets",
        ],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def sweep_clipping(
    limits_ms2: Sequence[float] = (40.0, 25.0, 15.0, 10.0, 6.0),
    duration_s: float = 40.0,
    seed: int = 223,
) -> Tuple[List[Tuple[float, float, float, int, int]], Table]:
    """Step accuracy vs accelerometer clipping severity.

    A cheap accelerometer saturates at its rail; lower limits clip more
    of the bounce waveform. The serving policy is told the same rail
    (``saturation_limit``), so clipped samples are quarantined and
    repaired rather than fed to segmentation as flat-topped cycles.
    """
    user = make_users(1, seed)[0]
    trace, truth = simulate_walk(
        user, duration_s, rng=np.random.default_rng(seed)
    )
    rows: List[Tuple[float, float, float, int, int]] = []
    for i, limit in enumerate(limits_ms2):
        faulted = inject_faults(
            trace.linear_acceleration, [Saturation(limit=limit)], seed=seed, index=i
        )
        policy = FaultPolicy(saturation_limit=limit)
        accuracy, stride_err, sess = _score_degraded(
            user, faulted, truth, policy
        )
        ops = sess.op_stats
        rows.append(
            (
                limit,
                accuracy,
                stride_err,
                ops.samples_repaired,
                ops.gaps_reset,
            )
        )
    table = Table(
        "Robustness: accelerometer rail (m/s^2), degraded ingest",
        [
            "clip limit",
            "step accuracy",
            "stride error (cm)",
            "repaired",
            "gap resets",
        ],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table
