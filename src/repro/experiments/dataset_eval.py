"""Evaluation over saved datasets (the offline workflow).

``python -m repro dataset`` writes labelled ``.npz`` sessions;
``evaluate_directory`` scores any collection of them — the workflow a
downstream user runs when swapping in their own recordings.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.pipeline import PTrack
from repro.eval.metrics import count_error_rate
from repro.eval.reporting import Table
from repro.exceptions import SignalError
from repro.sensing.io import load_session
from repro.simulation.scenarios import LabeledSession

__all__ = ["SessionScore", "evaluate_sessions", "evaluate_directory"]

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class SessionScore:
    """PTrack's score on one labelled session.

    Attributes:
        name: Session identifier (file stem for loaded sessions).
        counted: Steps PTrack reported.
        true: Ground-truth steps.
        error_rate: ``|counted - true| / true`` (NaN for stepless
            sessions).
        distance_m: Estimated distance.
        true_distance_m: Ground-truth distance.
        rejected_cycles: Candidate cycles rejected as interference.
    """

    name: str
    counted: int
    true: int
    error_rate: float
    distance_m: float
    true_distance_m: float
    rejected_cycles: int


def evaluate_sessions(
    sessions: Sequence[Tuple[str, LabeledSession]],
) -> Tuple[List[SessionScore], Table]:
    """Score PTrack on labelled sessions.

    Args:
        sessions: Pairs of (name, session).

    Returns:
        Tuple of (per-session scores + a TOTAL row in the table).

    Raises:
        SignalError: On an empty session list.
    """
    if not sessions:
        raise SignalError("no sessions to evaluate")
    scores: List[SessionScore] = []
    total_counted = total_true = 0
    total_distance = total_true_distance = 0.0
    for name, session in sessions:
        tracker = PTrack(profile=session.user.profile)
        result = tracker.track(session.trace)
        rejected = sum(
            1
            for c in result.classifications
            if c.gait_type.value == "interference"
        )
        true_steps = session.true_step_count
        scores.append(
            SessionScore(
                name=name,
                counted=result.step_count,
                true=true_steps,
                error_rate=(
                    count_error_rate(result.step_count, true_steps)
                    if true_steps > 0
                    else float("nan")
                ),
                distance_m=result.distance_m,
                true_distance_m=session.true_distance_m,
                rejected_cycles=rejected,
            )
        )
        total_counted += result.step_count
        total_true += true_steps
        total_distance += result.distance_m
        total_true_distance += session.true_distance_m

    table = Table(
        "PTrack over %d labelled sessions" % len(scores),
        ["session", "steps", "true", "err rate", "dist (m)", "true (m)", "rejected"],
    )
    for s in scores:
        table.add_row(
            s.name,
            s.counted,
            s.true,
            s.error_rate,
            s.distance_m,
            s.true_distance_m,
            s.rejected_cycles,
        )
    table.add_row(
        "TOTAL",
        total_counted,
        total_true,
        count_error_rate(total_counted, total_true) if total_true else float("nan"),
        total_distance,
        total_true_distance,
        sum(s.rejected_cycles for s in scores),
    )
    return scores, table


def evaluate_directory(path: PathLike) -> Tuple[List[SessionScore], Table]:
    """Score PTrack on every ``.npz`` session in a directory.

    Args:
        path: Directory containing session archives (as written by
            ``python -m repro dataset`` or
            :func:`repro.sensing.io.save_session`).

    Returns:
        Same as :func:`evaluate_sessions`.

    Raises:
        SignalError: When the directory holds no loadable sessions.
    """
    directory = pathlib.Path(path)
    sessions: List[Tuple[str, LabeledSession]] = []
    for archive in sorted(directory.glob("*.npz")):
        try:
            sessions.append((archive.stem, load_session(archive)))
        except SignalError:
            continue  # plain traces (no labels) are skipped
    if not sessions:
        raise SignalError(f"no labelled sessions found under {directory}")
    return evaluate_sessions(sessions)
