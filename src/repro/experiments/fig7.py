"""Fig. 7 — robustness to interference and spoofing.

(a) 60-second interfering activities (eating, poker, photo, games):
    GFit and Mtage mis-trigger 20-39 times; SCAR suppresses its trained
    activities but fails on the withheld "photo" (~26); PTrack stays at
    0-2.
(b) A 60-second spoofing run: GFit/Mtage/SCAR tick 79/78/61 times;
    PTrack 0.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines.scar import ScarStepCounter
from repro.eval.reporting import Table
from repro.experiments.common import count_with, make_users, train_scar
from repro.runtime import derive_rng, parallel_map
from repro.simulation.activities import simulate_interference
from repro.simulation.spoofer import simulate_spoofer
from repro.types import ActivityKind

__all__ = ["run_interference", "run_spoofing", "PAPER_INTERFERENCE", "PAPER_SPOOF"]

#: Fig. 7(a) approximate paper mis-counts per 60 s.
PAPER_INTERFERENCE = {
    ("gfit", "eating"): 26,
    ("mtage", "eating"): 28,
    ("gfit", "poker"): 29,
    ("mtage", "poker"): 26,
    ("gfit", "photo"): 25,
    ("mtage", "photo"): 21,
    ("gfit", "game"): 39,
    ("mtage", "game"): 36,
    ("scar", "eating"): 0,
    ("scar", "poker"): 2,
    ("scar", "photo"): 26,
    ("scar", "game"): 0,
    ("ptrack", "eating"): 0,
    ("ptrack", "poker"): 0,
    ("ptrack", "photo"): 0,
    ("ptrack", "game"): 2,
}

#: Fig. 7(b) paper spoofing ticks per 60 s.
PAPER_SPOOF = {"gfit": 79, "mtage": 78, "scar": 61, "ptrack": 0}

_ACTIVITIES = (
    ActivityKind.EATING,
    ActivityKind.POKER,
    ActivityKind.PHOTO,
    ActivityKind.GAME,
)


def _interference_task(
    item: Tuple[int, int, float, int, ScarStepCounter],
) -> Dict[Tuple[str, str], int]:
    """One (trial, activity) cell of Fig. 7(a) (module-level for workers)."""
    trial, activity_idx, duration_s, seed, scar = item
    activity = _ACTIVITIES[activity_idx]
    rng = derive_rng(seed, trial, activity_idx)
    trace = simulate_interference(activity, duration_s, rng=rng)
    return {
        (system, activity.value): count_with(system, trace, scar=scar)
        for system in ("gfit", "mtage", "scar", "ptrack")
    }


def run_interference(
    duration_s: float = 60.0,
    seed: int = 41,
    n_trials: int = 2,
    workers: Optional[int] = None,
) -> Tuple[Dict[Tuple[str, str], float], Table]:
    """Fig. 7(a): mis-counts of all four systems per activity.

    SCAR's training set deliberately omits "photo", matching the
    paper's protocol. SCAR is trained once in the parent; each
    (trial, activity) cell then runs from a generator derived from
    ``(seed, trial, activity)``, so the grid can be evaluated by any
    number of workers without changing the result.

    Returns:
        Tuple of (mean mis-count per (system, activity), table).
    """
    rng = np.random.default_rng(seed)
    user = make_users(1, seed)[0]
    scar = train_scar(user, rng)
    cells = parallel_map(
        _interference_task,
        [
            (trial, activity_idx, duration_s, seed, scar)
            for trial in range(n_trials)
            for activity_idx in range(len(_ACTIVITIES))
        ],
        workers=workers,
    )
    sums: Dict[Tuple[str, str], list] = {}
    for cell in cells:
        for key, counted in cell.items():
            sums.setdefault(key, []).append(counted)
    means = {key: float(np.mean(vals)) for key, vals in sums.items()}
    table = Table(
        "Fig. 7(a): false steps per %.0f s (mean of %d trials)"
        % (duration_s, n_trials),
        ["activity", "system", "measured", "paper"],
    )
    for activity in _ACTIVITIES:
        for system in ("gfit", "mtage", "scar", "ptrack"):
            table.add_row(
                activity.value,
                system,
                means[(system, activity.value)],
                PAPER_INTERFERENCE[(system, activity.value)],
            )
    return means, table


def run_spoofing(
    duration_s: float = 60.0,
    seed: int = 43,
) -> Tuple[Dict[str, int], Table]:
    """Fig. 7(b): spoofing ticks of all four systems.

    Returns:
        Tuple of (ticks per system, table).
    """
    rng = np.random.default_rng(seed)
    user = make_users(1, seed)[0]
    scar = train_scar(user, rng)
    trace = simulate_spoofer(duration_s, rng=rng)
    ticks = {
        system: count_with(system, trace, scar=scar)
        for system in ("gfit", "mtage", "scar", "ptrack")
    }
    table = Table(
        "Fig. 7(b): spoofing ticks per %.0f s" % duration_s,
        ["system", "measured", "paper"],
    )
    for system, t in ticks.items():
        table.add_row(system, t, PAPER_SPOOF[system])
    return ticks, table
