"""Heading estimation from wrist accelerations.

SIII-B2 of the paper recovers the anterior *axis* from the horizontal
acceleration cloud but leaves its 180-degree sign ambiguity open ("the
shape of accelerations projected to the horizontal plane already
indicates the moving direction"). This module completes the story for
the dead-reckoning application:

* the anterior axis per cycle comes from the same total-least-squares
  fit the step counter uses;
* the sign is resolved by *walking continuity*: people do not reverse
  direction between consecutive gait cycles, so each cycle picks the
  sign closest to the previous heading, and the first cycle picks the
  sign that makes the forward-velocity asymmetry positive (push-off
  skews the anterior acceleration distribution toward the direction of
  travel).

The result is a per-sample heading track usable directly by
:class:`repro.apps.deadreckoning.DeadReckoner` in place of a
compass/gyro fusion source.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PTrackConfig
from repro.exceptions import SignalError
from repro.sensing.imu import IMUTrace
from repro.signal.filters import butter_lowpass
from repro.signal.projection import anterior_direction, project_horizontal
from repro.signal.segmentation import segment_gait_cycles
from repro.types import CycleClassification, GaitType

__all__ = ["HeadingEstimator", "estimate_headings"]


def _wrap(angle: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    return float(np.arctan2(np.sin(angle), np.cos(angle)))


def _angular_distance(a: float, b: float) -> float:
    """Absolute circular distance between two angles."""
    return abs(_wrap(a - b))


class HeadingEstimator:
    """Per-cycle heading from horizontal accelerations.

    Args:
        config: PTrack configuration (shared filter/segmentation
            settings so headings align with the counter's cycles).
        initial_heading_rad: Optional prior for the first cycle; when
            absent, the skewness disambiguation decides alone.
    """

    def __init__(
        self,
        config: Optional[PTrackConfig] = None,
        initial_heading_rad: Optional[float] = None,
    ) -> None:
        self._config = config if config is not None else PTrackConfig()
        self._initial = initial_heading_rad

    def estimate(
        self,
        trace: IMUTrace,
        classifications: Optional[Sequence[CycleClassification]] = None,
    ) -> np.ndarray:
        """Per-sample heading track for a trace.

        Args:
            trace: The observed wrist trace.
            classifications: Optional cycle decisions from the step
                counter; when given, only confirmed pedestrian cycles
                contribute headings (interference cycles would point
                anywhere). Without them, every candidate cycle is used.

        Returns:
            Array of shape (n_samples,): the estimated heading in
            radians, piecewise per cycle and held between cycles.
        """
        cfg = self._config
        filtered = butter_lowpass(
            trace.linear_acceleration, cfg.lowpass_cutoff_hz, trace.sample_rate_hz
        )
        horizontal = filtered[:, :2]

        ranges: List[Tuple[int, int]]
        if classifications is not None:
            ranges = [
                (c.start_index, c.end_index)
                for c in classifications
                if c.gait_type is not GaitType.INTERFERENCE
            ]
        else:
            cycles = segment_gait_cycles(
                filtered[:, 2],
                trace.sample_rate_hz,
                cfg.min_step_rate_hz,
                cfg.max_step_rate_hz,
                cfg.min_peak_prominence,
            )
            ranges = [(seg.start, seg.end) for seg in cycles]

        # Per-cycle axes and skews for confident cycles.
        cycles: List[Tuple[int, int, np.ndarray, float]] = []
        for start, end in ranges:
            window = horizontal[start:end]
            if not self._is_confident(window):
                # Turn-transition cycles mix two orientations into a
                # near-isotropic cloud whose fitted axis is arbitrary;
                # emitting it would poison the sign chain.
                continue
            try:
                axis = anterior_direction(window)
            except SignalError:
                continue
            projected = project_horizontal(window, axis)
            centred = projected - projected.mean()
            scale = centred.std()
            skew = float(np.mean((centred / scale) ** 3)) if scale > 1e-9 else 0.0
            cycles.append((start, end, axis, skew))

        # Group cycles into runs of continuous *line* orientation
        # (orientation is mod pi: the sign is exactly what is unknown).
        runs: List[List[Tuple[int, int, np.ndarray, float]]] = []
        for cycle in cycles:
            if runs and self._same_line(runs[-1][-1][2], cycle[2]):
                runs[-1].append(cycle)
            else:
                runs.append([cycle])
        # Orphan transition cycles (a single cycle straddling a turn
        # fits an in-between axis) must not seed sign decisions: merge
        # them into the following run when one exists.
        merged: List[List[Tuple[int, int, np.ndarray, float]]] = []
        for run in runs:
            if merged and len(merged[-1]) == 1 and len(run) > 1:
                merged[-1] = merged[-1] + run
            else:
                merged.append(run)
        runs = merged

        # Decide each run's sign from its aggregated skew: averaging
        # over the run's cycles makes the weak per-cycle cue reliable
        # (single-cycle skews mis-sign ~15% of the time for gentle
        # walkers; run means essentially never do). Continuity with the
        # previous run only breaks genuine ties.
        headings = np.full(trace.n_samples, np.nan)
        previous = self._initial
        for run in runs:
            # The run's reference orientation is the principal axis of
            # the orientation tensor over its cycles — robust to one
            # transition cycle with an in-between axis.
            tensor = sum(np.outer(c[2], c[2]) for c in run)
            eigvals, eigvecs = np.linalg.eigh(tensor)
            reference = eigvecs[:, -1]
            aligned_skews = []
            for _, _, axis, skew in run:
                if not self._same_line(axis, reference):
                    # Merged turn-transition cycles keep their heading
                    # output but contribute no sign evidence: their
                    # axis is off the run's line and their (often
                    # violent) skew would poison the aggregate.
                    continue
                sign = 1.0 if float(axis @ reference) >= 0 else -1.0
                aligned_skews.append(sign * skew)
            mean_skew = float(np.mean(aligned_skews)) if aligned_skews else 0.0
            heading = float(np.arctan2(reference[1], reference[0]))
            flipped = _wrap(heading + np.pi)
            # Fuse the two sign cues additively rather than gating:
            # * skew — the anterior acceleration's long tail points
            #   *backward* (the forward-biased swing brakes sharply at
            #   the front), so negative aligned skew favours the
            #   reference direction; weight 5 makes a clear skew
            #   (|mean| ~ 0.15) dominate, while a faint one (~0.01)
            #   still arbitrates when continuity is blind;
            # * continuity — cos(candidate - previous heading), which
            #   is decisive on straight runs and exactly zero at the
            #   90-degree turns where it carries no information.
            skew_weight = 5.0
            score_keep = -mean_skew * skew_weight
            score_flip = mean_skew * skew_weight
            if previous is not None:
                score_keep += float(np.cos(heading - previous))
                score_flip += float(np.cos(flipped - previous))
            chosen = heading if score_keep >= score_flip else flipped
            for start, end, axis, _ in run:
                # Each cycle keeps its own axis orientation (runs drift
                # slightly), projected onto the hemisphere the run's
                # sign decision selected.
                axis_heading = float(np.arctan2(axis[1], axis[0]))
                if _angular_distance(axis_heading, chosen) > np.pi / 2:
                    axis_heading = _wrap(axis_heading + np.pi)
                headings[start:end] = axis_heading
            previous = chosen

        return self._fill(headings, previous)

    @staticmethod
    def _same_line(a: np.ndarray, b: np.ndarray, tol_rad: float = np.pi / 6) -> bool:
        """Whether two axes describe the same line within ``tol_rad``."""
        cos_angle = abs(float(a @ b)) / (
            float(np.linalg.norm(a)) * float(np.linalg.norm(b))
        )
        return cos_angle >= np.cos(tol_rad)

    @staticmethod
    def _is_confident(window: np.ndarray, min_anisotropy: float = 20.0) -> bool:
        """Whether the horizontal cloud has one dominant direction."""
        if window.shape[0] < 3:
            return False
        centred = window - window.mean(axis=0)
        eigvals = np.linalg.eigvalsh(centred.T @ centred)
        if eigvals[-1] <= 0:
            return False
        return eigvals[-1] >= min_anisotropy * max(eigvals[0], 1e-12)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _disambiguate(
        self,
        heading: float,
        window: np.ndarray,
        axis: np.ndarray,
        previous: Optional[float],
    ) -> float:
        """Resolve the 180-degree ambiguity of the fitted axis.

        Two cues are available:

        * **skew** — the anterior acceleration is skewed *against* the
          travel direction (the forward-biased arm swing accelerates
          gently backward for most of the cycle and brakes sharply at
          the front, so the distribution's long tail points backward);
          direction-correct on its own, but weak on some cycles;
        * **continuity** — people rarely reverse between consecutive
          cycles; reliable on straight legs, *wrong* for turns sharper
          than 90 degrees (where the flipped sign is angularly closer
          to the previous heading).

        A strong skew therefore decides outright; continuity only
        breaks the tie when the skew is too weak to trust.
        """
        flipped = _wrap(heading + np.pi)
        projected = project_horizontal(window, axis)
        centred = projected - projected.mean()
        scale = centred.std()
        skew = (
            float(np.mean((centred / scale) ** 3)) if scale > 1e-9 else 0.0
        )
        if abs(skew) >= 0.1 or previous is None:
            return heading if skew <= 0 else flipped
        keep = _angular_distance(heading, previous)
        flip = _angular_distance(flipped, previous)
        return heading if keep <= flip else flipped

    @staticmethod
    def _fill(headings: np.ndarray, last: Optional[float]) -> np.ndarray:
        """Hold headings across gaps (fill NaNs forward, then back)."""
        n = headings.size
        out = headings.copy()
        current = np.nan
        for i in range(n):
            if np.isnan(out[i]):
                out[i] = current
            else:
                current = out[i]
        # Leading gap: backfill from the first estimate (or prior).
        if np.isnan(out[0]):
            first = next((v for v in out if not np.isnan(v)), None)
            if first is None:
                first = last if last is not None else 0.0
            out[np.isnan(out)] = first
        return out


def estimate_headings(
    trace: IMUTrace,
    classifications: Optional[Sequence[CycleClassification]] = None,
    config: Optional[PTrackConfig] = None,
    initial_heading_rad: Optional[float] = None,
) -> np.ndarray:
    """Convenience wrapper around :class:`HeadingEstimator`."""
    return HeadingEstimator(config, initial_heading_rad).estimate(
        trace, classifications
    )
