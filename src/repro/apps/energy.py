"""Energy-aware localisation — the paper's motivating trade (SI).

The introduction motivates pedestrian tracking for "location-based
service designs using dead-reckoning to improve the energy efficiency
by accessing energy-consuming sensors less, e.g., GPS and WiFi". This
module quantifies that trade: a localisation client that takes a GPS
fix every ``T`` seconds and either

* **holds** the last fix between fixes (the no-DR baseline), or
* **dead-reckons** between fixes with PTrack steps + strides + heading,
  re-anchoring at every fix,

pays the same GPS energy but very different position error — or,
equivalently, reaches the same error with far fewer fixes.

Power numbers are parameters with defaults in the range wearable
literature reports (GPS fix ~ 1 J amortised; IMU + processing ~ 30 mW
continuous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import PTrack
from repro.exceptions import ConfigurationError
from repro.sensing.imu import IMUTrace
from repro.simulation.walker import WalkGroundTruth

__all__ = ["EnergyModel", "LocalizationOutcome", "evaluate_duty_cycle"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy accounting for a duty-cycled localisation client.

    Attributes:
        gps_fix_j: Energy of acquiring one GPS fix (joules; includes
            amortised warm-up).
        imu_w: Continuous power of sampling + processing the IMU.
        gps_position_sigma_m: Standard deviation of a GPS fix's
            position error.
    """

    gps_fix_j: float = 1.0
    imu_w: float = 0.03
    gps_position_sigma_m: float = 3.0

    def __post_init__(self) -> None:
        if self.gps_fix_j <= 0 or self.imu_w < 0 or self.gps_position_sigma_m < 0:
            raise ConfigurationError("invalid energy-model parameters")


@dataclass(frozen=True)
class LocalizationOutcome:
    """Error/energy outcome of one strategy at one duty cycle.

    Attributes:
        strategy: ``"hold"`` or ``"dead-reckon"``.
        fix_interval_s: Seconds between GPS fixes.
        mean_error_m: Mean position error over the walk.
        p95_error_m: 95th-percentile position error.
        energy_j: Total energy spent over the walk.
        energy_mw: Average power (mW) over the walk.
    """

    strategy: str
    fix_interval_s: float
    mean_error_m: float
    p95_error_m: float
    energy_j: float
    energy_mw: float


def _gps_fix(
    truth: WalkGroundTruth,
    index: int,
    sigma: float,
    rng: Optional[np.random.Generator],
) -> np.ndarray:
    position = truth.body_positions_m[index, :2].copy()
    if rng is not None and sigma > 0:
        position = position + rng.normal(0.0, sigma, size=2)
    return position


def evaluate_duty_cycle(
    tracker: PTrack,
    trace: IMUTrace,
    truth: WalkGroundTruth,
    fix_interval_s: float,
    energy: Optional[EnergyModel] = None,
    rng: Optional[np.random.Generator] = None,
    heading_noise_rad: float = 0.03,
) -> Tuple[LocalizationOutcome, LocalizationOutcome]:
    """Evaluate hold vs dead-reckon at one GPS duty cycle.

    Args:
        tracker: Profile-carrying PTrack (used by the DR strategy).
        trace: Wrist trace of the walk.
        truth: Ground truth (positions anchor the simulated GPS).
        fix_interval_s: Seconds between GPS fixes.
        energy: Energy model.
        rng: Generator for GPS noise and heading noise.
        heading_noise_rad: Heading-source noise for the DR strategy.

    Returns:
        Tuple ``(hold_outcome, dead_reckon_outcome)``.

    Raises:
        ConfigurationError: For a non-positive fix interval.
    """
    if fix_interval_s <= 0:
        raise ConfigurationError("fix_interval_s must be positive")
    model = energy if energy is not None else EnergyModel()
    duration = trace.duration_s
    n = trace.n_samples
    rate = trace.sample_rate_hz

    fix_indices = [
        min(int(round(t * rate)), n - 1)
        for t in np.arange(0.0, duration, fix_interval_s)
    ]
    n_fixes = len(fix_indices)

    # Evaluation grid: once per second.
    eval_indices = np.arange(0, n, int(rate))
    true_positions = truth.body_positions_m[eval_indices, :2]

    # Strategy 1: hold the last fix.
    hold_positions = np.empty_like(true_positions)
    fixes = [
        _gps_fix(truth, i, model.gps_position_sigma_m, rng) for i in fix_indices
    ]
    fix_pointer = 0
    for row, idx in enumerate(eval_indices):
        while (
            fix_pointer + 1 < n_fixes and fix_indices[fix_pointer + 1] <= idx
        ):
            fix_pointer += 1
        hold_positions[row] = fixes[fix_pointer]
    hold_err = np.linalg.norm(hold_positions - true_positions, axis=1)

    # Strategy 2: dead-reckon between fixes, re-anchoring at each.
    result = tracker.track(trace)
    stride_times = np.array([s.time for s in result.strides])
    stride_lengths = np.array([s.length_m for s in result.strides])
    headings = truth.headings_rad.copy()
    if rng is not None and heading_noise_rad > 0:
        headings = headings + rng.normal(0.0, heading_noise_rad, size=n)

    dr_positions = np.empty_like(true_positions)
    fix_pointer = 0
    anchor = fixes[0].copy()
    anchor_time = trace.start_time + fix_indices[0] / rate
    consumed = 0  # strides already folded into the anchor
    position = anchor.copy()
    for row, idx in enumerate(eval_indices):
        now = trace.start_time + idx / rate
        while (
            fix_pointer + 1 < n_fixes
            and trace.start_time + fix_indices[fix_pointer + 1] / rate <= now
        ):
            fix_pointer += 1
            anchor = fixes[fix_pointer].copy()
            anchor_time = trace.start_time + fix_indices[fix_pointer] / rate
            consumed = int(np.searchsorted(stride_times, anchor_time))
            position = anchor.copy()
        # Advance by the strides since the last update.
        upto = int(np.searchsorted(stride_times, now))
        for s in range(consumed, upto):
            sample = trace.index_at_time(stride_times[s])
            heading = headings[min(sample, n - 1)]
            position = position + stride_lengths[s] * np.array(
                [np.cos(heading), np.sin(heading)]
            )
        consumed = upto
        dr_positions[row] = position
    dr_err = np.linalg.norm(dr_positions - true_positions, axis=1)

    gps_energy = n_fixes * model.gps_fix_j

    def _outcome(strategy: str, errors: np.ndarray, imu_on: bool) -> LocalizationOutcome:
        total = gps_energy + (model.imu_w * duration if imu_on else 0.0)
        return LocalizationOutcome(
            strategy=strategy,
            fix_interval_s=fix_interval_s,
            mean_error_m=float(errors.mean()),
            p95_error_m=float(np.percentile(errors, 95)),
            energy_j=total,
            energy_mw=1000.0 * total / duration,
        )

    return _outcome("hold", hold_err, False), _outcome(
        "dead-reckon", dr_err, True
    )
