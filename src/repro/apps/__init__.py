"""Applications built on the PTrack public API.

* :mod:`repro.apps.deadreckoning` — the indoor-navigation case study
  of Fig. 9: step + stride + heading integrated into a trajectory.
* :mod:`repro.apps.fitness` — the daily-fitness aggregation the
  paper's introduction motivates (healthcare / insurance assessment):
  trustworthy step and distance totals over mixed-activity days.
"""

from repro.apps.deadreckoning import DeadReckoner, NavigationReport, navigate_route
from repro.apps.energy import EnergyModel, LocalizationOutcome, evaluate_duty_cycle
from repro.apps.fitness import DailyFitnessReport, FitnessTracker
from repro.apps.heading import HeadingEstimator, estimate_headings

__all__ = [
    "DailyFitnessReport",
    "DeadReckoner",
    "EnergyModel",
    "FitnessTracker",
    "LocalizationOutcome",
    "evaluate_duty_cycle",
    "HeadingEstimator",
    "NavigationReport",
    "estimate_headings",
    "navigate_route",
]
