"""Dead-reckoning navigation on top of PTrack (the Fig. 9 case study).

Dead-reckoning advances a position estimate by one stride along the
current heading at every counted step. Step times and stride lengths
come from PTrack; heading comes from whatever heading source the host
platform has (compass/gyro fusion) — here modelled as the true heading
plus configurable noise, since heading estimation is orthogonal to the
paper's contribution.

The paper's case study walks a 141.5 m route (A to G, five markers,
crossing a 4 m corridor twice) through a shopping centre; PTrack's
tracked distance is 136.4 m and the per-step error along the route is
5.1 cm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.pipeline import PTrack
from repro.exceptions import ConfigurationError
from repro.sensing.imu import IMUTrace
from repro.simulation.routes import Route
from repro.simulation.walker import WalkGroundTruth
from repro.types import TrackingResult

__all__ = ["DeadReckoner", "NavigationReport", "navigate_route"]


@dataclass(frozen=True)
class NavigationReport:
    """Outcome of one dead-reckoned navigation run.

    Attributes:
        positions_m: Estimated positions after each step, shape (S, 2).
        step_times: Timestamps of the steps used.
        tracked_distance_m: Sum of stride lengths along the run.
        true_distance_m: Ground-truth route distance walked.
        final_error_m: Distance between the estimated and true end
            positions.
        mean_position_error_m: Mean step-wise position error against
            the interpolated true path (NaN when truth is unavailable).
    """

    positions_m: np.ndarray
    step_times: np.ndarray
    tracked_distance_m: float
    true_distance_m: float
    final_error_m: float
    mean_position_error_m: float


class DeadReckoner:
    """Stride-and-heading dead reckoning.

    Args:
        tracker: A profile-carrying :class:`PTrack` instance.
        heading_noise_rad: Standard deviation of per-step heading
            noise, modelling compass/gyro imperfection.
    """

    def __init__(self, tracker: PTrack, heading_noise_rad: float = 0.03) -> None:
        if tracker.profile is None:
            raise ConfigurationError("dead reckoning needs a PTrack with a profile")
        if heading_noise_rad < 0:
            raise ConfigurationError("heading_noise_rad must be >= 0")
        self._tracker = tracker
        self._heading_noise_rad = heading_noise_rad

    def reckon(
        self,
        trace: IMUTrace,
        headings_rad: np.ndarray,
        start_xy: Tuple[float, float] = (0.0, 0.0),
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, TrackingResult]:
        """Integrate strides along headings into a trajectory.

        Args:
            trace: The observed wrist trace.
            headings_rad: Per-sample heading of the walk (the heading
                source's output), shape (trace.n_samples,).
            start_xy: Starting position.
            rng: Generator for heading noise; ``None`` disables it.

        Returns:
            Tuple ``(positions, tracking_result)`` where ``positions``
            has one row per stride estimate (the position *after* that
            step), starting from ``start_xy``.
        """
        headings = np.asarray(headings_rad, dtype=float)
        if headings.shape != (trace.n_samples,):
            raise ConfigurationError(
                f"headings must have shape ({trace.n_samples},), got {headings.shape}"
            )
        result = self._tracker.track(trace)
        pos = np.asarray(start_xy, dtype=float)
        rows: List[np.ndarray] = []
        for stride in result.strides:
            idx = trace.index_at_time(stride.time)
            heading = headings[idx]
            if rng is not None and self._heading_noise_rad > 0:
                heading = heading + rng.normal(0.0, self._heading_noise_rad)
            pos = pos + stride.length_m * np.array([np.cos(heading), np.sin(heading)])
            rows.append(pos.copy())
        positions = np.vstack(rows) if rows else np.empty((0, 2))
        return positions, result


def _true_position_at(truth: WalkGroundTruth, t: float, t0: float) -> np.ndarray:
    """Ground-truth planar position at absolute time ``t``."""
    idx = int(round((t - t0) * truth.sample_rate_hz))
    idx = min(max(idx, 0), truth.body_positions_m.shape[0] - 1)
    return truth.body_positions_m[idx, :2]


def navigate_route(
    tracker: PTrack,
    trace: IMUTrace,
    truth: WalkGroundTruth,
    route: Route,
    heading_noise_rad: float = 0.03,
    rng: Optional[np.random.Generator] = None,
    heading_source: str = "platform",
) -> NavigationReport:
    """Run the full Fig. 9 protocol: walk a route, dead-reckon it.

    Args:
        tracker: Profile-carrying PTrack.
        trace: Wrist trace of the walk (from
            :func:`repro.simulation.routes.walk_route`).
        truth: Matching ground truth.
        route: The walked route (for the start position).
        heading_noise_rad: Heading-source noise level (platform mode).
        rng: Generator for heading noise.
        heading_source: ``"platform"`` uses the device's compass/gyro
            fusion (modelled as truth + noise, the paper's setting);
            ``"inertial"`` estimates headings from the accelerations
            themselves via :class:`repro.apps.heading.HeadingEstimator`
            (an extension — no heading hardware needed, only the
            route's initial bearing as a prior).

    Returns:
        A :class:`NavigationReport`.

    Raises:
        ConfigurationError: For an unknown ``heading_source``.
    """
    if heading_source == "platform":
        headings = truth.headings_rad
        noise = heading_noise_rad
    elif heading_source == "inertial":
        from repro.apps.heading import HeadingEstimator

        classifications = tracker.track(trace).classifications
        estimator = HeadingEstimator(
            tracker.config, initial_heading_rad=float(truth.headings_rad[0])
        )
        headings = estimator.estimate(trace, classifications)
        noise = 0.0  # estimation error is already in the headings
    else:
        raise ConfigurationError(
            f"heading_source must be 'platform' or 'inertial', got {heading_source!r}"
        )
    reckoner = DeadReckoner(tracker, noise)
    start = tuple(route.waypoints[0])
    positions, result = reckoner.reckon(trace, headings, start, rng)

    step_times = np.asarray([s.time for s in result.strides])
    tracked = float(sum(s.length_m for s in result.strides))
    true_dist = truth.total_distance_m

    if positions.shape[0] > 0:
        t0 = trace.start_time
        errors = [
            float(np.linalg.norm(positions[i] - _true_position_at(truth, t, t0)))
            for i, t in enumerate(step_times)
        ]
        mean_err = float(np.mean(errors))
        final_err = float(
            np.linalg.norm(positions[-1] - truth.body_positions_m[-1, :2])
        )
    else:
        mean_err = float("nan")
        final_err = float("nan")

    return NavigationReport(
        positions_m=positions,
        step_times=step_times,
        tracked_distance_m=tracked,
        true_distance_m=true_dist,
        final_error_m=final_err,
        mean_position_error_m=mean_err,
    )
