"""Daily-fitness aggregation — the paper's motivating application.

Healthcare programmes and insurance customer assessments (SI) need
step counts that *truthfully* reflect activity: a counter that ticks
through lunch and card games (or through a spoofing rig) is useless as
evidence. This module aggregates PTrack output over a day of
mixed-activity sessions into the report such a programme would consume,
including the gait-type breakdown that makes the numbers auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import PTrack
from repro.sensing.imu import IMUTrace
from repro.types import GaitType, TrackingResult

__all__ = ["DailyFitnessReport", "FitnessTracker"]


@dataclass(frozen=True)
class DailyFitnessReport:
    """Aggregated fitness statistics over one or more sessions.

    Attributes:
        total_steps: Steps counted across all sessions.
        walking_steps: Steps attributed to walking cycles.
        stepping_steps: Steps attributed to stepping cycles.
        distance_m: Total walked distance (0 when no profile).
        rejected_cycles: Gait-cycle candidates rejected as
            interference — the auditability signal: a day consisting
            mostly of rejected cycles had little genuine walking no
            matter what a naive counter would have said.
        sessions: Number of sessions aggregated.
        active_time_s: Total duration of the analysed sessions.
    """

    total_steps: int
    walking_steps: int
    stepping_steps: int
    distance_m: float
    rejected_cycles: int
    sessions: int
    active_time_s: float

    @property
    def average_stride_m(self) -> float:
        """Mean stride length implied by the totals (0 when stepless)."""
        return self.distance_m / self.total_steps if self.total_steps else 0.0


class FitnessTracker:
    """Day-level aggregation of PTrack results.

    Args:
        tracker: The underlying :class:`PTrack` (profile optional;
            without one, distances are reported as zero).
    """

    def __init__(self, tracker: PTrack) -> None:
        self._tracker = tracker
        self._results: List[TrackingResult] = []
        self._duration_s = 0.0

    def add_session(self, trace: IMUTrace) -> TrackingResult:
        """Process one session trace and fold it into the day.

        Returns:
            The session's own :class:`TrackingResult`.
        """
        result = self._tracker.track(trace)
        self._results.append(result)
        self._duration_s += trace.duration_s
        return result

    def reset(self) -> None:
        """Drop all aggregated sessions (start a new day)."""
        self._results.clear()
        self._duration_s = 0.0

    def report(self) -> DailyFitnessReport:
        """The aggregated daily report."""
        by_gait: Dict[GaitType, int] = {g: 0 for g in GaitType}
        rejected = 0
        distance = 0.0
        for result in self._results:
            for step in result.steps:
                by_gait[step.gait_type] = by_gait.get(step.gait_type, 0) + 1
            rejected += sum(
                1
                for c in result.classifications
                if c.gait_type is GaitType.INTERFERENCE
            )
            distance += result.distance_m
        walking = by_gait.get(GaitType.WALKING, 0)
        stepping = by_gait.get(GaitType.STEPPING, 0)
        return DailyFitnessReport(
            total_steps=walking + stepping,
            walking_steps=walking,
            stepping_steps=stepping,
            distance_m=distance,
            rejected_cycles=rejected,
            sessions=len(self._results),
            active_time_s=self._duration_s,
        )
