"""Bounded-memory incremental self-training.

The paper's §3 procedure is a batch optimisation over a pile of
calibration traces. A serving fleet never has the pile — it has a
stream of credited cycles per user, arriving over weeks. This module
closes that gap: :class:`IncrementalSelfTrainer` accumulates the
*sufficient statistics* of the batch procedure (observation multisets
for Step 1, per-walk observation lists for Step 2) so that training at
any moment is exactly the batch solve over everything observed so far.

**Exact mode** (the default, ``resolution_m=None``) keeps observation
values unquantised; :meth:`train` is then bit-identical to running
:class:`repro.core.selftrain.SelfTrainer` over the same observations in
any arrival order or chunking — the multiset medians reproduce
``np.median`` exactly and every other reduction in the shared cores of
:mod:`repro.core.selftrain` is order-invariant by construction (see
``tests/test_profiles_trainer.py`` for the hypothesis suite pinning
this).

**Quantised mode** (``resolution_m > 0``) rounds stepping bounces and
walking moment triples onto a fixed lattice so the Step-1 multisets
stay bounded no matter how long the stream runs. The documented
tolerance: each quantised value moves by at most ``resolution_m / 2``,
so the stepping anchor (a median of quantised values) moves by at most
``resolution_m / 2``, and the selected ``m̂`` by at most one arm-grid
step (5 mm by default) for the default paper grids.

Memory is bounded on the walk side too: at most ``max_walks``
referenced walks are retained (oldest dropped first — the staleness
policy, since recent walks reflect the user's current gait) and each
walk keeps at most ``max_cycles_per_walk`` observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import PTrackConfig
from repro.core.selftrain import (
    arm_length_from_counts,
    bounces_from_observations,
    leg_length_from_walk_bounces,
)
from repro.exceptions import CalibrationError, ConfigurationError
from repro.types import CycleObservation, GaitType, UserProfile

__all__ = ["IncrementalSelfTrainer", "ProfileEstimate"]

#: trainer_state layout version (inside ``ptrack-profile-v1`` records).
_STATE_VERSION = 1


@dataclass(frozen=True)
class ProfileEstimate:
    """Best-effort output of :meth:`IncrementalSelfTrainer.estimate`.

    Attributes:
        arm_length_m: The Step-1 arm length ``m̂``.
        leg_length_m: The Step-2 leg length ``l̂``; ``None`` while the
            referenced walks are insufficient.
        calibration_k: The fitted ``k``; ``None`` with ``leg_length_m``.
        profile: The full trained profile when both steps converged,
            else ``None``.
        observations: Total observations consumed so far.
        referenced_walks: Retained distance-referenced walks.
        confidence: Evidence score in ``[0, 1]`` (see
            :meth:`IncrementalSelfTrainer.confidence`).
        exact: ``True`` when the trainer runs unquantised and the
            estimate is bit-identical to the batch solve.
    """

    arm_length_m: float
    leg_length_m: Optional[float]
    calibration_k: Optional[float]
    profile: Optional[UserProfile]
    observations: int
    referenced_walks: int
    confidence: float
    exact: bool


class IncrementalSelfTrainer:
    """Streaming §3 self-training from running sufficient statistics.

    Feed unreferenced cycle observations (streaming credits, Step-1
    anchor evidence) through :meth:`observe` and distance-referenced
    calibration walks through :meth:`observe_walk`; call :meth:`train`
    (strict, batch-equivalent) or :meth:`estimate` (best effort)
    whenever a profile is wanted. The trainer is cheap to keep per
    user: observation time is O(1) dictionary updates, all grid solves
    are deferred to training time.

    Args:
        config: Pipeline configuration (kept for parity with the batch
            trainer's extraction helpers; the trainer itself consumes
            pre-extracted observations).
        min_cycles: Minimum usable cycles per gait type (Step 1) and
            across walks (Step 2) — same meaning as the batch trainer.
        arm_grid_m: Optional explicit Step-1 search grid.
        leg_grid_m: Optional explicit Step-2 search grid.
        resolution_m: Observation quantisation lattice; ``None`` keeps
            exact values (bit-identical to batch, unbounded distinct
            keys), a positive value bounds Step-1 memory with the
            tolerance documented in the module docstring.
        max_walks: Referenced walks retained; beyond it the *oldest*
            walk is dropped (recency-weighted staleness policy).
        max_cycles_per_walk: Observations kept per referenced walk.
    """

    def __init__(
        self,
        config: Optional[PTrackConfig] = None,
        min_cycles: int = 8,
        arm_grid_m: Optional[np.ndarray] = None,
        leg_grid_m: Optional[np.ndarray] = None,
        resolution_m: Optional[float] = None,
        max_walks: int = 64,
        max_cycles_per_walk: int = 512,
    ) -> None:
        if resolution_m is not None and resolution_m <= 0:
            raise ConfigurationError(
                f"resolution_m must be positive or None, got {resolution_m}"
            )
        if max_walks < 1:
            raise ConfigurationError(f"max_walks must be >= 1, got {max_walks}")
        if max_cycles_per_walk < 1:
            raise ConfigurationError(
                f"max_cycles_per_walk must be >= 1, got {max_cycles_per_walk}"
            )
        self._config = config if config is not None else PTrackConfig()
        self._min_cycles = int(min_cycles)
        self._arm_grid = None if arm_grid_m is None else np.asarray(arm_grid_m, float)
        self._leg_grid = None if leg_grid_m is None else np.asarray(leg_grid_m, float)
        self._resolution = None if resolution_m is None else float(resolution_m)
        self._max_walks = int(max_walks)
        self._max_cycles_per_walk = int(max_cycles_per_walk)
        # Step-1 sufficient statistics: observation multisets.
        self._walking: Dict[Tuple[float, float, float], int] = {}
        self._stepping: Dict[float, int] = {}
        # Step-2 state: referenced walks, oldest first.
        self._walks: List[Dict[str, Any]] = []
        self._n_observations = 0
        self._dropped_walks = 0
        self._since_train = 0

    # ------------------------------------------------------------------
    # Observation intake
    # ------------------------------------------------------------------
    def _quantise(self, value: float) -> float:
        if self._resolution is None:
            return float(value)
        return float(round(value / self._resolution) * self._resolution)

    def observe(self, observations: Iterable[CycleObservation]) -> int:
        """Consume Step-1 (anchor) observations; returns how many.

        These feed only the arm-length solve — streaming credits and
        unreferenced calibration traces go here. Distance-referenced
        walks must instead go through :meth:`observe_walk`, which keeps
        them for the leg-length fit *without* re-feeding Step 1 (the
        batch procedure extracts the two steps' observation sets
        independently, and equivalence demands the same split here).
        """
        n = 0
        for obs in observations:
            if obs.gait_type is GaitType.STEPPING:
                b = self._quantise(obs.bounce_m)  # type: ignore[arg-type]
                self._stepping[b] = self._stepping.get(b, 0) + 1
            else:
                key = (
                    self._quantise(obs.h1_m),  # type: ignore[arg-type]
                    self._quantise(obs.h2_m),  # type: ignore[arg-type]
                    self._quantise(obs.d_m),  # type: ignore[arg-type]
                )
                self._walking[key] = self._walking.get(key, 0) + 1
            n += 1
        self._n_observations += n
        self._since_train += n
        return n

    def observe_walk(
        self,
        observations: Iterable[CycleObservation],
        reference_distance_m: float,
    ) -> int:
        """Retain one distance-referenced walk for the Step-2 fit.

        Walk observations are *never* quantised (each walk is bounded
        by ``max_cycles_per_walk`` already, so exactness is free) and
        are *not* added to the Step-1 multisets — see :meth:`observe`.
        Oldest walks are dropped beyond ``max_walks``.
        """
        if reference_distance_m <= 0:
            raise CalibrationError(
                f"reference distance must be positive, got {reference_distance_m}"
            )
        kept = list(observations)[: self._max_cycles_per_walk]
        self._walks.append(
            {"observations": kept, "reference": float(reference_distance_m)}
        )
        if len(self._walks) > self._max_walks:
            del self._walks[0]
            self._dropped_walks += 1
        self._n_observations += len(kept)
        self._since_train += len(kept)
        return len(kept)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def arm_length(self) -> float:
        """Step 1 over everything observed so far.

        Raises:
            CalibrationError: With insufficient cycles of either gait.
        """
        return arm_length_from_counts(
            self._walking,
            self._stepping,
            grid_m=self._arm_grid,
            min_cycles=self._min_cycles,
        )

    def train(self) -> UserProfile:
        """Full two-step training; batch-equivalent on the same data.

        Raises:
            CalibrationError: Exactly where the batch trainer would —
                insufficient Step-1 cycles, no referenced walks, or
                insufficient usable Step-2 cycles.
        """
        arm = self.arm_length()
        if not self._walks:
            raise CalibrationError("need at least one calibration walk")
        leg, k = leg_length_from_walk_bounces(
            [bounces_from_observations(w["observations"], arm) for w in self._walks],
            [w["reference"] for w in self._walks],
            grid_l=self._leg_grid,
            min_cycles=self._min_cycles,
        )
        self._since_train = 0
        return UserProfile(arm_length_m=arm, leg_length_m=leg, calibration_k=k)

    def estimate(self) -> ProfileEstimate:
        """Best-effort training: as much profile as the evidence admits.

        Raises:
            CalibrationError: Only when even Step 1 is impossible.
        """
        arm = self.arm_length()
        leg: Optional[float] = None
        k: Optional[float] = None
        profile: Optional[UserProfile] = None
        if self._walks:
            try:
                leg, k = leg_length_from_walk_bounces(
                    [
                        bounces_from_observations(w["observations"], arm)
                        for w in self._walks
                    ],
                    [w["reference"] for w in self._walks],
                    grid_l=self._leg_grid,
                    min_cycles=self._min_cycles,
                )
                profile = UserProfile(
                    arm_length_m=arm, leg_length_m=leg, calibration_k=k
                )
                self._since_train = 0
            except CalibrationError:
                pass
        return ProfileEstimate(
            arm_length_m=arm,
            leg_length_m=leg,
            calibration_k=k,
            profile=profile,
            observations=self._n_observations,
            referenced_walks=len(self._walks),
            confidence=self.confidence(),
            exact=self._resolution is None,
        )

    # ------------------------------------------------------------------
    # Evidence / staleness
    # ------------------------------------------------------------------
    @property
    def observations(self) -> int:
        """Total observations consumed (including dropped walks')."""
        return self._n_observations

    @property
    def referenced_walks(self) -> int:
        """Referenced walks currently retained."""
        return len(self._walks)

    @property
    def observations_since_train(self) -> int:
        """Observations arrived since the last successful (full) train.

        Serving uses this as the staleness trigger: re-train once the
        untrained evidence crosses a threshold rather than per credit.
        """
        return self._since_train

    def confidence(self) -> float:
        """Evidence score in ``[0, 1]``.

        Saturates when each gait has 4x the minimum Step-1 cycles *and*
        at least two referenced walks back the leg fit; anything less
        scales down linearly. Purely a trust signal — it never gates
        training itself.
        """
        n_walk = sum(self._walking.values())
        n_step = sum(self._stepping.values())
        anchor = min(1.0, min(n_walk, n_step) / float(4 * self._min_cycles))
        legs = min(1.0, len(self._walks) / 2.0)
        return anchor * (0.5 + 0.5 * legs)

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Sufficient statistics as a plain picklable dict.

        Stored inside :class:`repro.profiles.ProfileRecord.trainer_state`
        so a later run resumes re-calibration exactly where this one
        stopped.
        """
        return {
            "state_version": _STATE_VERSION,
            "resolution_m": self._resolution,
            "min_cycles": self._min_cycles,
            "max_walks": self._max_walks,
            "max_cycles_per_walk": self._max_cycles_per_walk,
            "walking": [[h1, h2, d, c] for (h1, h2, d), c in self._walking.items()],
            "stepping": [[b, c] for b, c in self._stepping.items()],
            "walks": [
                {
                    "reference": w["reference"],
                    "observations": [
                        [
                            o.gait_type.name,
                            o.bounce_m,
                            o.h1_m,
                            o.h2_m,
                            o.d_m,
                        ]
                        for o in w["observations"]
                    ],
                }
                for w in self._walks
            ],
            "n_observations": self._n_observations,
            "dropped_walks": self._dropped_walks,
            "since_train": self._since_train,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (replacing current state).

        Raises:
            ConfigurationError: On an unknown state layout version.
        """
        if not isinstance(state, dict) or state.get("state_version") != _STATE_VERSION:
            raise ConfigurationError(
                "unsupported trainer_state layout "
                f"{state.get('state_version') if isinstance(state, dict) else state!r}; "
                f"this build reads version {_STATE_VERSION}"
            )
        self._resolution = state["resolution_m"]
        self._min_cycles = int(state["min_cycles"])
        self._max_walks = int(state["max_walks"])
        self._max_cycles_per_walk = int(state["max_cycles_per_walk"])
        self._walking = {
            (h1, h2, d): int(c) for h1, h2, d, c in state["walking"]
        }
        self._stepping = {b: int(c) for b, c in state["stepping"]}
        self._walks = [
            {
                "reference": w["reference"],
                "observations": [
                    CycleObservation(
                        gait_type=GaitType[name],
                        bounce_m=bounce,
                        h1_m=h1,
                        h2_m=h2,
                        d_m=d,
                    )
                    for name, bounce, h1, h2, d in w["observations"]
                ],
            }
            for w in state["walks"]
        ]
        self._n_observations = int(state["n_observations"])
        self._dropped_walks = int(state["dropped_walks"])
        self._since_train = int(state["since_train"])

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        config: Optional[PTrackConfig] = None,
        arm_grid_m: Optional[np.ndarray] = None,
        leg_grid_m: Optional[np.ndarray] = None,
    ) -> "IncrementalSelfTrainer":
        """Build a trainer directly from persisted state."""
        trainer = cls(config=config, arm_grid_m=arm_grid_m, leg_grid_m=leg_grid_m)
        trainer.load_state(state)
        return trainer
