"""Versioned ``ptrack-profile-v1`` records.

A :class:`ProfileRecord` is the unit the profile store persists: one
user's trained :class:`~repro.types.UserProfile` (possibly still
``None`` while calibration is accumulating), its monotonically
increasing store version, the evidence counters serving uses to decide
whether the profile is trustworthy, and optionally the incremental
trainer's sufficient statistics so re-calibration can resume in a later
run exactly where it left off.

Records travel as plain-dict blobs under the same envelope contract as
every other durable payload in this codebase (``schema`` + ``kind``,
enforced by :func:`repro.core.streaming.ensure_snapshot_kind`), under
their own schema string :data:`PROFILE_SNAPSHOT_SCHEMA` — bump it when
the record layout changes so a stale blob fails loud instead of
resuming with wrong biomechanics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core.streaming import ensure_snapshot_kind
from repro.exceptions import ConfigurationError
from repro.types import UserProfile

__all__ = [
    "PROFILE_SNAPSHOT_SCHEMA",
    "ProfileRecord",
    "record_to_blob",
    "record_from_blob",
]

#: Version tag of the durable profile record format. Restore paths
#: refuse any other schema so a foreign or stale blob can never warm a
#: session with wrong biomechanics; bump the suffix when the layout
#: changes.
PROFILE_SNAPSHOT_SCHEMA = "ptrack-profile-v1"


@dataclass(frozen=True)
class ProfileRecord:
    """One user's durable profile state.

    Attributes:
        user_id: Stable external identity (non-empty flat string).
        profile: The trained biomechanical profile, or ``None`` while
            the trainer has not yet converged to a full ``(m, l, k)``.
        version: Store-assigned compare-and-swap version. ``0`` means
            "not yet persisted"; the first successful put stores
            version 1 and every update increments it.
        observations: Total gait-cycle observations that informed this
            record (staleness/evidence counter).
        referenced_walks: Distance-referenced calibration walks behind
            the leg-length fit (Step 2 evidence).
        confidence: Trainer confidence in ``[0, 1]`` — the serving
            stack's "is this profile trustworthy" signal.
        cadence_hz: Mean credited cadence, when known; used by the
            fingerprinting experiment as a third attribution axis.
        updated_at: Store clock reading of the last successful put
            (``None`` until first persisted).
        trainer_state: Optional
            :meth:`repro.profiles.IncrementalSelfTrainer.state_dict`
            payload so re-calibration resumes across runs.
    """

    user_id: str
    profile: Optional[UserProfile] = None
    version: int = 0
    observations: int = 0
    referenced_walks: int = 0
    confidence: float = 0.0
    cadence_hz: Optional[float] = None
    updated_at: Optional[float] = None
    trainer_state: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.user_id or not isinstance(self.user_id, str):
            raise ConfigurationError(
                f"user_id must be a non-empty string, got {self.user_id!r}"
            )
        if self.version < 0:
            raise ConfigurationError(
                f"version must be >= 0, got {self.version}"
            )
        if not 0.0 <= self.confidence <= 1.0:
            raise ConfigurationError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )

    def with_version(self, version: int, updated_at: Optional[float]) -> "ProfileRecord":
        """Copy with the store-assigned version and timestamp."""
        return replace(self, version=version, updated_at=updated_at)


def record_to_blob(record: ProfileRecord) -> Dict[str, Any]:
    """Serialise one record into its ``ptrack-profile-v1`` blob."""
    profile = record.profile
    return {
        "schema": PROFILE_SNAPSHOT_SCHEMA,
        "kind": "profile",
        "user_id": record.user_id,
        "profile": (
            None
            if profile is None
            else {
                "arm_length_m": profile.arm_length_m,
                "leg_length_m": profile.leg_length_m,
                "calibration_k": profile.calibration_k,
            }
        ),
        "version": int(record.version),
        "observations": int(record.observations),
        "referenced_walks": int(record.referenced_walks),
        "confidence": float(record.confidence),
        "cadence_hz": record.cadence_hz,
        "updated_at": record.updated_at,
        "trainer_state": record.trainer_state,
    }


def record_from_blob(blob: Any) -> ProfileRecord:
    """Rebuild a record from its blob, enforcing the envelope.

    Raises:
        ConfigurationError: On a wrong-schema or wrong-kind blob — a
            deployment mistake the operator must see, never a silent
            wrong-profile warm-load.
    """
    ensure_snapshot_kind(blob, "profile", schema=PROFILE_SNAPSHOT_SCHEMA)
    raw_profile = blob["profile"]
    profile = None if raw_profile is None else UserProfile(**raw_profile)
    return ProfileRecord(
        user_id=blob["user_id"],
        profile=profile,
        version=int(blob["version"]),
        observations=int(blob["observations"]),
        referenced_walks=int(blob["referenced_walks"]),
        confidence=float(blob["confidence"]),
        cadence_hz=blob.get("cadence_hz"),
        updated_at=blob.get("updated_at"),
        trainer_state=blob.get("trainer_state"),
    )
