"""Population-scale persistent user profiles (``repro.profiles``).

The serving stack runs durable fleets of millions of sessions, but
until this subsystem every session's :class:`~repro.types.UserProfile`
was an ephemeral constructor argument — trained once offline, lost on
restart. ``repro.profiles`` makes profiles first-class durable state:

* :class:`ProfileStore` — a sharded, atomic, compare-and-swap versioned
  on-disk store of ``ptrack-profile-v1`` records with an LRU warm
  cache and the codebase's quarantine-as-miss torn-blob contract.
* :class:`IncrementalSelfTrainer` — the paper's §3 self-training as
  bounded-memory running sufficient statistics, provably equivalent to
  the batch :class:`~repro.core.selftrain.SelfTrainer` on the same
  observations.
* :class:`ProfileRecord` — the versioned record tying the two together
  with staleness/confidence metadata for serving.

See ``docs/profiles.md`` for the record schema, CAS semantics,
staleness policy, and telemetry catalog.
"""

from repro.profiles.record import (
    PROFILE_SNAPSHOT_SCHEMA,
    ProfileRecord,
    record_from_blob,
    record_to_blob,
)
from repro.profiles.store import ProfileStore
from repro.profiles.trainer import IncrementalSelfTrainer, ProfileEstimate

__all__ = [
    "PROFILE_SNAPSHOT_SCHEMA",
    "ProfileRecord",
    "ProfileStore",
    "IncrementalSelfTrainer",
    "ProfileEstimate",
    "record_from_blob",
    "record_to_blob",
]
