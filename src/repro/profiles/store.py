"""Sharded, atomic, versioned on-disk profile store.

A population of millions of users cannot live in one pickle: the store
hashes each ``user_id`` onto one of ``n_shards`` shard files
(``zlib.crc32``, stable across processes and Python hash
randomisation), keeps a write-through LRU of recently touched shards in
memory, and persists every shard atomically (serialise to a temp file
in the same directory, then ``os.replace``) so a crash mid-write leaves
the previous complete shard, never a hybrid.

Reads follow the codebase's quarantine-as-miss durability contract
(shared with :class:`repro.serving.CheckpointStore` and the
:class:`repro.runtime.TraceCache` disk layer): a torn or truncated
shard file is renamed aside with a ``.corrupt`` suffix, counted
(``profile_store_torn_total``), and read as empty — profile data is an
optimisation over re-calibrating, so a torn shard must degrade to a
cache miss, not an exception. A *decodable* blob of the wrong schema
version instead raises :class:`~repro.exceptions.ConfigurationError`:
that is a deployment mistake the operator must see.

Concurrent shard writers coordinate through compare-and-swap
versioning: :meth:`ProfileStore.put` with ``expected_version`` commits
only if the stored record still has that version, raising
:class:`~repro.exceptions.ProfileConflictError` otherwise so the loser
re-reads and merges instead of clobbering the winner's update.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.core.streaming import ensure_snapshot_kind
from repro.exceptions import ConfigurationError, ProfileConflictError
from repro.profiles.record import (
    PROFILE_SNAPSHOT_SCHEMA,
    ProfileRecord,
    record_from_blob,
    record_to_blob,
)
from repro.runtime.clock import Clock
from repro.telemetry.registry import MetricsRegistry, get_registry

__all__ = ["ProfileStore"]

_SHARD_SUFFIX = ".pshard"
_META_NAME = "store.meta"


def _meta_blob(n_shards: int) -> Dict[str, Any]:
    return {
        "schema": PROFILE_SNAPSHOT_SCHEMA,
        "kind": "profile-store-meta",
        "n_shards": int(n_shards),
    }


class ProfileStore:
    """Population-scale persistent store of :class:`ProfileRecord`.

    Args:
        directory: Where the shard files live; created if missing. A
            ``store.meta`` file pins the shard count — reopening an
            existing store with a conflicting explicit ``n_shards``
            fails loud (re-sharding would orphan every record).
        n_shards: Shard-file count for a *new* store (default 256;
            ``None`` defers entirely to an existing meta). Sizing rule:
            keep shards small enough to rewrite cheaply per put batch;
            256 shards hold 1M profiles at ~4k records per shard file.
        cache_shards: Shards kept warm in the write-through LRU.
        telemetry: Metrics registry for ``profile_store_*`` counters;
            ``None`` falls back to the process gate.
        clock: Timestamp source for ``updated_at`` stamps; ``None``
            uses wall time (:func:`time.time`). Inject a
            :class:`repro.runtime.ManualClock` for deterministic tests.
    """

    def __init__(
        self,
        directory: os.PathLike,
        n_shards: Optional[int] = None,
        cache_shards: int = 64,
        telemetry: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if n_shards is not None and n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if cache_shards < 1:
            raise ConfigurationError(
                f"cache_shards must be >= 1, got {cache_shards}"
            )
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._cache_shards = int(cache_shards)
        self._cache: "OrderedDict[int, Dict[str, Dict[str, Any]]]" = OrderedDict()
        self._now = clock.now if clock is not None else time.time
        self._loads = 0
        self._saves = 0
        self._torn = 0
        self._hits = 0
        self._misses = 0
        self._conflicts = 0
        self._telemetry = telemetry if telemetry is not None else get_registry()
        if self._telemetry is not None:
            reg = self._telemetry
            self._m_loads = reg.counter("profile_store_loads_total")
            self._m_saves = reg.counter("profile_store_saves_total")
            self._m_torn = reg.counter("profile_store_torn_total")
            self._m_hits = reg.counter("profile_store_hits_total")
            self._m_misses = reg.counter("profile_store_misses_total")
            self._m_conflicts = reg.counter("profile_store_conflicts_total")
        self._n_shards = self._open_meta(n_shards)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The store's directory."""
        return self._dir

    @property
    def n_shards(self) -> int:
        """The store's (persisted, immutable) shard count."""
        return self._n_shards

    def shard_of(self, user_id: str) -> int:
        """The shard index ``user_id`` hashes to (stable across runs)."""
        if not user_id or "/" in user_id or user_id.startswith("."):
            raise ConfigurationError(
                f"invalid user_id {user_id!r}; ids are non-empty flat "
                "strings (no path separators)"
            )
        return zlib.crc32(user_id.encode("utf-8")) % self._n_shards

    def _shard_path(self, index: int) -> Path:
        return self._dir / f"shard-{index:05d}{_SHARD_SUFFIX}"

    def _open_meta(self, n_shards: Optional[int]) -> int:
        """Read or create ``store.meta``; existing meta is authoritative."""
        path = self._dir / _META_NAME
        if path.exists():
            try:
                with open(path, "rb") as fh:
                    blob = pickle.load(fh)
                if not isinstance(blob, dict) or "schema" not in blob:
                    raise pickle.UnpicklingError("not a meta blob")
            except ConfigurationError:
                raise
            except Exception:
                # A torn meta cannot reveal the shard count; quarantine
                # it and refuse rather than guess — guessing a wrong
                # count would silently orphan every existing record.
                self._quarantine(path)
                if any(self._dir.glob(f"*{_SHARD_SUFFIX}")):
                    raise ConfigurationError(
                        f"profile store meta at {path} is torn but shard "
                        "files exist; restore the meta (n_shards) or "
                        "rebuild the store"
                    )
                blob = None
            if blob is not None:
                ensure_snapshot_kind(
                    blob, "profile-store-meta", schema=PROFILE_SNAPSHOT_SCHEMA
                )
                stored = int(blob["n_shards"])
                if n_shards is not None and n_shards != stored:
                    raise ConfigurationError(
                        f"profile store at {self._dir} has {stored} shards; "
                        f"cannot reopen with n_shards={n_shards} "
                        "(re-sharding would orphan existing records)"
                    )
                return stored
        chosen = 256 if n_shards is None else int(n_shards)
        self._write_atomic(
            path,
            pickle.dumps(_meta_blob(chosen), protocol=pickle.HIGHEST_PROTOCOL),
        )
        return chosen

    # ------------------------------------------------------------------
    # Shard IO
    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=self._dir, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load_shard(self, index: int) -> Dict[str, Dict[str, Any]]:
        """The shard's ``user_id -> record blob`` map (LRU-cached)."""
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        path = self._shard_path(index)
        records: Dict[str, Dict[str, Any]] = {}
        if path.exists():
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
                if not isinstance(payload, dict) or "schema" not in payload:
                    raise pickle.UnpicklingError("not a profile shard blob")
            except ConfigurationError:
                raise
            except Exception:
                # Torn shard: quarantine-as-miss. Profiles are an
                # optimisation over re-calibrating from scratch, so a
                # torn shard degrades to cold sessions, never a crash.
                self._quarantine(path)
                payload = None
            if payload is not None:
                ensure_snapshot_kind(
                    payload, "profile-shard", schema=PROFILE_SNAPSHOT_SCHEMA
                )
                records = payload["records"]
                self._loads += 1
                if self._telemetry is not None:
                    self._m_loads.inc()
        self._cache[index] = records
        self._cache.move_to_end(index)
        while len(self._cache) > self._cache_shards:
            # Write-through makes eviction free: disk already has it.
            self._cache.popitem(last=False)
        return records

    def _write_shard(self, index: int, records: Dict[str, Dict[str, Any]]) -> None:
        payload = {
            "schema": PROFILE_SNAPSHOT_SCHEMA,
            "kind": "profile-shard",
            "records": records,
        }
        self._write_atomic(
            self._shard_path(index),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._saves += 1
        if self._telemetry is not None:
            self._m_saves.inc()

    def _quarantine(self, path: Path) -> None:
        """Move a torn file aside and count it (best effort)."""
        self._torn += 1
        if self._telemetry is not None:
            self._m_torn.inc()
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, user_id: str) -> Optional[ProfileRecord]:
        """One user's record, or ``None`` when absent (or shard torn)."""
        blob = self._load_shard(self.shard_of(user_id)).get(user_id)
        if blob is None:
            self._misses += 1
            if self._telemetry is not None:
                self._m_misses.inc()
            return None
        self._hits += 1
        if self._telemetry is not None:
            self._m_hits.inc()
        return record_from_blob(blob)

    def get_many(self, user_ids: Iterable[str]) -> Dict[str, ProfileRecord]:
        """Batch read; absent users are simply omitted.

        Grouped by shard so a fleet warm-load touches each shard file
        once, not once per user.
        """
        by_shard: Dict[int, List[str]] = {}
        for uid in user_ids:
            by_shard.setdefault(self.shard_of(uid), []).append(uid)
        out: Dict[str, ProfileRecord] = {}
        for index, uids in by_shard.items():
            records = self._load_shard(index)
            for uid in uids:
                blob = records.get(uid)
                if blob is None:
                    self._misses += 1
                    if self._telemetry is not None:
                        self._m_misses.inc()
                    continue
                self._hits += 1
                if self._telemetry is not None:
                    self._m_hits.inc()
                out[uid] = record_from_blob(blob)
        return out

    def user_ids(self) -> List[str]:
        """Every stored user id (sorted; walks all shard files)."""
        ids: List[str] = []
        for index in range(self._n_shards):
            ids.extend(self._load_shard(index).keys())
        return sorted(ids)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(
        self,
        record: ProfileRecord,
        expected_version: Optional[int] = None,
    ) -> ProfileRecord:
        """Persist one record; returns it with its assigned version.

        The store owns versions: whatever ``record.version`` says, the
        committed record carries ``stored_version + 1`` (1 for a new
        user). With ``expected_version`` the put is compare-and-swap:
        it commits only if the stored version still matches (0 for
        "user must be absent").

        Raises:
            ProfileConflictError: CAS failure — another writer
                committed first; re-read, merge, retry.
        """
        committed = self.put_many([record], expected_versions={
            record.user_id: expected_version,
        } if expected_version is not None else None)
        return committed[record.user_id]

    def put_many(
        self,
        records: Iterable[ProfileRecord],
        expected_versions: Optional[Dict[str, Optional[int]]] = None,
    ) -> Dict[str, ProfileRecord]:
        """Batch persist; one atomic write per touched shard.

        All compare-and-swap preconditions are validated *before* any
        shard is written, so a conflict anywhere commits nothing.

        Raises:
            ProfileConflictError: First CAS mismatch found.
            ConfigurationError: Duplicate user ids in one batch (the
                order would silently decide which update wins).
        """
        expected = expected_versions or {}
        staged: Dict[int, Dict[str, ProfileRecord]] = {}
        for record in records:
            shard = self.shard_of(record.user_id)
            if record.user_id in staged.setdefault(shard, {}):
                raise ConfigurationError(
                    f"duplicate user_id {record.user_id!r} in one put batch"
                )
            staged[shard][record.user_id] = record
        # Phase 1: validate every CAS precondition against loaded shards.
        current_versions: Dict[str, int] = {}
        for shard, recs in staged.items():
            stored = self._load_shard(shard)
            for uid in recs:
                blob = stored.get(uid)
                current_versions[uid] = int(blob["version"]) if blob else 0
                want = expected.get(uid)
                if want is not None and want != current_versions[uid]:
                    self._conflicts += 1
                    if self._telemetry is not None:
                        self._m_conflicts.inc()
                    raise ProfileConflictError(
                        f"profile {uid!r} is at version {current_versions[uid]}, "
                        f"caller expected {want}; re-read and merge"
                    )
        # Phase 2: commit, one write per shard.
        out: Dict[str, ProfileRecord] = {}
        now = float(self._now())
        for shard, recs in staged.items():
            stored = self._load_shard(shard)
            for uid, record in recs.items():
                committed = record.with_version(current_versions[uid] + 1, now)
                stored[uid] = record_to_blob(committed)
                out[uid] = committed
            self._write_shard(shard, stored)
        return out

    def delete(self, user_id: str) -> bool:
        """Remove one user's record; returns whether it existed."""
        shard = self.shard_of(user_id)
        stored = self._load_shard(shard)
        if user_id not in stored:
            return False
        del stored[user_id]
        self._write_shard(shard, stored)
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Store shape and lifetime counters (drives ``repro profiles``)."""
        shard_files = sorted(self._dir.glob(f"*{_SHARD_SUFFIX}"))
        n_records = 0
        populated = 0
        for path in shard_files:
            index = int(path.name[len("shard-") : -len(_SHARD_SUFFIX)])
            count = len(self._load_shard(index))
            n_records += count
            if count:
                populated += 1
        return {
            "directory": str(self._dir),
            "n_shards": self._n_shards,
            "shard_files": len(shard_files),
            "populated_shards": populated,
            "records": n_records,
            "quarantined_files": len(list(self._dir.glob("*.corrupt"))),
            "cached_shards": len(self._cache),
            "loads": self._loads,
            "saves": self._saves,
            "torn_loads": self._torn,
            "hits": self._hits,
            "misses": self._misses,
            "conflicts": self._conflicts,
        }

    def compact(self) -> Dict[str, int]:
        """Rewrite every populated shard and drop quarantined files.

        Shard rewrites reclaim the space of superseded record versions
        (pickle keeps only the live map, but a shard written by an
        older build may serialise less compactly), and ``.corrupt``
        quarantine files — already counted, never readable — are
        removed. Returns ``{"rewritten": ..., "removed_corrupt": ...}``.
        """
        rewritten = 0
        for index in range(self._n_shards):
            records = self._load_shard(index)
            if records:
                self._write_shard(index, records)
                rewritten += 1
        removed = 0
        for path in self._dir.glob("*.corrupt"):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return {"rewritten": rewritten, "removed_corrupt": removed}
