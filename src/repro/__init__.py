"""PTrack: applicability-enhanced pedestrian tracking with wearables.

A full reproduction of *PTrack: Enhancing the Applicability of
Pedestrian Tracking with Wearables* (Jiang, Li, Wang — ICDCS 2017),
including every substrate the paper depends on:

* :mod:`repro.core` — the PTrack step counter (training-free gait-type
  identification via critical-point offsets), stride estimator (body
  bounce from mixed wrist signals, Eqs. (3)-(5) + Eq. (2)) and
  user-profile self-training;
* :mod:`repro.signal` / :mod:`repro.sensing` — the DSP and IMU
  substrates;
* :mod:`repro.simulation` — the biomechanical wrist-IMU simulator
  standing in for the paper's LG Urbane deployment;
* :mod:`repro.baselines` — GFit-class peak counters, Montage, SCAR and
  the classic stride models;
* :mod:`repro.apps` — dead-reckoning navigation and fitness reporting;
* :mod:`repro.experiments` — drivers regenerating every figure.

Quickstart::

    import numpy as np
    from repro import PTrack, UserProfile
    from repro.simulation import SimulatedUser, simulate_walk

    user = SimulatedUser()
    trace, truth = simulate_walk(user, 60.0, rng=np.random.default_rng(0))
    tracker = PTrack(profile=user.profile)
    result = tracker.track(trace)
    print(result.step_count, result.distance_m)
"""

from repro.core.config import PTrackConfig
from repro.core.pipeline import PTrack
from repro.core.selftrain import CalibrationWalk, SelfTrainer
from repro.core.step_counter import PTrackStepCounter
from repro.core.stride import PTrackStrideEstimator
from repro.exceptions import (
    CalibrationError,
    ConfigurationError,
    GeometryError,
    IntegrationError,
    ReproError,
    SignalError,
    SimulationError,
    TrainingError,
)
from repro.sensing.imu import IMUTrace
from repro.types import (
    ActivityKind,
    CycleClassification,
    CycleObservation,
    GaitType,
    Posture,
    StepEvent,
    StrideEstimate,
    TrackingResult,
    UserProfile,
)

__version__ = "1.0.0"

__all__ = [
    "ActivityKind",
    "CalibrationError",
    "CalibrationWalk",
    "ConfigurationError",
    "CycleClassification",
    "CycleObservation",
    "GaitType",
    "GeometryError",
    "IMUTrace",
    "IntegrationError",
    "PTrack",
    "PTrackConfig",
    "PTrackStepCounter",
    "PTrackStrideEstimator",
    "Posture",
    "ReproError",
    "SelfTrainer",
    "SignalError",
    "SimulationError",
    "StepEvent",
    "StrideEstimate",
    "TrackingResult",
    "TrainingError",
    "UserProfile",
    "__version__",
]
