"""Single source of truth for the tracked benchmark suites.

``scripts/bench.py`` (the measurement driver) and ``repro bench`` (the
installed CLI verb) both expose a ``--suite`` flag. Before this module
existed the list of valid suites and their default scoreboard files
were duplicated in both places and drifted apart exactly once per new
suite; now both derive their choices from :data:`SUITES`, and
``tests/test_bench_registry.py`` pins the wiring so a suite added here
is automatically runnable (and a suite added anywhere else is a test
failure).

The registry is deliberately dependency-free — the CLI imports it at
parse time, so it must not pull in NumPy-heavy benchmark modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "BenchSuite",
    "SUITES",
    "SUITE_CHOICES",
    "DEFAULT_OUTPUTS",
    "default_output",
]


@dataclass(frozen=True)
class BenchSuite:
    """One tracked benchmark suite.

    Attributes:
        name: The ``--suite`` choice string.
        scoreboard: Default JSON scoreboard filename (repo root).
        title: One-line description for ``--help`` and docs.
    """

    name: str
    scoreboard: str
    title: str


#: Every tracked suite, in scoreboard (PR) order. The last entry's
#: scoreboard doubles as the default output for ``--suite all``.
SUITES: Tuple[BenchSuite, ...] = (
    BenchSuite(
        "runtime",
        "BENCH_PR1.json",
        "kernel speedups, trace cache, and macro replicate-study timings",
    ),
    BenchSuite(
        "serving",
        "BENCH_PR3.json",
        "incremental streaming vs reprocessing and SessionPool scaling",
    ),
    BenchSuite(
        "faulted-serving",
        "BENCH_PR4.json",
        "degraded-mode ingest overhead and self-healing fleet throughput",
    ),
    BenchSuite(
        "telemetry",
        "BENCH_PR5.json",
        "instrumentation overhead and fleet registry merge invariance",
    ),
    BenchSuite(
        "fleet-batch",
        "BENCH_PR6.json",
        "fleet-batched pool vs lockstep pool and backend equivalence",
    ),
    BenchSuite(
        "ragged-ingest",
        "BENCH_PR7.json",
        "async ingest gateway under ragged arrivals with shedding",
    ),
    BenchSuite(
        "fleet-kernels",
        "BENCH_PR8.json",
        "backend-wide kernel seam and the batched bounce solver",
    ),
    BenchSuite(
        "durability",
        "BENCH_PR9.json",
        "checkpoint overhead, restore-vs-reingest recovery, resume oracle",
    ),
    BenchSuite(
        "profile-store",
        "BENCH_PR10.json",
        "population-scale profile store ingest, cold warm-load, trainer oracle",
    ),
)

#: Valid ``--suite`` values: every registered suite plus ``all``.
SUITE_CHOICES: Tuple[str, ...] = tuple(s.name for s in SUITES) + ("all",)

#: Default scoreboard per suite; ``all`` writes the newest scoreboard.
DEFAULT_OUTPUTS: Dict[str, str] = {
    **{s.name: s.scoreboard for s in SUITES},
    "all": SUITES[-1].scoreboard,
}


def default_output(suite: str) -> str:
    """The default scoreboard filename for a ``--suite`` value.

    Raises:
        KeyError: On a suite name not in :data:`SUITE_CHOICES`.
    """
    return DEFAULT_OUTPUTS[suite]
