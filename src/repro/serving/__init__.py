"""Multi-session serving for high-throughput deployments.

The incremental streaming core (:class:`repro.core.StreamingPTrack`)
makes one session cheap; this package makes *many* sessions cheap
together:

* :class:`SessionPool` — N independent sessions behind one vectorized
  ingest call, batching the per-cycle stepping kernels fleet-wide.
* :func:`serve_fleet` — shard a fleet of sessions across worker
  processes via :func:`repro.runtime.parallel_map`, with a guaranteed
  shard-layout-independent result.
* :func:`synthesize_workload` — deterministic per-session walks keyed
  by ``derive_rng(seed, i)`` for benchmarks and equivalence tests.
"""

from repro.serving.fleet import FleetReport, SessionReport, serve_fleet
from repro.serving.pool import SessionPool
from repro.serving.workload import SessionWorkload, synthesize_workload

__all__ = [
    "FleetReport",
    "SessionPool",
    "SessionReport",
    "SessionWorkload",
    "serve_fleet",
    "synthesize_workload",
]
