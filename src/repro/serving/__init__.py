"""Multi-session serving for high-throughput deployments.

The incremental streaming core (:class:`repro.core.StreamingPTrack`)
makes one session cheap; this package makes *many* sessions cheap
together:

* :class:`SessionPool` — N independent sessions behind one vectorized
  ingest call, batching the per-cycle stepping kernels fleet-wide.
* :class:`BatchedSessionPool` — the fleet-batched pool: every round's
  filter / segmentation / measurement / stride kernels run once for
  the whole fleet on a pluggable compute backend
  (:mod:`repro.runtime.backends`), bit-identical to the lockstep pool
  on the default NumPy backend.
* :class:`IngestGateway` — the async ingest front end: per-session
  bounded mailboxes absorb ragged arrivals (bursts, stalls, bounded
  reordering, join/leave), a coalescing scheduler feeds whatever has
  arrived to a backing pool in one vectorized round per tick, and
  backpressure sheds overload with exact drop accounting — credits
  stay bit-identical to serial replay of the delivered streams.
* :func:`serve_fleet` — shard a fleet of sessions across worker
  processes via :func:`repro.runtime.parallel_map`, with a guaranteed
  shard-layout-independent result; with ``checkpoint_every_s`` it runs
  as a rolling-restartable service with checkpoint recovery and live
  rebalancing.
* :class:`CheckpointStore` / :func:`make_checkpoint` /
  :func:`split_checkpoint` — atomic on-disk persistence and splitting
  for the durable fleet's ``ptrack-session-v1`` shard checkpoints.
* :class:`RebalancePolicy` — telemetry-driven live shard splitting
  from round-latency and crash statistics.
* :func:`synthesize_workload` / :func:`synthesize_arrival_schedule` —
  deterministic per-session walks and ragged arrival processes keyed
  by ``derive_rng(seed, i)`` for benchmarks and equivalence tests.
"""

from repro.serving.batch import BatchedSessionPool, FleetBatchBuffer
from repro.serving.checkpoint import (
    CheckpointStore,
    make_checkpoint,
    split_checkpoint,
    split_pool_snapshot,
)
from repro.serving.fleet import FleetReport, SessionReport, serve_fleet
from repro.serving.gateway import (
    GatewayStats,
    IngestGateway,
    OfferResult,
    SessionMailbox,
    serve_schedule,
)
from repro.serving.pool import SessionPool
from repro.serving.rebalance import RebalancePolicy, ShardEpochStats
from repro.serving.workload import (
    ArrivalEvent,
    ArrivalSchedule,
    SessionWorkload,
    synthesize_arrival_schedule,
    synthesize_workload,
)

__all__ = [
    "ArrivalEvent",
    "ArrivalSchedule",
    "BatchedSessionPool",
    "CheckpointStore",
    "FleetBatchBuffer",
    "FleetReport",
    "GatewayStats",
    "IngestGateway",
    "OfferResult",
    "RebalancePolicy",
    "SessionMailbox",
    "SessionPool",
    "SessionReport",
    "SessionWorkload",
    "ShardEpochStats",
    "make_checkpoint",
    "serve_fleet",
    "serve_schedule",
    "split_checkpoint",
    "split_pool_snapshot",
    "synthesize_arrival_schedule",
    "synthesize_workload",
]
