"""Multi-session serving for high-throughput deployments.

The incremental streaming core (:class:`repro.core.StreamingPTrack`)
makes one session cheap; this package makes *many* sessions cheap
together:

* :class:`SessionPool` — N independent sessions behind one vectorized
  ingest call, batching the per-cycle stepping kernels fleet-wide.
* :class:`BatchedSessionPool` — the fleet-batched pool: every round's
  filter / segmentation / measurement / stride kernels run once for
  the whole fleet on a pluggable compute backend
  (:mod:`repro.runtime.backends`), bit-identical to the lockstep pool
  on the default NumPy backend.
* :func:`serve_fleet` — shard a fleet of sessions across worker
  processes via :func:`repro.runtime.parallel_map`, with a guaranteed
  shard-layout-independent result.
* :func:`synthesize_workload` — deterministic per-session walks keyed
  by ``derive_rng(seed, i)`` for benchmarks and equivalence tests.
"""

from repro.serving.batch import BatchedSessionPool, FleetBatchBuffer
from repro.serving.fleet import FleetReport, SessionReport, serve_fleet
from repro.serving.pool import SessionPool
from repro.serving.workload import SessionWorkload, synthesize_workload

__all__ = [
    "BatchedSessionPool",
    "FleetBatchBuffer",
    "FleetReport",
    "SessionPool",
    "SessionReport",
    "SessionWorkload",
    "serve_fleet",
    "synthesize_workload",
]
