"""Deterministic multi-session workload synthesis.

A serving fleet is exercised against N independent simulated users,
each with their own anthropometrics and walk. Reproducibility across
shard layouts requires that session ``i`` always receives the *same*
trace no matter how the fleet is partitioned across workers, so every
session derives its own random stream from the fleet seed and its
index via :func:`repro.runtime.derive_rng`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.runtime import derive_rng
from repro.simulation import SimulatedUser, sample_users, simulate_walk
from repro.types import UserProfile

__all__ = ["SessionWorkload", "synthesize_workload"]


@dataclass(frozen=True)
class SessionWorkload:
    """One session's input: who is walking and what their wrist saw."""

    user: SimulatedUser
    samples: np.ndarray  # (n, 3) float64 linear acceleration
    true_steps: int
    true_distance_m: float

    @property
    def profile(self) -> UserProfile:
        """The user's tracking profile."""
        return self.user.profile


def synthesize_workload(
    n_sessions: int,
    duration_s: float,
    sample_rate_hz: float = 100.0,
    seed: int = 0,
) -> List[SessionWorkload]:
    """Synthesize one walk per session, deterministically.

    The user population is drawn once from ``derive_rng(seed)`` and
    each walk from ``derive_rng(seed, i)``, so workload ``i`` is a pure
    function of ``(seed, i)`` — identical whether the fleet is served
    serially, pooled, or sharded across processes.

    Args:
        n_sessions: Number of sessions (>= 1).
        duration_s: Walk duration per session.
        sample_rate_hz: Device sampling rate.
        seed: Fleet seed.

    Returns:
        One :class:`SessionWorkload` per session.
    """
    users = sample_users(n_sessions, derive_rng(seed), name_prefix="session")
    workloads: List[SessionWorkload] = []
    for i, user in enumerate(users):
        trace, truth = simulate_walk(
            user,
            duration_s,
            sample_rate_hz=sample_rate_hz,
            rng=derive_rng(seed, i),
        )
        samples = np.ascontiguousarray(
            trace.linear_acceleration, dtype=np.float64
        )
        workloads.append(
            SessionWorkload(
                user=user,
                samples=samples,
                true_steps=truth.step_count,
                true_distance_m=truth.total_distance_m,
            )
        )
    return workloads
