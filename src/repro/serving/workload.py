"""Deterministic multi-session workload synthesis.

A serving fleet is exercised against N independent simulated users,
each with their own anthropometrics and walk. Reproducibility across
shard layouts requires that session ``i`` always receives the *same*
trace no matter how the fleet is partitioned across workers, so every
session derives its own random stream from the fleet seed and its
index via :func:`repro.runtime.derive_rng`.

Two layers share this module:

* *what* each session uploads — :func:`synthesize_workload`, one
  simulated walk per session;
* *when* it arrives — :func:`synthesize_arrival_schedule`, a seeded
  ragged arrival process (bursts, quiet periods, staggered joins,
  disconnects, bounded reordering) over those uploads, so the gateway
  benchmarks and the arrival-order fuzzing tests exercise the same
  traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime import derive_rng
from repro.simulation import SimulatedUser, sample_users, simulate_walk
from repro.types import UserProfile

__all__ = [
    "SessionWorkload",
    "synthesize_workload",
    "ArrivalEvent",
    "ArrivalSchedule",
    "synthesize_arrival_schedule",
]

#: Seeding domain separating arrival processes from the walk streams
#: that share the same ``(seed, index)`` coordinates.
_ARRIVAL_DOMAIN = 0xA881


@dataclass(frozen=True)
class SessionWorkload:
    """One session's input: who is walking and what their wrist saw."""

    user: SimulatedUser
    samples: np.ndarray  # (n, 3) float64 linear acceleration
    true_steps: int
    true_distance_m: float

    @property
    def profile(self) -> UserProfile:
        """The user's tracking profile."""
        return self.user.profile


def synthesize_workload(
    n_sessions: int,
    duration_s: float,
    sample_rate_hz: float = 100.0,
    seed: int = 0,
) -> List[SessionWorkload]:
    """Synthesize one walk per session, deterministically.

    The user population is drawn once from ``derive_rng(seed)`` and
    each walk from ``derive_rng(seed, i)``, so workload ``i`` is a pure
    function of ``(seed, i)`` — identical whether the fleet is served
    serially, pooled, or sharded across processes.

    Args:
        n_sessions: Number of sessions (>= 1).
        duration_s: Walk duration per session.
        sample_rate_hz: Device sampling rate.
        seed: Fleet seed.

    Returns:
        One :class:`SessionWorkload` per session.
    """
    users = sample_users(n_sessions, derive_rng(seed), name_prefix="session")
    workloads: List[SessionWorkload] = []
    for i, user in enumerate(users):
        trace, truth = simulate_walk(
            user,
            duration_s,
            sample_rate_hz=sample_rate_hz,
            rng=derive_rng(seed, i),
        )
        samples = np.ascontiguousarray(
            trace.linear_acceleration, dtype=np.float64
        )
        workloads.append(
            SessionWorkload(
                user=user,
                samples=samples,
                true_steps=truth.step_count,
                true_distance_m=truth.total_distance_m,
            )
        )
    return workloads


@dataclass(frozen=True)
class ArrivalEvent:
    """One upload arriving at the gateway: *which* batch of *whose* trace.

    Events carry index ranges rather than arrays so a schedule is tiny,
    picklable, and reusable across workloads of the same lengths.

    Attributes:
        session: Workload/session index the batch belongs to.
        seq: The producer's per-session sequence number (``seq`` k is
            the k-th ``batch_samples``-sized slice of the trace).
        start: First sample index of the batch in the session's trace.
        stop: One past the last sample index.
    """

    session: int
    seq: int
    start: int
    stop: int

    @property
    def n_samples(self) -> int:
        """Samples carried by this upload."""
        return self.stop - self.start


@dataclass(frozen=True)
class ArrivalSchedule:
    """A ragged arrival process: per-tick upload events for a fleet.

    Attributes:
        n_sessions: Sessions the schedule addresses (indices
            ``0..n_sessions-1``).
        batch_samples: Upload granularity the events were sliced at.
        events: One tuple of :class:`ArrivalEvent` per tick, in arrival
            order within the tick.
        disconnected: Session indices whose device disconnected before
            uploading its whole trace (the tail never arrives).
        max_seq_skew: Largest distance any event arrives ahead of its
            session's in-order frontier — a mailbox with
            ``reorder_window >= max_seq_skew`` delivers every event.
    """

    n_sessions: int
    batch_samples: int
    events: Tuple[Tuple[ArrivalEvent, ...], ...]
    disconnected: Tuple[int, ...]
    max_seq_skew: int

    @property
    def n_ticks(self) -> int:
        """Number of scheduler ticks the process spans."""
        return len(self.events)

    @property
    def n_events(self) -> int:
        """Total uploads across all ticks."""
        return sum(len(tick) for tick in self.events)

    @property
    def n_samples(self) -> int:
        """Total samples delivered across all uploads."""
        return sum(ev.n_samples for tick in self.events for ev in tick)

    def delivered_slices(self) -> Dict[int, List[Tuple[int, int]]]:
        """Per-session ``(start, stop)`` slices in sequence order.

        This is the serial-replay oracle's input: the exact sample
        stream each session receives once its mailbox restores
        sequence order.
        """
        per_session: Dict[int, List[ArrivalEvent]] = {}
        for tick in self.events:
            for ev in tick:
                per_session.setdefault(ev.session, []).append(ev)
        return {
            session: [
                (ev.start, ev.stop)
                for ev in sorted(events, key=lambda e: e.seq)
            ]
            for session, events in sorted(per_session.items())
        }


def synthesize_arrival_schedule(
    n_samples: Sequence[int],
    seed: int = 0,
    batch_samples: int = 256,
    burst_batches: Tuple[int, int] = (1, 3),
    quiet_ticks: Tuple[int, int] = (0, 2),
    disconnect_prob: float = 0.0,
    reorder_prob: float = 0.0,
    join_spread_ticks: int = 0,
) -> ArrivalSchedule:
    """Synthesize a seeded ragged arrival process for a fleet.

    Each session's traffic is a pure function of ``(seed, i)`` and the
    parameters — independent of fleet size and of every other session —
    via ``derive_rng(seed, i, domain)``, the same contract
    :func:`synthesize_workload` keeps for the traces themselves.

    The per-session arrival model: the device joins at a tick drawn
    from ``[0, join_spread_ticks]``, then alternates upload events and
    quiet periods. Each event uploads a *burst* of consecutive batches
    (size uniform in ``burst_batches``), then sleeps a quiet period
    (ticks uniform in ``quiet_ticks``, plus the one tick the upload
    took). Before each event the device may *disconnect* with
    ``disconnect_prob`` — its remaining samples never arrive. With
    ``reorder_prob`` > 0, an uploaded batch may be delayed to the
    session's next event tick, arriving *after* batches with higher
    sequence numbers (transport reordering); the schedule's
    ``max_seq_skew`` reports the worst skew actually generated so
    callers can size mailbox reorder windows to deliver everything.

    Args:
        n_samples: Per-session trace lengths (e.g. ``[w.samples.shape[0]
            for w in workloads]``).
        seed: Fleet-level schedule seed.
        batch_samples: Samples per upload batch (the device's transfer
            unit).
        burst_batches: Inclusive ``(min, max)`` batches per upload
            event.
        quiet_ticks: Inclusive ``(min, max)`` extra quiet ticks between
            a session's upload events.
        disconnect_prob: Per-event probability the device drops off for
            good.
        reorder_prob: Per-batch probability the upload is delayed past
            its successors (bounded transport reordering).
        join_spread_ticks: Sessions join uniformly in
            ``[0, join_spread_ticks]`` instead of all at tick 0.

    Returns:
        An :class:`ArrivalSchedule` covering every tick until the last
        session finishes (or disconnects).
    """
    if batch_samples < 1:
        raise ConfigurationError(
            f"batch_samples must be >= 1, got {batch_samples}"
        )
    if not (1 <= burst_batches[0] <= burst_batches[1]):
        raise ConfigurationError(
            f"burst_batches must satisfy 1 <= min <= max, got "
            f"{burst_batches!r}"
        )
    if not (0 <= quiet_ticks[0] <= quiet_ticks[1]):
        raise ConfigurationError(
            f"quiet_ticks must satisfy 0 <= min <= max, got {quiet_ticks!r}"
        )
    if not 0.0 <= disconnect_prob <= 1.0:
        raise ConfigurationError(
            f"disconnect_prob must be in [0, 1], got {disconnect_prob!r}"
        )
    if not 0.0 <= reorder_prob <= 1.0:
        raise ConfigurationError(
            f"reorder_prob must be in [0, 1], got {reorder_prob!r}"
        )
    if join_spread_ticks < 0:
        raise ConfigurationError(
            f"join_spread_ticks must be >= 0, got {join_spread_ticks}"
        )

    ticks: Dict[int, List[ArrivalEvent]] = {}
    disconnected: List[int] = []
    max_seq_skew = 0
    for i, total in enumerate(n_samples):
        rng = derive_rng(seed, i, _ARRIVAL_DOMAIN)
        tick = (
            int(rng.integers(0, join_spread_ticks + 1))
            if join_spread_ticks
            else 0
        )
        batches = [
            ArrivalEvent(i, k, lo, min(lo + batch_samples, int(total)))
            for k, lo in enumerate(range(0, int(total), batch_samples))
        ]
        pos = 0
        delayed: List[ArrivalEvent] = []
        frontier = 0  # highest seq already emitted for this session
        while pos < len(batches) or delayed:
            if pos < len(batches) and rng.random() < disconnect_prob:
                disconnected.append(i)
                pos = len(batches)
                if not delayed:
                    break
            burst = int(
                rng.integers(burst_batches[0], burst_batches[1] + 1)
            )
            emitted: List[ArrivalEvent] = []
            # Stragglers from the previous event arrive first this tick
            # — after newer seqs already arrived last tick, which is
            # exactly the reordering the mailbox must absorb.
            emitted.extend(delayed)
            delayed = []
            for ev in batches[pos : pos + burst]:
                if (
                    reorder_prob
                    and pos + burst < len(batches)
                    and rng.random() < reorder_prob
                ):
                    delayed.append(ev)
                else:
                    emitted.append(ev)
            pos = min(pos + burst, len(batches))
            for ev in emitted:
                skew = ev.seq - frontier
                if skew > max_seq_skew:
                    max_seq_skew = skew
                frontier = max(frontier, ev.seq + 1)
            if emitted:
                ticks.setdefault(tick, []).extend(emitted)
            tick += 1 + int(
                rng.integers(quiet_ticks[0], quiet_ticks[1] + 1)
            )
    n_ticks = max(ticks) + 1 if ticks else 0
    events = tuple(
        tuple(ticks.get(t, ())) for t in range(n_ticks)
    )
    return ArrivalSchedule(
        n_sessions=len(n_samples),
        batch_samples=batch_samples,
        events=events,
        disconnected=tuple(sorted(set(disconnected))),
        max_seq_skew=max_seq_skew,
    )
