"""Fleet-batched serving: the fleet, not the session, is the kernel unit.

:class:`~repro.serving.pool.SessionPool` already batches the stepping
admission tests fleet-wide, but every other stage — filtering,
segmentation, cycle measurement, stride solving — still runs once per
session per round, paying the full Python/scipy dispatch overhead N
times. :class:`BatchedSessionPool` restructures the round so each stage
runs **once for the whole fleet**:

1. the pending filter blocks of every due session are column-stacked by
   length and low-passed in one backend call per length group;
2. every session's segmentation window is packed into one concatenated
   signal and scanned by a single peak/valley kernel dispatch
   (:func:`repro.signal.batched.batched_segment_windows`);
3. all admitted cycles are measured in length-grouped stacks
   (:func:`repro.core.batched.batched_stage_measurements`);
4. the stepping tests run in the same fleet-wide batch the lockstep
   pool uses;
5. all credited cycles' stride integrations run in length-grouped
   stacks (:func:`repro.core.batched.batched_cycle_solutions`).

Per-session *state* transitions (boundary bookkeeping, cycle admission,
streak classification, crediting, trimming) still run session by
session through the seams :class:`~repro.core.streaming.StreamingPTrack`
exposes — the numeric kernels between them are what gets batched. With
the default NumPy backend every batched kernel is bit-identical to its
scalar reference, so credits satisfy the serving equivalence oracle
``serial == pooled == sharded == batched``; alternate backends (see
:mod:`repro.runtime.backends`) trade that for throughput under a
documented tolerance policy.

Failure isolation matches the lockstep pool: an exception attributable
to one session marks only that session failed and the round continues
without it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.batched import (
    batched_cycle_solutions,
    batched_stage_measurements,
)
from repro.core.config import PTrackConfig
from repro.core.streaming import StagedCycle
from repro.faults.policy import FaultPolicy
from repro.runtime.backends import ComputeBackend, get_backend
from repro.runtime.buffers import FleetBatchBuffer
from repro.serving.pool import SessionPool
from repro.signal.batched import batched_segment_windows
from repro.telemetry.registry import MetricsRegistry
from repro.types import StepEvent, StrideEstimate

# FleetBatchBuffer historically lived here; it moved to
# repro.runtime.buffers so the kernel layers can accept scratch without
# importing the serving layer. Re-exported for compatibility.
__all__ = ["FleetBatchBuffer", "BatchedSessionPool"]


class BatchedSessionPool(SessionPool):
    """A session pool whose ingest rounds run fleet-batched kernels.

    Drop-in replacement for :class:`SessionPool` — same constructor,
    same ``append``/``flush``/failure-isolation contract, and (with the
    default NumPy backend) bit-identical per-session credits and
    op-stats. What changes is *how* each round computes: one kernel
    dispatch per stage per round instead of per session.

    Args:
        backend: Compute backend for the batched kernels — a
            :class:`~repro.runtime.backends.ComputeBackend`, a registry
            name (``"numpy"``, ``"float32"``, ``"numba"``), or ``None``
            to consult ``PTRACK_BACKEND`` and default to NumPy. Only
            bit-identical backends preserve the crediting-equivalence
            oracle; see :mod:`repro.runtime.backends` for the
            per-kernel tolerance policy of the alternates.
        small_fleet_cutoff: Rounds with at most this many due sessions
            skip the fleet packing/stacking machinery and run the
            lockstep scalar round instead. Only taken on bit-identical
            backends (the scalar round *is* the reference, so credits
            are unchanged by construction); ``0`` disables the fast
            path. ``None`` uses :attr:`SMALL_FLEET_CUTOFF` — currently
            ``0``: with the backend-wide kernels the packed round beats
            the scalar round at every measured occupancy (1–10 due
            sessions; see the ``small_fleet`` section of
            ``BENCH_PR8.json``), so the scalar path is an escape hatch
            for deployments whose profile says otherwise, not a
            default.

    All other arguments are inherited from :class:`SessionPool`.
    """

    ROUND_SECONDS_METRIC = "serving_batch_round_seconds"
    APPENDS_METRIC = "serving_batch_appends_total"
    SESSIONS_GAUGE_METRIC = "serving_batch_sessions"

    #: Default ``small_fleet_cutoff``. 0 = packed rounds at every
    #: occupancy: measured on the tracked workload, the packed round
    #: wins even at one due session once measurement/integration/bounce
    #: all dispatch through backend kernels (BENCH_PR8 ``small_fleet``
    #: rows), so delegating small rounds to the scalar path would be a
    #: pessimisation, not a fast path.
    SMALL_FLEET_CUTOFF = 0

    def __init__(
        self,
        sample_rate_hz: float,
        config: Optional[PTrackConfig] = None,
        settle_s: float = 2.5,
        max_buffer_s: float = 30.0,
        fault_policy: Optional[FaultPolicy] = None,
        isolate_failures: bool = True,
        telemetry: Optional[MetricsRegistry] = None,
        backend: Optional[Union[str, ComputeBackend]] = None,
        small_fleet_cutoff: Optional[int] = None,
        **pool_kwargs: Any,
    ) -> None:
        super().__init__(
            sample_rate_hz,
            config=config,
            settle_s=settle_s,
            max_buffer_s=max_buffer_s,
            fault_policy=fault_policy,
            isolate_failures=isolate_failures,
            telemetry=telemetry,
            **pool_kwargs,
        )
        self._backend = get_backend(backend)
        self._buffers = FleetBatchBuffer()
        self._small_fleet_cutoff = (
            self.SMALL_FLEET_CUTOFF
            if small_fleet_cutoff is None
            else small_fleet_cutoff
        )
        if self._telemetry is not None:
            reg = self._telemetry
            self._m_rounds = reg.counter("serving_batch_rounds_total")
            self._m_occupancy = reg.gauge("serving_batch_occupancy")

    @property
    def backend(self) -> ComputeBackend:
        """The compute backend the batched kernels dispatch to."""
        return self._backend

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _backend_identity(self) -> Optional[str]:
        """Echo the backend name into pool snapshots: only the exact
        same backend is guaranteed to resume bit-identically (float32
        is tolerance-bounded, not bit-identical), so restore refuses a
        snapshot taken under any other backend."""
        return self._backend.name

    @classmethod
    def from_snapshot(
        cls,
        snapshot: Dict[str, object],
        telemetry: Optional[MetricsRegistry] = None,
        **kwargs: object,
    ) -> "BatchedSessionPool":
        """Build a batched pool resuming ``snapshot``, reconstructing
        the snapshot's own compute backend by name."""
        kwargs.setdefault("backend", snapshot.get("backend"))
        return super().from_snapshot(  # type: ignore[return-value]
            snapshot, telemetry=telemetry, **kwargs
        )

    # ------------------------------------------------------------------
    # Batched ingest
    # ------------------------------------------------------------------
    def append(
        self,
        session_ids: Sequence[int],
        batches: Sequence[np.ndarray],
    ) -> List[Tuple[List[StepEvent], List[StrideEstimate]]]:
        """Feed one batch to each named session; credit settled cycles.

        Same contract as :meth:`SessionPool.append`; each drain round
        runs the fleet-batched kernels instead of per-session calls.
        """
        t0 = time.perf_counter() if self._telemetry is not None else 0.0
        self._validate_append(session_ids, batches)
        sessions = [self._sessions[sid] for sid in session_ids]
        out: List[Tuple[List[StepEvent], List[StrideEstimate]]] = [
            ([], []) for _ in sessions
        ]
        active: List[int] = []
        for k, (sid, sess, batch) in enumerate(
            zip(session_ids, sessions, batches)
        ):
            if sid in self._errors:
                continue
            try:
                sess.ingest(batch)
                steps, strides = sess.take_pending_credits()
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                self._mark_failed(sid, exc)
                continue
            out[k][0].extend(steps)
            out[k][1].extend(strides)
            active.append(k)
        while active:
            active = self._batched_round(session_ids, sessions, active, out)
        if self._telemetry is not None:
            self._m_appends.inc(len(session_ids))
            self._m_round_s.observe(time.perf_counter() - t0)
        return out

    # ------------------------------------------------------------------
    # One fleet round
    # ------------------------------------------------------------------
    def _batched_round(
        self,
        session_ids: Sequence[int],
        sessions: Sequence,
        active: List[int],
        out: List[Tuple[List[StepEvent], List[StrideEstimate]]],
    ) -> List[int]:
        """Advance every due session by one hop boundary, batched.

        Returns the positions still active for the next round. A
        session that raises (or whose batched kernel surfaces its
        exception in place) is marked failed and dropped mid-round —
        the per-session state it mutated up to that point matches what
        the scalar path would have mutated before raising.
        """
        # Bookkeeping is kept in lists indexed by the session's position
        # in the due order (``d``) rather than dicts keyed by pool
        # position — at fleet scale the per-session dict churn is
        # measurable against the batched kernels.
        due_ks: List[int] = []
        due_sess: List = []
        boundaries: List[int] = []
        for k in active:
            boundary = sessions[k].peek_boundary()
            if boundary is not None:
                due_ks.append(k)
                due_sess.append(sessions[k])
                boundaries.append(boundary)
        n_due = len(due_ks)
        if not n_due:
            return []
        if self._telemetry is not None:
            self._m_rounds.inc()
            self._m_occupancy.set(n_due)
        if n_due <= self._small_fleet_cutoff and self._backend.bit_identical:
            # Small-fleet escape hatch: delegate tiny rounds to the
            # lockstep scalar round. It IS the batched round's
            # bit-identity reference, so taking it changes nothing but
            # latency. Tolerance backends (float32) must not take it —
            # they would silently compute in float64. Off by default
            # (see SMALL_FLEET_CUTOFF): the packed round measures
            # faster at every occupancy on the tracked workload.
            return self._scalar_round(session_ids, sessions, due_ks, out)
        alive = [True] * n_due

        def fail(d: int, exc: BaseException) -> None:
            self._mark_failed(session_ids[due_ks[d]], exc)
            alive[d] = False

        cfg = self._config
        be = self._backend
        rate = self._rate

        # -- Stage 1: fleet filter -------------------------------------
        # Gather every due session's pending filter blocks, low-pass
        # equal-length blocks in one column-stacked backend call per
        # length group, then commit per session in plan order (the
        # order apply_filtered_block requires).
        plans: List[List[Tuple[int, int, int]]] = []
        groups: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for d in range(n_due):
            plan = due_sess[d].filter_plan(boundaries[d])
            plans.append(plan)
            for j, (lo, hi, _final) in enumerate(plan):
                groups.setdefault(hi - lo, []).append((d, j, lo, hi))
        blocks: List[List[Union[np.ndarray, Exception, None]]] = [
            [None] * len(plan) for plan in plans
        ]
        for length, entries in groups.items():
            if len(entries) == 1:
                d, j, lo, hi = entries[0]
                try:
                    blocks[d][j] = be.lowpass_block(
                        due_sess[d].raw_block(lo, hi),
                        cfg.lowpass_cutoff_hz,
                        rate,
                        cfg.lowpass_order,
                    )
                except Exception as exc:  # noqa: BLE001
                    blocks[d][j] = exc
                continue
            stack = self._buffers.request(
                f"filter:{length}", (length, 3 * len(entries))
            )
            for col, (d, _j, lo, hi) in enumerate(entries):
                np.copyto(
                    stack[:, 3 * col : 3 * col + 3],
                    due_sess[d].raw_block(lo, hi),
                )
            try:
                filtered = be.lowpass_block(
                    stack, cfg.lowpass_cutoff_hz, rate, cfg.lowpass_order
                )
            except Exception:  # noqa: BLE001 — retry solo to find the owner
                for d, j, lo, hi in entries:
                    try:
                        blocks[d][j] = be.lowpass_block(
                            due_sess[d].raw_block(lo, hi),
                            cfg.lowpass_cutoff_hz,
                            rate,
                            cfg.lowpass_order,
                        )
                    except Exception as exc:  # noqa: BLE001
                        blocks[d][j] = exc
            else:
                for col, (d, j, _lo, _hi) in enumerate(entries):
                    blocks[d][j] = filtered[:, 3 * col : 3 * col + 3]
        for d in range(n_due):
            sess = due_sess[d]
            for j, (lo, hi, final) in enumerate(plans[d]):
                block = blocks[d][j]
                if isinstance(block, Exception):
                    fail(d, block)
                    break
                sess.apply_filtered_block(lo, hi, final, block)

        # -- Stage 2: fleet segmentation -------------------------------
        opened: List[Optional[Tuple[np.ndarray, int]]] = [None] * n_due
        seg_ds: List[int] = []
        windows: List[np.ndarray] = []
        for d in range(n_due):
            if not alive[d]:
                continue
            try:
                win = due_sess[d].begin_pass(boundaries[d])
            except Exception as exc:  # noqa: BLE001
                fail(d, exc)
                continue
            opened[d] = win
            if win is not None:
                seg_ds.append(d)
                windows.append(win[0])
        seg_results: List = []
        if windows:
            scratch = self._buffers.request(
                "segment_pack", sum(w.size for w in windows) + len(windows)
            )
            seg_results = batched_segment_windows(
                windows,
                rate,
                min_step_rate_hz=cfg.min_step_rate_hz,
                max_step_rate_hz=cfg.max_step_rate_hz,
                min_prominence=cfg.min_peak_prominence,
                backend=be,
                scratch=scratch,
            )

        # -- Stage 3: admit + measure all cycles fleet-wide ------------
        admitted_by_d: List = [None] * n_due
        cycle_pairs: List = [None] * n_due
        flat_v: List[np.ndarray] = []
        flat_h: List[np.ndarray] = []
        flat_start: List[int] = [0] * n_due
        for d, segments in zip(seg_ds, seg_results):
            if isinstance(segments, Exception):
                fail(d, segments)
                continue
            sess = due_sess[d]
            settled_end = opened[d][1]
            try:
                admitted = sess.admit_cycles(settled_end, segments)
                pairs = [
                    sess.cycle_segments(abs_start, abs_end)
                    for abs_start, abs_end, _peaks in admitted
                ]
            except Exception as exc:  # noqa: BLE001
                fail(d, exc)
                continue
            admitted_by_d[d] = admitted
            cycle_pairs[d] = pairs
            flat_start[d] = len(flat_v)
            for v_seg, h_seg in pairs:
                flat_v.append(v_seg)
                flat_h.append(h_seg)
        measurements = (
            batched_stage_measurements(
                flat_v, flat_h, cfg, be, buffers=self._buffers
            )
            if flat_v
            else []
        )

        # -- Stage 4: stage per session, in cycle order ----------------
        staged_by_d: List[Optional[List[StagedCycle]]] = [None] * n_due
        for d in range(n_due):
            if not alive[d]:
                continue
            if opened[d] is None or admitted_by_d[d] is None:
                if opened[d] is None:
                    # No segmentable window: the boundary still closes
                    # and its trim still runs, via an empty resolve.
                    staged_by_d[d] = []
                continue
            sess = due_sess[d]
            lo = flat_start[d]
            staged: List[StagedCycle] = []
            broken = False
            for (abs_start, abs_end, peaks), (v_seg, h_seg), m in zip(
                admitted_by_d[d],
                cycle_pairs[d],
                measurements[lo : lo + len(admitted_by_d[d])],
            ):
                if isinstance(m, Exception):
                    # The scalar path raises out of _stage here, after
                    # having staged this session's earlier cycles.
                    fail(d, m)
                    broken = True
                    break
                a_seg, anterior_ok, motion_ok, offset = m
                staged.append(
                    sess.make_staged(
                        abs_start, abs_end, peaks,
                        v_seg, h_seg, a_seg, anterior_ok, motion_ok, offset,
                    )
                )
            if broken:
                continue
            staged_by_d[d] = staged
        for d in range(n_due):
            if staged_by_d[d] is not None:
                due_sess[d].finish_collect(boundaries[d])

        # -- Stage 5: fleet stepping tests -----------------------------
        resolve_ds = [d for d in range(n_due) if staged_by_d[d] is not None]
        values = self._pooled_stepping([staged_by_d[d] for d in resolve_ds])

        # -- Stage 6: classify, solve strides fleet-wide, credit -------
        credited_by_d: List = [None] * n_due
        solve_idx: List = [None] * n_due
        solve_start: List[int] = [0] * n_due
        all_items: List[Tuple] = []
        for d, vals in zip(resolve_ds, values):
            sess = due_sess[d]
            try:
                credited = sess.classify(staged_by_d[d], vals)
                indices, items = sess.stride_solve_items(credited)
            except Exception as exc:  # noqa: BLE001
                fail(d, exc)
                continue
            credited_by_d[d] = credited
            solve_idx[d] = indices
            solve_start[d] = len(all_items)
            all_items.extend(items)
        flat_solutions = (
            batched_cycle_solutions(
                all_items, 1.0 / rate, backend=be, buffers=self._buffers
            )
            if all_items
            else []
        )
        next_active: List[int] = []
        for d in resolve_ds:
            if not alive[d]:
                continue
            credited = credited_by_d[d]
            indices = solve_idx[d]
            lo = solve_start[d]
            solutions: List[Optional[Tuple[float, float]]] = [None] * len(
                credited
            )
            for i, solved in zip(
                indices, flat_solutions[lo : lo + len(indices)]
            ):
                solutions[i] = solved
            try:
                steps, strides = due_sess[d].credit_resolved(
                    credited, solutions
                )
            except Exception as exc:  # noqa: BLE001
                fail(d, exc)
                continue
            k = due_ks[d]
            out[k][0].extend(steps)
            out[k][1].extend(strides)
            next_active.append(k)
        return next_active

    # ------------------------------------------------------------------
    # Small-fleet fast path
    # ------------------------------------------------------------------
    def _scalar_round(
        self,
        session_ids: Sequence[int],
        sessions: Sequence,
        due_ks: Sequence[int],
        out: List[Tuple[List[StepEvent], List[StrideEstimate]]],
    ) -> List[int]:
        """One lockstep round over the due sessions, no fleet packing.

        Exactly the round body of :meth:`SessionPool.append` — per-due
        session ``collect()``, one pooled stepping batch, per-session
        ``resolve()`` — with the same failure isolation. Bit-identical
        to the packed round because it *is* the reference path the
        packed round is differentially pinned against.
        """
        round_staged: List[Tuple[int, List[StagedCycle]]] = []
        for k in due_ks:
            try:
                staged = sessions[k].collect()
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                self._mark_failed(session_ids[k], exc)
                continue
            if staged is None:
                continue
            round_staged.append((k, staged))
        if not round_staged:
            return []
        values = self._pooled_stepping([staged for _, staged in round_staged])
        next_active: List[int] = []
        for (k, staged), vals in zip(round_staged, values):
            try:
                steps, strides = sessions[k].resolve(staged, vals)
            except Exception as exc:  # noqa: BLE001
                self._mark_failed(session_ids[k], exc)
                continue
            out[k][0].extend(steps)
            out[k][1].extend(strides)
            next_active.append(k)
        return next_active
