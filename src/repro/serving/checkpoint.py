"""Durable fleet checkpoints: atomic persistence for shard state.

A rolling-restartable fleet needs somewhere to put the state that must
outlive a worker process. :class:`CheckpointStore` is that somewhere: a
directory of atomically written, pickled ``ptrack-session-v1`` blobs of
``kind="checkpoint"`` — each one a shard's pool snapshot plus the
credits already settled and the stream offset to resume from.

The store is deliberately paranoid on the read side. A checkpoint is
only useful if restoring it is *safer* than re-ingesting, so a torn or
corrupted file (partial write, truncation, bit rot — exercised by the
:class:`repro.faults.TornCheckpoint` injector) is never an exception:
the file is quarantined with a ``.corrupt`` suffix, the ``torn_loads``
counter (and ``serving_checkpoint_torn_total`` telemetry) records it,
and ``load`` returns ``None`` so the fleet driver falls back to
re-ingesting from the original trace — the same quarantine-as-miss
contract the :class:`repro.runtime.TraceCache` disk layer keeps. Only a
*well-formed* blob of the wrong schema version raises
:class:`~repro.exceptions.ConfigurationError`: that is a deployment
mistake (resuming across incompatible builds) the operator must see,
not silently re-serve.

:func:`make_checkpoint` / :func:`split_checkpoint` build and split the
payloads; splitting is what lets the rebalancer halve a live shard
without losing a credit — each half carries its sessions' pool state
and its slice of the settled credits.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.streaming import SESSION_SNAPSHOT_SCHEMA, ensure_snapshot_kind
from repro.exceptions import ConfigurationError
from repro.telemetry.registry import MetricsRegistry, get_registry

__all__ = [
    "CheckpointStore",
    "make_checkpoint",
    "split_checkpoint",
    "split_pool_snapshot",
]


def make_checkpoint(
    pool_snapshot: Dict[str, Any],
    next_offset: int,
    steps: Sequence[List],
    strides: Sequence[List],
    epoch: int,
) -> Dict[str, Any]:
    """Assemble one shard's resumable state into a checkpoint blob.

    Args:
        pool_snapshot: The shard pool's ``kind="pool"`` snapshot.
        next_offset: Absolute sample offset the next epoch starts at.
        steps: Per-session credited step events so far (shard order).
        strides: Per-session credited stride estimates so far.
        epoch: Number of epochs already completed.
    """
    return {
        "schema": SESSION_SNAPSHOT_SCHEMA,
        "kind": "checkpoint",
        "next_offset": int(next_offset),
        "epoch": int(epoch),
        "pool": pool_snapshot,
        "steps": [list(s) for s in steps],
        "strides": [list(s) for s in strides],
    }


def split_pool_snapshot(
    pool_snapshot: Dict[str, Any], mid: int
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split a pool snapshot into two, at position ``mid`` in id order.

    Sessions keep their original ids (``SessionPool.restore`` accepts
    any id set and the id allocator travels with both halves), so a
    shard map that addresses sessions by id stays valid across the
    split. The failure ledger is partitioned by membership.
    """
    ensure_snapshot_kind(pool_snapshot, "pool")
    ordered = sorted(pool_snapshot["sessions"].items())
    if not 0 < mid < len(ordered):
        raise ConfigurationError(
            f"cannot split a {len(ordered)}-session pool snapshot at "
            f"position {mid}; both halves must be non-empty"
        )
    halves = []
    for part in (ordered[:mid], ordered[mid:]):
        ids = {sid for sid, _ in part}
        half = dict(pool_snapshot)
        half["sessions"] = dict(part)
        half["errors"] = {
            sid: err
            for sid, err in pool_snapshot["errors"].items()
            if sid in ids
        }
        halves.append(half)
    return halves[0], halves[1]


def split_checkpoint(
    payload: Dict[str, Any], mid: int
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split a shard checkpoint into two resumable halves at ``mid``.

    The pool snapshot, the settled credit lists, the epoch counter and
    the resume offset all partition consistently, so serving the two
    halves forward yields exactly the credits the unsplit shard would
    have produced — the migration-without-credit-loss invariant the
    durable-fleet tests assert.
    """
    ensure_snapshot_kind(payload, "checkpoint")
    left_pool, right_pool = split_pool_snapshot(payload["pool"], mid)
    left = dict(payload)
    right = dict(payload)
    left["pool"], right["pool"] = left_pool, right_pool
    left["steps"], right["steps"] = (
        [list(s) for s in payload["steps"][:mid]],
        [list(s) for s in payload["steps"][mid:]],
    )
    left["strides"], right["strides"] = (
        [list(s) for s in payload["strides"][:mid]],
        [list(s) for s in payload["strides"][mid:]],
    )
    return left, right


class CheckpointStore:
    """Atomic on-disk persistence for fleet checkpoints.

    Writes are crash-consistent (serialize to a temp file in the same
    directory, then ``os.replace``), so a checkpoint file is always
    either the previous complete version or the new complete version —
    never a half-written hybrid. Reads treat *any* undecodable file as
    a torn checkpoint: quarantine it under ``<name>.ckpt.corrupt``,
    count it, and report ``None`` so the caller re-ingests instead of
    crashing or — worse — resuming from garbage.

    Args:
        directory: Where checkpoints live; created if missing.
        blob_faults: Optional fault injectors whose ``apply_blob``
            surface corrupts the serialized bytes at write time (the
            :class:`repro.faults.TornCheckpoint` test hook; identity
            for real deployments).
        seed: Base seed for the blob-fault RNG derivation.
        telemetry: Metrics registry for the store's counters
            (``serving_checkpoint_{saves,loads,torn}_total``). ``None``
            falls back to the process gate; with the gate closed the
            store runs uninstrumented.
    """

    def __init__(
        self,
        directory: os.PathLike,
        blob_faults: Optional[Sequence] = None,
        seed: int = 0,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._blob_faults = list(blob_faults) if blob_faults else []
        self._seed = seed
        self._saves = 0
        self._loads = 0
        self._torn = 0
        self._telemetry = (
            telemetry if telemetry is not None else get_registry()
        )
        if self._telemetry is not None:
            reg = self._telemetry
            self._m_saves = reg.counter("serving_checkpoint_saves_total")
            self._m_loads = reg.counter("serving_checkpoint_loads_total")
            self._m_torn = reg.counter("serving_checkpoint_torn_total")

    @property
    def directory(self) -> Path:
        """The store's directory."""
        return self._dir

    @property
    def stats(self) -> Dict[str, int]:
        """Lifetime counters: saves, loads, torn (quarantined) loads."""
        return {
            "saves": self._saves,
            "loads": self._loads,
            "torn_loads": self._torn,
        }

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ConfigurationError(
                f"invalid checkpoint name {name!r}; names are flat "
                "identifiers (no path separators)"
            )
        return self._dir / f"{name}.ckpt"

    def save(self, name: str, payload: Dict[str, Any]) -> Path:
        """Persist one checkpoint atomically; return its path."""
        ensure_snapshot_kind(payload, "checkpoint")
        path = self._path(name)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        for injector in self._blob_faults:
            from repro.faults.injectors import derive_blob_rng

            blob = injector.apply_blob(
                blob, derive_blob_rng(self._seed, name, self._saves)
            )
        fd, tmp = tempfile.mkstemp(
            dir=self._dir, prefix=f".{name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._saves += 1
        if self._telemetry is not None:
            self._m_saves.inc()
        return path

    def load(self, name: str) -> Optional[Dict[str, Any]]:
        """Read one checkpoint; ``None`` when absent or torn.

        A file that cannot be read back into a checkpoint blob — torn
        write, truncation, corruption — is quarantined (renamed with a
        ``.corrupt`` suffix) and reported as missing, steering the
        fleet driver onto the re-ingest fallback. A *decodable* blob of
        the wrong schema version instead raises
        :class:`ConfigurationError`: silently re-serving work because
        of a version skew would mask a deployment mistake.
        """
        path = self._path(name)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict) or "schema" not in payload:
                raise pickle.UnpicklingError("not a checkpoint blob")
        except ConfigurationError:
            raise
        except Exception:
            self._quarantine(path)
            return None
        ensure_snapshot_kind(payload, "checkpoint")
        self._loads += 1
        if self._telemetry is not None:
            self._m_loads.inc()
        return payload

    def delete(self, name: str) -> None:
        """Remove one checkpoint (end of a shard's life); missing is ok."""
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass

    def names(self) -> List[str]:
        """Names of the checkpoints currently on disk (sorted)."""
        return sorted(p.name[: -len(".ckpt")] for p in self._dir.glob("*.ckpt"))

    def _quarantine(self, path: Path) -> None:
        """Move a torn checkpoint aside and count it."""
        self._torn += 1
        if self._telemetry is not None:
            self._m_torn.inc()
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            # Quarantine is best effort: a vanished or unmovable file
            # still reads as a miss, which is the safe outcome.
            pass
